"""Tests for the unified tuning API: registry, Tuner pipeline, shims.

The load-bearing guarantee is *bit-identity*: every advisor reached through
``Tuner.tune(TuningRequest(...))`` must recommend exactly what the legacy
constructor-call path recommends — the API layer wires shared state, it never
changes a decision.
"""

from __future__ import annotations

import pytest

from repro.advisors.base import Recommendation
from repro.advisors.dta import DtaAdvisor
from repro.advisors.ilp_advisor import IlpAdvisor
from repro.advisors.relaxation import RelaxationAdvisor
from repro.advisors.scaleout import ScaleOutAdvisor
from repro.api import (
    AdvisorSpec,
    CostingSpec,
    ScaleSpec,
    Tuner,
    TuningRequest,
    TuningResult,
    advisor_factory,
    available_advisors,
    make_advisor,
    register_advisor,
)
from repro.core.advisor import CoPhyAdvisor
from repro.core.constraints import StorageBudgetConstraint
from repro.indexes.candidate_generation import CandidateGenerator
from repro.indexes.configuration import Configuration


def _budget(schema, fraction=1.0):
    return StorageBudgetConstraint.from_fraction_of_data(schema, fraction)


#: (registry name, legacy class, legacy constructor kwargs).  Scale-out runs
#: inline (one worker) so the legacy and registry runs share no pool state.
LEGACY_ADVISORS = [
    ("cophy", CoPhyAdvisor, {}),
    ("ilp", IlpAdvisor, {}),
    ("dta", DtaAdvisor, {}),
    ("relaxation", RelaxationAdvisor, {}),
    ("scaleout", ScaleOutAdvisor, {"shard_workers": 1}),
]


class TestDeprecationShims:
    @pytest.mark.parametrize("name,cls,kwargs", LEGACY_ADVISORS)
    def test_legacy_construction_warns_and_matches_registry_path(
            self, name, cls, kwargs, simple_schema, simple_workload):
        """Old-vs-new regression: warn on the legacy path, recommend the same."""
        budget = _budget(simple_schema)
        with pytest.warns(DeprecationWarning, match="registry"):
            legacy = cls(simple_schema, **kwargs).tune(simple_workload, [budget])
        result = Tuner().tune(TuningRequest(
            workload=simple_workload, schema=simple_schema,
            constraints=[budget], advisor=AdvisorSpec(name, kwargs)))
        assert isinstance(result, TuningResult)
        assert result.configuration == legacy.configuration
        assert result.objective_estimate == legacy.objective_estimate
        assert result.advisor_name == legacy.advisor_name

    def test_registry_construction_does_not_warn(self, simple_schema,
                                                 recwarn):
        make_advisor("dta", simple_schema)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_recommend_alias_warns_and_delegates(self, simple_schema,
                                                 simple_workload):
        advisor = make_advisor("dta", simple_schema)
        with pytest.warns(DeprecationWarning, match="recommend"):
            via_alias = advisor.recommend(simple_workload,
                                          [_budget(simple_schema)])
        direct = make_advisor("dta", simple_schema).tune(
            simple_workload, [_budget(simple_schema)])
        assert isinstance(via_alias, Recommendation)
        assert via_alias.configuration == direct.configuration


class TestRegistry:
    def test_builtins_and_aliases_registered(self):
        names = available_advisors()
        for name in ("cophy", "ilp", "dta", "tool-b", "relaxation",
                     "tool-a", "scaleout"):
            assert name in names
        assert advisor_factory("dta") is advisor_factory("tool-b")
        assert advisor_factory("relaxation") is advisor_factory("tool-a")

    def test_unknown_advisor_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="available"):
            advisor_factory("no-such-advisor")

    def test_custom_strategy_is_reachable_through_tuner(self, simple_schema,
                                                        simple_workload):
        """Plugging in a strategy needs one registration, nothing else."""

        class NullAdvisor:
            name = "null"

            def tune(self, workload, constraints=(), candidates=None):
                return Recommendation(configuration=Configuration(name="null"),
                                      advisor_name=self.name,
                                      objective_estimate=0.0)

        @register_advisor("test-null")
        def _build(schema, options, *, shared_optimizer=None,
                   shared_inum=None):
            return NullAdvisor()

        result = Tuner().tune(TuningRequest(
            workload=simple_workload, schema=simple_schema,
            advisor="test-null"))
        assert result.advisor_name == "null"
        assert result.index_count == 0

    def test_reregistering_a_name_rebinds_its_aliases(self, simple_schema,
                                                      simple_workload):
        """Overriding "dta" must not leave "tool-b" serving the old factory."""
        from repro.api.registry import _build_dta

        calls = []

        @register_advisor("dta", aliases=("tool-b",))
        def _instrumented(schema, options, *, shared_optimizer=None,
                          shared_inum=None):
            calls.append("hit")
            return _build_dta(schema, options,
                              shared_optimizer=shared_optimizer,
                              shared_inum=shared_inum)

        try:
            make_advisor("tool-b", simple_schema)
            assert calls == ["hit"]
        finally:
            register_advisor("dta", aliases=("tool-b",))(_build_dta)

    def test_inum_cap_options_rejected_with_shared_cache(self, simple_schema,
                                                         simple_workload):
        """Caps belong to CostingSpec; silently ignoring them would leave the
        provenance attesting to enumeration limits that never applied."""
        with pytest.raises(ValueError, match="CostingSpec"):
            Tuner().tune(TuningRequest(
                workload=simple_workload, schema=simple_schema,
                advisor=AdvisorSpec("cophy", {"max_templates_per_query": 1})))
        # The imperative path (owned cache) keeps accepting them.
        advisor = make_advisor("cophy", simple_schema,
                               max_templates_per_query=1)
        assert advisor.inum.enumeration_caps[1] == 1

    def test_explicit_options_beat_shared_wiring(self, simple_schema):
        from repro.optimizer.whatif import WhatIfOptimizer

        mine = WhatIfOptimizer(simple_schema)
        shared = WhatIfOptimizer(simple_schema)
        advisor = make_advisor("cophy", simple_schema, optimizer=mine,
                               shared_optimizer=shared)
        assert advisor.optimizer is mine


class TestTuningRequest:
    def test_string_advisor_normalises_to_spec(self, simple_schema,
                                               simple_workload):
        request = TuningRequest(workload=simple_workload,
                                schema=simple_schema, advisor="ilp")
        assert request.resolved_advisor() == AdvisorSpec("ilp")

    def test_scale_spec_implies_scaleout(self, simple_schema, simple_workload):
        request = TuningRequest(workload=simple_workload, schema=simple_schema,
                                scale=ScaleSpec(shard_count=2))
        assert request.resolved_advisor().name == "scaleout"
        assert request.resolved_options()["shard_count"] == 2

    def test_scale_spec_rejects_other_advisors(self, simple_schema,
                                               simple_workload):
        with pytest.raises(ValueError, match="scaleout"):
            TuningRequest(workload=simple_workload, schema=simple_schema,
                          advisor="cophy", scale=ScaleSpec())

    def test_explicit_advisor_options_win_over_scale_spec(self, simple_schema,
                                                          simple_workload):
        request = TuningRequest(
            workload=simple_workload, schema=simple_schema,
            advisor=AdvisorSpec("scaleout", {"shard_count": 5}),
            scale=ScaleSpec(shard_count=2))
        assert request.resolved_options()["shard_count"] == 5

    def test_rejects_non_workload(self, simple_schema):
        from repro.exceptions import WorkloadError

        with pytest.raises(WorkloadError):
            TuningRequest(workload=["not a workload"], schema=simple_schema)


class TestTunerPipeline:
    def test_request_scoped_candidates_prepare_the_shared_cache(
            self, simple_schema, simple_workload):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        tuner = Tuner()
        result = tuner.tune(TuningRequest(
            workload=simple_workload, schema=simple_schema,
            constraints=[_budget(simple_schema)], candidates=candidates))
        assert result.provenance["pipeline"]["prepared"] is True
        assert result.provenance["candidates"]["count"] == len(candidates)
        context = tuner.context_for(simple_schema)
        assert context.inum.cached_query_count == len(simple_workload)

    def test_dba_indexes_join_the_candidate_universe(self, simple_schema,
                                                     simple_workload):
        from repro.indexes.index import Index

        dba = Index("orders", ("o_customer",), include_columns=("o_total",))
        result = Tuner().tune(TuningRequest(
            workload=simple_workload, schema=simple_schema,
            constraints=[_budget(simple_schema)], dba_indexes=[dba]))
        assert result.provenance["candidates"]["dba_indexes"] == 1
        assert result.provenance["candidates"]["count"] is not None

    def test_per_statement_costs_default_per_advisor(self, simple_schema,
                                                     simple_workload):
        tuner = Tuner()
        cophy = tuner.tune(TuningRequest(workload=simple_workload,
                                         schema=simple_schema))
        assert len(cophy.statement_costs) == len(simple_workload)
        # Off by default for advisors that do not share the cache (the
        # black-box baselines would pay an INUM build they never used)…
        dta = tuner.tune(TuningRequest(workload=simple_workload,
                                       schema=simple_schema, advisor="dta"))
        assert dta.statement_costs == ()
        # …and for scale-out, whose point is never costing monolithically.
        scaled = tuner.tune(TuningRequest(
            workload=simple_workload, schema=simple_schema,
            advisor=AdvisorSpec("scaleout", {"shard_workers": 1})))
        assert scaled.statement_costs == ()
        # An explicit True always wins.
        forced = tuner.tune(TuningRequest(
            workload=simple_workload, schema=simple_schema,
            advisor=AdvisorSpec("scaleout", {"shard_workers": 1}),
            per_statement_costs=True))
        assert len(forced.statement_costs) == len(simple_workload)

    def test_explicit_per_statement_costs_honoured_on_loop_path(
            self, simple_schema, simple_workload):
        """use_gamma_matrix=False answers an explicit True via the loop."""
        result = Tuner().tune(TuningRequest(
            workload=simple_workload, schema=simple_schema,
            costing=CostingSpec(use_gamma_matrix=False),
            per_statement_costs=True))
        assert len(result.statement_costs) == len(simple_workload)

    def test_per_statement_costs_match_inum(self, simple_schema,
                                            simple_workload):
        tuner = Tuner()
        result = tuner.tune(TuningRequest(workload=simple_workload,
                                          schema=simple_schema,
                                          constraints=[_budget(simple_schema)]))
        context = tuner.context_for(simple_schema)
        for statement, entry in zip(simple_workload, result.statement_costs):
            assert entry.statement == statement.query.name
            assert entry.weight == statement.weight
            assert entry.cost == context.inum.statement_cost(
                statement.query, result.configuration)

    def test_costing_spec_selects_a_distinct_context(self, simple_schema,
                                                     simple_workload):
        tuner = Tuner()
        default = tuner.tune(TuningRequest(workload=simple_workload,
                                           schema=simple_schema))
        loop = tuner.tune(TuningRequest(
            workload=simple_workload, schema=simple_schema,
            costing=CostingSpec(use_gamma_matrix=False)))
        assert len(tuner.contexts) == 2
        # The loop-path context cannot evaluate per-statement tensors…
        assert loop.statement_costs == ()
        # …but the recommendation is the same (the two paths are bit-identical).
        assert loop.configuration == default.configuration

    def test_provenance_records_the_resolved_pipeline(self, simple_schema,
                                                      simple_workload):
        result = Tuner().tune(TuningRequest(
            workload=simple_workload, schema=simple_schema,
            constraints=[_budget(simple_schema)], advisor="tool-b",
            request_id="req-42"))
        provenance = result.provenance
        assert provenance["request_id"] == "req-42"
        assert provenance["advisor"]["requested"] == "tool-b"
        assert provenance["advisor"]["name"] == "dta"
        assert provenance["advisor"]["class"] == "DtaAdvisor"
        assert provenance["schema"]["name"] == simple_schema.name
        assert provenance["workload"]["statements"] == len(simple_workload)
        assert provenance["constraints"] == ["storage_budget[1x data]"]
