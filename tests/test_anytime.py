"""Anytime tuning tests: ``SolveBudget`` end to end.

Three guarantees are pinned here:

* **No-budget parity** — a request without budget fields takes exactly the
  pre-anytime code path: every advisor's ``fingerprint()`` is deterministic
  run to run, and budget-less payloads still encode as wire version 1.
* **Graceful degradation** — an (absurdly) tight budget never breaks a
  request: every advisor still returns a *feasible* configuration, flagged
  ``timed_out=True`` with a finite optimality gap.
* **The budget travels** — through the wire codecs (version 2), the server's
  default/clamp policy, the per-session TTL reaper and the client SDK's
  derived socket timeouts.
"""

from __future__ import annotations

import math
import socket
import time

import pytest

from repro.api import AdvisorSpec, Tuner, TuningRequest, TuningService
from repro.api.registry import make_advisor
from repro.core.constraints import (
    ComparisonSense,
    IndexCountConstraint,
    StorageBudgetConstraint,
)
from repro.core.heuristics import greedy_knapsack, unsupported_constraint
from repro.exceptions import ConstraintError
from repro.lp import SOLVE_TIERS, SolveBudget
from repro.lp.branch_and_bound import BranchAndBoundSolver
from repro.lp.expression import LinearExpression
from repro.lp.model import Model, ObjectiveSense
from repro.lp.solution import SolutionStatus
from repro.server import (
    TuningClient,
    TuningClientTimeout,
    TuningServer,
    TuningServerError,
    WireFormatError,
    decode_request,
    encode_request,
)


def _storage(schema, fraction=1.0):
    return StorageBudgetConstraint.from_fraction_of_data(schema, fraction)


def _request(schema, workload, **kwargs):
    kwargs.setdefault("constraints", [_storage(schema)])
    return TuningRequest(workload=workload, schema=schema, **kwargs)


def _expired_budget(**kwargs) -> SolveBudget:
    """A started budget whose deadline has certainly passed."""
    budget = SolveBudget(time_budget_ms=0.001, **kwargs).start()
    time.sleep(0.002)
    assert budget.expired()
    return budget


#: Every registered (canonical) advisor; scale-out runs inline so tests
#: share no process-pool state.
ADVISORS = [("cophy", {}), ("ilp", {}), ("dta", {}), ("relaxation", {}),
            ("scaleout", {"shard_workers": 1})]


# =========================================================== the budget object
class TestSolveBudget:
    def test_from_spec_unbudgeted_is_none(self):
        assert SolveBudget.from_spec(None, None) is None

    def test_from_spec_deadline_defaults_to_cascade(self):
        budget = SolveBudget.from_spec(250.0, None)
        assert budget.tier == "cascade"
        assert budget.time_budget_ms == 250.0

    def test_from_spec_tier_without_deadline(self):
        budget = SolveBudget.from_spec(None, "heuristic")
        assert budget.tier == "heuristic"
        assert budget.time_budget_ms is None
        assert budget.remaining_seconds() is None
        assert not budget.expired()

    def test_invalid_tier_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            SolveBudget(tier="quantum")
        assert set(SOLVE_TIERS) == {"heuristic", "cascade", "exact"}

    @pytest.mark.parametrize("bad", [0.0, -5.0, float("inf"), float("nan")])
    def test_nonpositive_deadline_rejected(self, bad):
        with pytest.raises(ValueError, match="time_budget_ms"):
            SolveBudget(time_budget_ms=bad)

    def test_clock_anchors_once(self):
        budget = SolveBudget(time_budget_ms=10_000.0)
        assert not budget.started
        assert budget.remaining_seconds() == pytest.approx(10.0)
        budget.start()
        first_deadline = budget._deadline
        budget.start()  # idempotent: re-entering a stage must not extend it
        assert budget._deadline == first_deadline
        assert 0.0 < budget.remaining_seconds() <= 10.0

    def test_expiry_and_floor_at_zero(self):
        budget = _expired_budget()
        assert budget.remaining_seconds() == 0.0

    def test_clamp_time_limit_merges_by_min(self):
        assert SolveBudget().clamp_time_limit(5.0) == 5.0
        budget = SolveBudget(time_budget_ms=1_000.0).start()
        assert budget.clamp_time_limit(None) <= 1.0
        assert budget.clamp_time_limit(0.1) <= 0.1
        assert budget.clamp_time_limit(100.0) <= 1.0

    def test_shard_slice_reserves_merge_time(self):
        assert SolveBudget().shard_slice_seconds(4) is None
        budget = SolveBudget(time_budget_ms=8_000.0)
        # 4 shards on 2 workers = 2 sequential waves; 25% held back for the
        # merge BIP, so each wave gets at most 8s * 0.75 / 2 = 3s.
        slice_s = budget.shard_slice_seconds(4, workers=2)
        assert slice_s == pytest.approx(3.0, rel=0.01)
        everything = budget.shard_slice_seconds(1, workers=1, merge_reserve=0.0)
        assert everything == pytest.approx(8.0, rel=0.01)


# ==================================================== branch and bound anytime
def _knapsack(values, weights, capacity):
    model = Model("knapsack", sense=ObjectiveSense.MAXIMIZE)
    variables = [model.add_binary(f"x{i}") for i in range(len(values))]
    model.set_objective(LinearExpression.sum_of(variables, values))
    model.add_constraint(
        LinearExpression.sum_of(variables, weights) <= capacity,
        name="capacity")
    return model, variables


class TestBranchAndBoundAnytime:
    def test_expired_deadline_returns_warm_start_with_finite_gap(self):
        model, variables = _knapsack([6, 5, 4, 3], [4, 3, 2, 1], 6)
        warm = {variables[3]: 1.0}  # feasible but far from optimal
        solution = BranchAndBoundSolver().solve(
            model, warm_start=warm, budget=_expired_budget())
        assert solution.timed_out
        assert solution.status is SolutionStatus.FEASIBLE
        assert solution.objective == pytest.approx(3.0)
        # The root LP seeds the bound, so the gap is finite (closed-form)
        # even though zero nodes were explored.
        assert math.isfinite(solution.gap) and solution.gap > 0.0
        assert solution.nodes_explored == 0

    def test_expired_deadline_without_incumbent_reports_timeout(self):
        model, _ = _knapsack([6, 5], [4, 3], 6)
        solution = BranchAndBoundSolver().solve(model,
                                                budget=_expired_budget())
        assert solution.timed_out
        assert solution.status is SolutionStatus.ERROR

    def test_budget_node_limit_caps_exploration(self):
        model, _ = _knapsack([6, 5, 4, 3, 2], [4, 3, 2, 1, 2], 6)
        solution = BranchAndBoundSolver().solve(
            model, budget=SolveBudget(node_limit=1))
        assert solution.nodes_explored <= 1
        assert not solution.timed_out  # node limits are not wall-clock expiry

    def test_unbudgeted_solve_is_untouched(self):
        model, _ = _knapsack([6, 5, 4, 3], [4, 3, 2, 1], 6)
        solution = BranchAndBoundSolver().solve(model)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(12.0)  # items 2+3+4
        assert not solution.timed_out


# ========================================================= the greedy heuristic
class TestGreedyKnapsack:
    def _parts(self, simple_schema, simple_workload, simple_candidates):
        advisor = make_advisor("cophy", simple_schema)
        return advisor.inum, simple_workload, simple_candidates

    def test_respects_storage_budget_and_improves_cost(
            self, simple_schema, simple_workload, simple_candidates):
        inum, workload, candidates = self._parts(
            simple_schema, simple_workload, simple_candidates)
        limit = _storage(simple_schema, 0.5)
        result = greedy_knapsack(inum, workload, candidates, [limit])
        assert not result.timed_out
        used = sum(candidates.size_of(index)
                   for index in result.configuration)
        assert used <= limit.budget_bytes + 1e-6
        base_cost = inum.workload_cost(
            workload, type(result.configuration)(()))
        assert result.objective <= base_cost + 1e-9
        assert result.objective >= result.lower_bound - 1e-9
        assert math.isfinite(result.gap)

    def test_expired_budget_returns_feasible_with_finite_gap(
            self, simple_schema, simple_workload, simple_candidates):
        inum, workload, candidates = self._parts(
            simple_schema, simple_workload, simple_candidates)
        result = greedy_knapsack(inum, workload, candidates,
                                 [_storage(simple_schema)],
                                 budget=_expired_budget(tier="heuristic"))
        assert result.timed_out
        assert math.isfinite(result.gap)
        assert len(result.configuration) == 0  # interrupted before any pick

    def test_unsupported_constraints_are_detected_and_rejected(
            self, simple_schema, simple_workload, simple_candidates):
        inum, workload, candidates = self._parts(
            simple_schema, simple_workload, simple_candidates)
        at_least = IndexCountConstraint(limit=1,
                                        sense=ComparisonSense.AT_LEAST)
        assert unsupported_constraint([at_least]) is at_least
        assert unsupported_constraint(
            [_storage(simple_schema), IndexCountConstraint(limit=3)]) is None
        with pytest.raises(ConstraintError, match="heuristic"):
            greedy_knapsack(inum, workload, candidates, [at_least])


# ====================================================== advisors under budgets
class TestAdvisorsUnderBudget:
    @pytest.mark.parametrize("name,options", ADVISORS)
    def test_no_budget_fingerprint_is_deterministic(self, name, options,
                                                    simple_schema,
                                                    simple_workload):
        """Budget-less requests take the pre-anytime path, bit for bit."""
        def run():
            return Tuner().tune(_request(
                simple_schema, simple_workload,
                advisor=AdvisorSpec(name, options),
                request_id=f"parity-{name}"))

        first, second = run(), run()
        assert first.fingerprint() == second.fingerprint()
        assert not first.diagnostics.timed_out
        assert first.diagnostics.solve_tier == "exact"

    @pytest.mark.parametrize("name,options", ADVISORS)
    def test_tight_budget_degrades_gracefully(self, name, options,
                                              simple_schema, simple_workload,
                                              simple_candidates):
        """An absurd deadline still yields a feasible, flagged result."""
        limit = _storage(simple_schema, 0.5)
        result = Tuner().tune(_request(
            simple_schema, simple_workload, constraints=[limit],
            candidates=simple_candidates,
            advisor=AdvisorSpec(name, options, time_budget_ms=0.001)))
        assert result.diagnostics.timed_out
        assert math.isfinite(result.diagnostics.gap)
        assert math.isfinite(result.objective_estimate)
        used = sum(simple_candidates.size_of(index)
                   for index in result.configuration)
        assert used <= limit.budget_bytes + 1e-6

    def test_heuristic_tier_never_builds_the_bip(self, simple_schema,
                                                 simple_workload):
        result = Tuner().tune(_request(
            simple_schema, simple_workload,
            advisor=AdvisorSpec("cophy", solve_tier="heuristic")))
        assert result.diagnostics.solve_tier == "heuristic"
        assert "heuristic" in result.extras
        assert result.diagnostics.nodes_explored == 0

    def test_roomy_budget_finishes_exact_within_deadline(self, simple_schema,
                                                         simple_workload):
        """The acceptance shape, embedded: warm context + sane budget."""
        service = TuningService()
        warm = service.tune(_request(simple_schema, simple_workload))
        started = time.perf_counter()
        result = service.tune(_request(
            simple_schema, simple_workload,
            advisor=AdvisorSpec("cophy", time_budget_ms=250.0)))
        elapsed = time.perf_counter() - started
        assert elapsed < 0.5  # 2x budget, per the acceptance bar
        assert result.diagnostics.solve_tier == "cascade"
        assert not result.diagnostics.timed_out
        # The cascade's exact leg must not be beaten by its own greedy leg.
        assert result.objective_estimate <= warm.objective_estimate + 1e-6
        assert result.configuration == warm.configuration

    def test_budget_lands_in_provenance(self, simple_schema, simple_workload):
        result = Tuner().tune(_request(
            simple_schema, simple_workload,
            advisor=AdvisorSpec("cophy", time_budget_ms=100.0,
                                solve_tier="cascade")))
        advisor = result.provenance["advisor"]
        assert advisor["time_budget_ms"] == 100.0
        assert advisor["solve_tier"] == "cascade"


# ================================================================= wire format
class TestWireVersioning:
    def test_budgetless_request_stays_wire_version_1(self, simple_schema,
                                                     simple_workload):
        payload = encode_request(_request(simple_schema, simple_workload))
        assert payload["wire_version"] == 1
        decoded = decode_request(payload)
        assert decoded.resolved_advisor().time_budget_ms is None

    def test_budget_upgrades_to_wire_version_2_and_round_trips(
            self, simple_schema, simple_workload):
        request = _request(simple_schema, simple_workload,
                           advisor=AdvisorSpec("cophy", time_budget_ms=250.0,
                                               solve_tier="cascade"))
        payload = encode_request(request)
        assert payload["wire_version"] == 2
        spec = decode_request(payload).resolved_advisor()
        assert spec.time_budget_ms == 250.0
        assert spec.solve_tier == "cascade"

    def test_tier_alone_upgrades_the_version(self, simple_schema,
                                             simple_workload):
        payload = encode_request(_request(
            simple_schema, simple_workload,
            advisor=AdvisorSpec("cophy", solve_tier="heuristic")))
        assert payload["wire_version"] == 2

    def test_budget_fields_under_version_1_are_rejected(self, simple_schema,
                                                        simple_workload):
        payload = encode_request(_request(
            simple_schema, simple_workload,
            advisor=AdvisorSpec("cophy", time_budget_ms=250.0)))
        payload["wire_version"] = 1
        with pytest.raises(WireFormatError, match="advisor"):
            decode_request(payload)

    def test_unknown_version_rejected(self, simple_schema, simple_workload):
        payload = encode_request(_request(simple_schema, simple_workload))
        payload["wire_version"] = 3
        with pytest.raises(WireFormatError, match="wire_version"):
            decode_request(payload)

    def test_malformed_budget_value_rejected(self, simple_schema,
                                             simple_workload):
        payload = encode_request(_request(
            simple_schema, simple_workload,
            advisor=AdvisorSpec("cophy", time_budget_ms=250.0)))
        payload["advisor"]["time_budget_ms"] = "soon"
        with pytest.raises(WireFormatError, match="advisor"):
            decode_request(payload)


# ================================================================== the server
class TestServerBudgetPolicy:
    def test_default_budget_fills_unbudgeted_requests(self, simple_schema,
                                                      simple_workload):
        with TuningServer(default_time_budget_ms=5_000.0) as server:
            budgeted = server._budgeted(_request(simple_schema,
                                                 simple_workload))
            assert budgeted.resolved_advisor().time_budget_ms == 5_000.0

    def test_clamp_overrides_greedy_clients_only(self, simple_schema,
                                                 simple_workload):
        with TuningServer(max_time_budget_ms=1_000.0) as server:
            greedy = _request(simple_schema, simple_workload,
                              advisor=AdvisorSpec("cophy",
                                                  time_budget_ms=60_000.0))
            assert (server._budgeted(greedy).resolved_advisor()
                    .time_budget_ms == 1_000.0)
            modest = _request(simple_schema, simple_workload,
                              advisor=AdvisorSpec("cophy",
                                                  time_budget_ms=500.0))
            assert server._budgeted(modest) is modest

    def test_no_policy_leaves_requests_alone(self, simple_schema,
                                             simple_workload):
        with TuningServer() as server:
            request = _request(simple_schema, simple_workload)
            assert server._budgeted(request) is request

    @pytest.mark.parametrize("bad", [{"session_ttl_s": 0},
                                     {"default_time_budget_ms": -1},
                                     {"max_time_budget_ms": 0}])
    def test_invalid_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            TuningServer(**bad)

    def test_budgeted_round_trip_over_http(self, simple_schema,
                                           simple_workload):
        """The wire carries the budget out and the timeout flag back."""
        request = _request(simple_schema, simple_workload,
                           advisor=AdvisorSpec("cophy",
                                               time_budget_ms=0.001))
        with TuningServer() as server:
            result = TuningClient(server.url).tune(request)
            stats = TuningClient(server.url).stats()
        assert result.diagnostics.timed_out
        assert math.isfinite(result.diagnostics.gap)
        assert result.provenance["advisor"]["time_budget_ms"] == 0.001
        assert stats["default_time_budget_ms"] is None

    def test_roomy_budget_over_http_matches_unbudgeted_decision(
            self, simple_schema, simple_workload):
        with TuningServer() as server:
            client = TuningClient(server.url)
            unbudgeted = client.tune(_request(simple_schema, simple_workload))
            budgeted = client.tune(_request(
                simple_schema, simple_workload,
                advisor=AdvisorSpec("cophy", time_budget_ms=30_000.0)))
        assert budgeted.configuration == unbudgeted.configuration
        assert not budgeted.diagnostics.timed_out
        assert budgeted.diagnostics.solve_tier == "cascade"


class TestSessionReaping:
    def test_idle_sessions_are_reaped_and_counted(self, simple_schema,
                                                  simple_workload):
        body = encode_request(_request(simple_schema, simple_workload))
        with TuningServer(session_ttl_s=0.05) as server:
            session_id = server.handle_open_session(body)["session_id"]
            assert server.session_count == 1
            time.sleep(0.12)
            assert server.session_count == 0
            with pytest.raises(TuningServerError, match="Unknown session"):
                server.handle_session_tune(session_id,
                                           {"operation": "recommend"})
            stats = server.handle_stats()
            assert stats["service"]["sessions_reaped"] == 1
            assert stats["session_ttl_s"] == 0.05

    def test_touch_refreshes_the_ttl(self, simple_schema, simple_workload):
        body = encode_request(_request(simple_schema, simple_workload))
        with TuningServer(session_ttl_s=0.5) as server:
            session_id = server.handle_open_session(body)["session_id"]
            time.sleep(0.3)
            server._session(session_id)  # any access refreshes last-used
            time.sleep(0.3)
            assert server.session_count == 1  # 0.6s old but touched at 0.3s
            server.handle_close_session(session_id)
            assert server.session_count == 0

    def test_without_ttl_sessions_are_immortal(self, simple_schema,
                                               simple_workload):
        body = encode_request(_request(simple_schema, simple_workload))
        with TuningServer() as server:
            server.handle_open_session(body)
            time.sleep(0.05)
            assert server.session_count == 1
            assert server.handle_stats()["service"]["sessions_reaped"] == 0


# ================================================================== the client
class TestClientTimeouts:
    def test_derived_timeout_from_budgets(self, simple_schema,
                                          simple_workload):
        client = TuningClient("http://127.0.0.1:1", budget_slack_s=2.0)
        budgeted = _request(simple_schema, simple_workload,
                            advisor=AdvisorSpec("cophy",
                                                time_budget_ms=250.0))
        unbudgeted = _request(simple_schema, simple_workload)
        assert client._derived_timeout([budgeted]) == pytest.approx(2.25)
        assert client._derived_timeout([budgeted, budgeted]) == \
            pytest.approx(2.5)
        # One unbudgeted request makes the batch unbounded.
        assert client._derived_timeout([budgeted, unbudgeted]) is None
        assert client._derived_timeout([]) is None

    def test_unresponsive_server_raises_typed_timeout(self):
        # A listening socket that never accepts: connects succeed (kernel
        # backlog) but no byte ever comes back, so the read times out.
        with socket.socket() as sink:
            sink.bind(("127.0.0.1", 0))
            sink.listen(1)
            port = sink.getsockname()[1]
            client = TuningClient(f"http://127.0.0.1:{port}", timeout=0.3)
            with pytest.raises(TuningClientTimeout) as excinfo:
                client.health()
        assert excinfo.value.timeout_seconds == 0.3
        assert excinfo.value.error_type == "ClientTimeout"
        # Existing `except TuningServerError` handlers keep catching it.
        assert isinstance(excinfo.value, TuningServerError)
