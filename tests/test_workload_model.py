"""Unit tests for predicates, queries and workloads."""

from __future__ import annotations

import pytest

from repro.exceptions import WorkloadError
from repro.workload.predicates import (
    ColumnRef,
    ComparisonOperator,
    JoinPredicate,
    SimplePredicate,
)
from repro.workload.query import (
    Aggregate,
    AggregateFunction,
    SelectQuery,
    StatementKind,
    UpdateQuery,
)
from repro.workload.workload import Workload, WorkloadStatement


class TestColumnRef:
    def test_str(self):
        assert str(ColumnRef("orders", "o_id")) == "orders.o_id"

    def test_requires_both_parts(self):
        with pytest.raises(WorkloadError):
            ColumnRef("", "x")
        with pytest.raises(WorkloadError):
            ColumnRef("t", "")

    def test_equality_and_hash(self):
        assert ColumnRef("t", "c") == ColumnRef("t", "c")
        assert len({ColumnRef("t", "c"), ColumnRef("t", "c")}) == 1


class TestSimplePredicate:
    def test_sargability(self):
        eq = SimplePredicate(ColumnRef("t", "c"), ComparisonOperator.EQ, 1)
        like = SimplePredicate(ColumnRef("t", "c"), ComparisonOperator.LIKE, "x%")
        assert eq.is_sargable and eq.is_equality
        assert not like.is_sargable

    def test_between_requires_pair(self):
        with pytest.raises(WorkloadError):
            SimplePredicate(ColumnRef("t", "c"), ComparisonOperator.BETWEEN, 5)

    def test_in_requires_values(self):
        with pytest.raises(WorkloadError):
            SimplePredicate(ColumnRef("t", "c"), ComparisonOperator.IN, ())

    def test_selectivity_hint_validation(self):
        with pytest.raises(WorkloadError):
            SimplePredicate(ColumnRef("t", "c"), ComparisonOperator.EQ, 1,
                            selectivity_hint=0.0)
        predicate = SimplePredicate(ColumnRef("t", "c"), ComparisonOperator.EQ, 1,
                                    selectivity_hint=0.5)
        assert predicate.selectivity_hint == 0.5

    def test_str_renderings(self):
        between = SimplePredicate(ColumnRef("t", "c"), ComparisonOperator.BETWEEN,
                                  (1, 2))
        in_list = SimplePredicate(ColumnRef("t", "c"), ComparisonOperator.IN, (1, 2))
        assert "BETWEEN" in str(between)
        assert "IN" in str(in_list)


class TestJoinPredicate:
    def test_must_connect_two_tables(self):
        with pytest.raises(WorkloadError):
            JoinPredicate(ColumnRef("t", "a"), ColumnRef("t", "b"))

    def test_column_lookup(self):
        join = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert join.column_for("a") == ColumnRef("a", "x")
        assert join.other("a") == ColumnRef("b", "y")
        assert join.references("b")
        with pytest.raises(WorkloadError):
            join.column_for("c")


class TestSelectQuery:
    def test_requires_a_table(self):
        with pytest.raises(WorkloadError):
            SelectQuery(tables=())

    def test_rejects_predicate_on_unreferenced_table(self):
        with pytest.raises(WorkloadError):
            SelectQuery(tables=("orders",),
                        predicates=(SimplePredicate(ColumnRef("items", "i_price"),
                                                    ComparisonOperator.EQ, 1),))

    def test_rejects_join_on_unreferenced_table(self):
        with pytest.raises(WorkloadError):
            SelectQuery(tables=("orders",),
                        joins=(JoinPredicate(ColumnRef("orders", "o_id"),
                                             ColumnRef("items", "i_order")),))

    def test_per_table_accessors(self, simple_workload):
        join_query = simple_workload.statements[2].query
        assert join_query.references("orders")
        assert join_query.predicates_on("orders")
        assert not join_query.predicates_on("items")
        assert join_query.join_columns_on("items") == (ColumnRef("items", "i_order"),)
        assert ColumnRef("orders", "o_date") in join_query.group_by_on("orders")

    def test_interesting_orders_cover_joins_and_grouping(self, simple_workload):
        join_query = simple_workload.statements[2].query
        orders_interesting = join_query.interesting_order_columns("orders")
        assert ColumnRef("orders", "o_id") in orders_interesting
        assert ColumnRef("orders", "o_date") in orders_interesting

    def test_referenced_and_output_columns(self, simple_workload):
        point = simple_workload.statements[0].query
        referenced = point.referenced_columns()
        assert ColumnRef("orders", "o_total") in referenced
        assert ColumnRef("orders", "o_customer") in referenced
        assert point.output_columns_on("orders") == (ColumnRef("orders", "o_total"),)

    def test_validate_against_schema(self, simple_schema, simple_workload):
        for statement in simple_workload:
            statement.query.validate_against(simple_schema)

    def test_validate_catches_unknown_column(self, simple_schema):
        query = SelectQuery(tables=("orders",),
                            projections=(ColumnRef("orders", "missing"),))
        with pytest.raises(Exception):
            query.validate_against(simple_schema)

    def test_names_are_unique_by_default(self):
        first = SelectQuery(tables=("orders",))
        second = SelectQuery(tables=("orders",))
        assert first.name != second.name


class TestUpdateQuery:
    def test_requires_set_columns(self):
        with pytest.raises(WorkloadError):
            UpdateQuery(table="orders", set_columns=())

    def test_set_columns_must_belong_to_table(self):
        with pytest.raises(WorkloadError):
            UpdateQuery(table="orders",
                        set_columns=(ColumnRef("items", "i_price"),))

    def test_update_fraction_validation(self):
        with pytest.raises(WorkloadError):
            UpdateQuery(table="orders",
                        set_columns=(ColumnRef("orders", "o_status"),),
                        update_fraction=1.5)

    def test_query_shell_is_a_select(self, simple_workload):
        update = simple_workload.statements[3].query
        shell = update.query_shell()
        assert isinstance(shell, SelectQuery)
        assert shell.kind is StatementKind.SELECT
        assert shell.tables == ("orders",)
        assert shell.name.endswith("__shell")
        # Shell name is deterministic so INUM can cache by name.
        assert update.query_shell().name == shell.name

    def test_kind_and_write_check(self, simple_workload):
        update = simple_workload.statements[3].query
        assert update.is_update
        assert update.writes_column(ColumnRef("orders", "o_status"))
        assert not update.writes_column(ColumnRef("orders", "o_total"))


class TestWorkload:
    def test_requires_statements(self):
        with pytest.raises(WorkloadError):
            Workload([])

    def test_accepts_bare_queries(self):
        workload = Workload([SelectQuery(tables=("orders",))])
        assert workload.statements[0].weight == 1.0

    def test_rejects_non_queries(self):
        with pytest.raises(WorkloadError):
            Workload(["SELECT 1"])  # type: ignore[list-item]

    def test_rejects_non_positive_weights(self):
        with pytest.raises(WorkloadError):
            WorkloadStatement(SelectQuery(tables=("orders",)), weight=0.0)

    def test_partitions(self, simple_workload):
        assert len(simple_workload.select_statements()) == 3
        assert len(simple_workload.update_statements()) == 1

    def test_weight_lookup(self, simple_workload):
        first = simple_workload.statements[0]
        assert simple_workload.weight_of(first.query) == first.weight
        with pytest.raises(WorkloadError):
            simple_workload.weight_of(SelectQuery(tables=("orders",)))

    def test_subset_and_extend(self, simple_workload):
        subset = simple_workload.subset(2)
        assert len(subset) == 2
        extended = subset.extended([SelectQuery(tables=("orders",), name="extra#1")])
        assert len(extended) == 3
        with pytest.raises(WorkloadError):
            simple_workload.subset(0)

    def test_summary_and_templates(self, simple_workload):
        summary = simple_workload.summary()
        assert summary["statements"] == 4
        assert summary["updates"] == 1
        assert summary["templates"] == 4
        assert summary["total_weight"] == pytest.approx(5.0)

    def test_referenced_tables(self, simple_workload):
        assert set(simple_workload.referenced_tables()) == {"orders", "items"}
