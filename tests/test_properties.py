"""Cross-module property-based tests (hypothesis) on the core invariants.

These tests complement the per-module unit tests by checking the properties
the whole reproduction rests on, over randomly generated inputs:

* INUM's cost is monotone and consistent with linear composability for random
  configurations;
* the Theorem-1 BIP optimum never loses to any explicitly enumerated
  configuration (soundness of the reduction) on random small instances;
* candidate generation only ever emits indexes that are valid for the schema
  and relevant to the workload;
* index-size estimation behaves monotonically under column additions.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bip_builder import BipBuilder
from repro.indexes.candidate_generation import CandidateGenerator, CandidateSet
from repro.indexes.configuration import Configuration
from repro.inum.cache import InumCache
from repro.lp.highs_backend import MilpBackend
from repro.optimizer.whatif import WhatIfOptimizer
from tests.conftest import build_simple_schema, build_simple_workload

_SCHEMA = build_simple_schema()
_WORKLOAD = build_simple_workload()
_OPTIMIZER = WhatIfOptimizer(_SCHEMA)
_INUM = InumCache(_OPTIMIZER)
_CANDIDATES = CandidateGenerator(_SCHEMA).generate(_WORKLOAD)
_ALL_CANDIDATES = list(_CANDIDATES)

_subset_strategy = st.lists(
    st.sampled_from(_ALL_CANDIDATES), min_size=0, max_size=6, unique=True)


class TestInumProperties:
    @given(subset=_subset_strategy)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    def test_inum_cost_positive_and_finite(self, subset):
        configuration = Configuration(subset)
        for statement in _WORKLOAD:
            cost = _INUM.statement_cost(statement.query, configuration)
            assert cost > 0
            assert cost != float("inf")

    @given(subset=_subset_strategy, extra=st.sampled_from(_ALL_CANDIDATES))
    @settings(max_examples=40, deadline=None)
    def test_adding_an_index_never_hurts_select_cost(self, subset, extra):
        smaller = Configuration(subset)
        larger = Configuration([*subset, extra])
        for statement in _WORKLOAD.select_statements():
            assert (_INUM.cost(statement.query, larger)
                    <= _INUM.cost(statement.query, smaller) + 1e-6)

    @given(subset=_subset_strategy)
    @settings(max_examples=30, deadline=None)
    def test_inum_tracks_the_optimizer(self, subset):
        configuration = Configuration(subset)
        for statement in _WORKLOAD.select_statements():
            inum_cost = _INUM.cost(statement.query, configuration)
            true_cost = _OPTIMIZER.cost(statement.query, configuration)
            assert inum_cost == pytest.approx(true_cost, rel=0.5)

    @given(subset=_subset_strategy)
    @settings(max_examples=30, deadline=None)
    def test_linear_composability_decomposition(self, subset):
        """cost(q, X) == min_k [beta_k + sum_i min_{a in X_i ∪ {I0}} gamma_kia]."""
        configuration = Configuration(subset)
        for statement in _WORKLOAD.select_statements():
            query = statement.query
            templates = _INUM.build(query)
            decomposed = min(
                template.internal_cost + sum(
                    min([_INUM.gamma(query, template, table, None)]
                        + [_INUM.gamma(query, template, table, index)
                           for index in configuration.indexes_on(table)])
                    for table in query.tables)
                for template in templates)
            assert _INUM.cost(query, configuration) == pytest.approx(decomposed)


class TestBipProperties:
    @given(subset=st.lists(st.sampled_from(_ALL_CANDIDATES), min_size=1,
                           max_size=7, unique=True))
    @settings(max_examples=12, deadline=None)
    def test_bip_optimum_never_loses_to_any_explicit_configuration(self, subset):
        """Soundness of Theorem 1 on randomly drawn candidate sets."""
        candidates = CandidateSet(_SCHEMA, subset)
        inum = InumCache(WhatIfOptimizer(_SCHEMA))
        bip = BipBuilder(inum).build(_WORKLOAD, candidates)
        solution = MilpBackend().solve(bip.model)
        chosen = bip.extract_configuration(solution)
        bip_cost = inum.workload_cost(_WORKLOAD, chosen)
        # The chosen configuration is at least as good as selecting nothing,
        # everything, or any single index.
        competitors = [Configuration(), Configuration(subset)]
        competitors.extend(Configuration([index]) for index in subset)
        for competitor in competitors:
            assert bip_cost <= inum.workload_cost(_WORKLOAD, competitor) + 1e-6
        # And the objective reported by the solver matches the INUM cost.
        assert solution.objective == pytest.approx(bip_cost, rel=1e-6)


class TestCandidateGenerationProperties:
    @given(seed=st.integers(min_value=0, max_value=50),
           size=st.integers(min_value=1, max_value=12))
    @settings(max_examples=15, deadline=None)
    def test_generated_candidates_are_valid_and_relevant(self, seed, size):
        from repro.catalog.tpch import tpch_schema
        from repro.workload.generators import generate_homogeneous_workload

        schema = tpch_schema(scale_factor=0.002)
        workload = generate_homogeneous_workload(size, seed=seed)
        candidates = CandidateGenerator(schema).generate(workload)
        referenced_tables = set(workload.referenced_tables())
        for index in candidates:
            table = schema.table(index.table)
            for column in index.all_columns:
                assert table.has_column(column)
            assert index.table in referenced_tables

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_candidate_set_grows_with_workload(self, seed):
        from repro.catalog.tpch import tpch_schema
        from repro.workload.generators import generate_heterogeneous_workload

        schema = tpch_schema(scale_factor=0.002)
        generator = CandidateGenerator(schema)
        small = generator.generate(generate_heterogeneous_workload(4, seed=seed))
        large = generator.generate(generate_heterogeneous_workload(16, seed=seed))
        assert len(large) >= len(small)


class TestWorkloadGeneratorProperties:
    @given(seed=st.integers(min_value=0, max_value=200),
           size=st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_homogeneous_workloads_always_validate(self, seed, size):
        from repro.catalog.tpch import tpch_schema
        from repro.workload.generators import generate_homogeneous_workload

        schema = tpch_schema(scale_factor=0.002)
        workload = generate_homogeneous_workload(size, seed=seed)
        assert len(workload) == size
        workload.validate_against(schema)

    @given(seed=st.integers(min_value=0, max_value=200),
           size=st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_heterogeneous_workloads_always_validate(self, seed, size):
        from repro.catalog.tpch import tpch_schema
        from repro.workload.generators import generate_heterogeneous_workload

        schema = tpch_schema(scale_factor=0.002)
        workload = generate_heterogeneous_workload(size, seed=seed)
        assert len(workload) == size
        workload.validate_against(schema)
