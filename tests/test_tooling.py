"""Tests for repo tooling: the benchmark-trajectory gate and its update flag."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "check_bench_regression.py"


def _run(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(SCRIPT), *argv],
                          capture_output=True, text=True)


def _write(path: Path, results: dict) -> Path:
    path.write_text(json.dumps({"results": results}), encoding="utf-8")
    return path


class TestRegressionGate:
    def test_holding_trajectory_passes(self, tmp_path):
        fresh = _write(tmp_path / "fresh.json",
                       {"bench": {"cost_speedup": 10.0, "note_ms": 3.0}})
        baseline = _write(tmp_path / "base.json",
                          {"bench": {"cost_speedup": 9.0, "note_ms": 999.0}})
        done = _run("--fresh", str(fresh), "--baseline", str(baseline))
        assert done.returncode == 0, done.stdout + done.stderr
        assert "holds" in done.stdout

    def test_regression_fails(self, tmp_path):
        fresh = _write(tmp_path / "fresh.json", {"bench": {"cost_speedup": 5.0}})
        baseline = _write(tmp_path / "base.json",
                          {"bench": {"cost_speedup": 9.0}})
        done = _run("--fresh", str(fresh), "--baseline", str(baseline))
        assert done.returncode == 1
        assert "FAIL" in done.stdout

    def test_update_baseline_writes_conservative_values(self, tmp_path):
        fresh = _write(tmp_path / "fresh.json", {
            "bench": {"cost_speedup": 10.0, "merge_cost_ratio": 1.0,
                      "raw_ms": 5.0},
            "new_bench": {"probe_call_reduction": 8.0},
        })
        baseline = _write(tmp_path / "base.json",
                          {"bench": {"cost_speedup": 2.0, "keep_me": 42}})
        done = _run("--fresh", str(fresh), "--baseline", str(baseline),
                    "--update-baseline", "--margin", "0.2")
        assert done.returncode == 0, done.stdout + done.stderr
        updated = json.loads(baseline.read_text())["results"]
        # Higher-is-better written 20% below fresh, lower-is-better 20% above.
        assert updated["bench"]["cost_speedup"] == 8.0
        assert updated["bench"]["merge_cost_ratio"] == 1.2
        # Never-seen benchmarks are added; raw (non-ratio) and untracked
        # baseline keys are left alone.
        assert updated["new_bench"]["probe_call_reduction"] == 6.4
        assert "raw_ms" not in updated["bench"]
        assert updated["bench"]["keep_me"] == 42
        # The refreshed baseline now gates the same fresh run successfully.
        done = _run("--fresh", str(fresh), "--baseline", str(baseline))
        assert done.returncode == 0

    def test_update_baseline_rejects_bad_margin(self, tmp_path):
        fresh = _write(tmp_path / "fresh.json", {"bench": {"cost_speedup": 1.0}})
        baseline = _write(tmp_path / "base.json", {})
        done = _run("--fresh", str(fresh), "--baseline", str(baseline),
                    "--update-baseline", "--margin", "1.5")
        assert done.returncode != 0
