"""Tests for repo tooling: the benchmark-trajectory gate and its update flag."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "check_bench_regression.py"


def _run(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(SCRIPT), *argv],
                          capture_output=True, text=True)


def _write(path: Path, results: dict) -> Path:
    path.write_text(json.dumps({"results": results}), encoding="utf-8")
    return path


class TestRegressionGate:
    def test_holding_trajectory_passes(self, tmp_path):
        fresh = _write(tmp_path / "fresh.json",
                       {"bench": {"cost_speedup": 10.0, "note_ms": 3.0}})
        baseline = _write(tmp_path / "base.json",
                          {"bench": {"cost_speedup": 9.0, "note_ms": 999.0}})
        done = _run("--fresh", str(fresh), "--baseline", str(baseline))
        assert done.returncode == 0, done.stdout + done.stderr
        assert "holds" in done.stdout

    def test_regression_fails(self, tmp_path):
        fresh = _write(tmp_path / "fresh.json", {"bench": {"cost_speedup": 5.0}})
        baseline = _write(tmp_path / "base.json",
                          {"bench": {"cost_speedup": 9.0}})
        done = _run("--fresh", str(fresh), "--baseline", str(baseline))
        assert done.returncode == 1
        assert "FAIL" in done.stdout

    def test_update_baseline_writes_conservative_values(self, tmp_path):
        fresh = _write(tmp_path / "fresh.json", {
            "bench": {"cost_speedup": 10.0, "merge_cost_ratio": 1.0,
                      "raw_ms": 5.0},
            "new_bench": {"probe_call_reduction": 8.0},
        })
        baseline = _write(tmp_path / "base.json",
                          {"bench": {"cost_speedup": 2.0, "keep_me": 42}})
        done = _run("--fresh", str(fresh), "--baseline", str(baseline),
                    "--update-baseline", "--margin", "0.2")
        assert done.returncode == 0, done.stdout + done.stderr
        updated = json.loads(baseline.read_text())["results"]
        # Higher-is-better written 20% below fresh, lower-is-better 20% above.
        assert updated["bench"]["cost_speedup"] == 8.0
        assert updated["bench"]["merge_cost_ratio"] == 1.2
        # Never-seen benchmarks are added; raw (non-ratio) and untracked
        # baseline keys are left alone.
        assert updated["new_bench"]["probe_call_reduction"] == 6.4
        assert "raw_ms" not in updated["bench"]
        assert updated["bench"]["keep_me"] == 42
        # The refreshed baseline now gates the same fresh run successfully.
        done = _run("--fresh", str(fresh), "--baseline", str(baseline))
        assert done.returncode == 0

    def test_update_baseline_rejects_bad_margin(self, tmp_path):
        fresh = _write(tmp_path / "fresh.json", {"bench": {"cost_speedup": 1.0}})
        baseline = _write(tmp_path / "base.json", {})
        done = _run("--fresh", str(fresh), "--baseline", str(baseline),
                    "--update-baseline", "--margin", "1.5")
        assert done.returncode != 0


# --------------------------------------------------------------------------
# reprolint CLI contract (PR 9): python -m repro.analysis
# --------------------------------------------------------------------------

import os
import textwrap

_LINT_ENV = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}


def _lint(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        capture_output=True, text=True, env=_LINT_ENV, cwd=REPO_ROOT)


def _tree(tmp_path: Path, files: dict) -> Path:
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return tmp_path


_BAD_TREE = {
    "pkg/mod.py": """\
    import os

    def check(x):
        assert x > 0
        return x
    """,
}

_CLEAN_TREE = {
    "pkg/mod.py": """\
    def check(x):
        if x <= 0:
            raise ValueError(x)
        return x
    """,
}


class TestReprolintCli:
    def test_clean_tree_exits_zero(self, tmp_path):
        root = _tree(tmp_path, _CLEAN_TREE)
        done = _lint("--root", str(root), "--no-baseline")
        assert done.returncode == 0, done.stdout + done.stderr
        assert "0 finding(s)" in done.stdout

    def test_findings_exit_one_with_file_line_rule(self, tmp_path):
        root = _tree(tmp_path, _BAD_TREE)
        done = _lint("--root", str(root), "--no-baseline")
        assert done.returncode == 1
        assert "pkg/mod.py:4: [runtime-assert]" in done.stdout
        assert "pkg/mod.py:1: [unused-import]" in done.stdout

    def test_unknown_rule_exits_two(self, tmp_path):
        root = _tree(tmp_path, _CLEAN_TREE)
        done = _lint("--root", str(root), "--rule", "no-such-rule")
        assert done.returncode == 2
        assert "unknown rule" in done.stderr

    def test_bad_flag_exits_two(self):
        done = _lint("--frobnicate")
        assert done.returncode == 2

    def test_rule_filter_restricts_findings(self, tmp_path):
        root = _tree(tmp_path, _BAD_TREE)
        done = _lint("--root", str(root), "--no-baseline",
                     "--rule", "runtime-assert")
        assert done.returncode == 1
        assert "[runtime-assert]" in done.stdout
        assert "[unused-import]" not in done.stdout

    def test_update_baseline_round_trip(self, tmp_path):
        root = _tree(tmp_path, _BAD_TREE)
        baseline = tmp_path / "baseline.json"
        done = _lint("--root", str(root), "--baseline", str(baseline),
                     "--update-baseline")
        assert done.returncode == 0, done.stdout + done.stderr
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1
        assert {entry["rule"] for entry in payload["findings"]} == {
            "runtime-assert", "unused-import"}
        assert all("justification" in entry for entry in payload["findings"])
        # One finding object per line keeps baseline diffs reviewable.
        body = baseline.read_text()
        assert body.count('"rule"') == len(payload["findings"])
        for line in body.splitlines():
            assert line.count('"rule"') <= 1
        # The grandfathered findings no longer fail the run...
        done = _lint("--root", str(root), "--baseline", str(baseline))
        assert done.returncode == 0
        assert "2 grandfathered" in done.stdout
        # ...but a fresh violation still does.
        (root / "pkg" / "extra.py").write_text(
            "def f(y):\n    assert y\n", encoding="utf-8")
        done = _lint("--root", str(root), "--baseline", str(baseline))
        assert done.returncode == 1
        assert "pkg/extra.py:2: [runtime-assert]" in done.stdout

    def test_stale_baseline_entries_are_reported_not_fatal(self, tmp_path):
        root = _tree(tmp_path, _BAD_TREE)
        baseline = tmp_path / "baseline.json"
        _lint("--root", str(root), "--baseline", str(baseline),
              "--update-baseline")
        _tree(tmp_path, _CLEAN_TREE)  # fix the violations in place
        (root / "pkg" / "mod.py").write_text(
            textwrap.dedent(_CLEAN_TREE["pkg/mod.py"]), encoding="utf-8")
        done = _lint("--root", str(root), "--baseline", str(baseline))
        assert done.returncode == 0
        assert "stale baseline" in done.stdout

    def test_inline_suppression_parsing(self, tmp_path):
        root = _tree(tmp_path, {"pkg/mod.py": """\
            def check(x):
                assert x > 0  # reprolint: disable=runtime-assert
                return x
            """})
        done = _lint("--root", str(root), "--no-baseline")
        assert done.returncode == 0, done.stdout + done.stderr

    def test_missing_baseline_path_exits_two(self, tmp_path):
        root = _tree(tmp_path, _CLEAN_TREE)
        done = _lint("--root", str(root), "--baseline",
                     str(tmp_path / "nope.json"))
        assert done.returncode == 2

    def test_list_rules(self):
        done = _lint("--list-rules")
        assert done.returncode == 0
        for name in ("fingerprint-purity", "fault-site-discipline",
                     "lock-discipline", "metric-label-cardinality",
                     "wire-codec-completeness", "worker-pickle-safety",
                     "runtime-assert", "unused-import"):
            assert name in done.stdout

    def test_repo_default_run_is_clean_and_fast(self):
        done = _lint()
        assert done.returncode == 0, done.stdout + done.stderr
