"""Tests for TuningResult: determinism, JSON round-trips, fingerprints."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    AdvisorSpec,
    Tuner,
    TuningRequest,
    TuningResult,
)
from repro.api.result import StatementCost, TuningDiagnostics
from repro.core.constraints import StorageBudgetConstraint
from repro.core.solver import SolverBackend
from repro.indexes.configuration import Configuration
from repro.workload.generators import generate_homogeneous_workload


def _seeded_request(schema, seed=31, statements=10, **kwargs):
    """A fully seeded request — two builds must tune identically."""
    workload = generate_homogeneous_workload(statements, seed=seed)
    budget = StorageBudgetConstraint.from_fraction_of_data(schema, 1.0)
    return TuningRequest(workload=workload, schema=schema,
                         constraints=[budget], **kwargs)


class TestDeterminism:
    @pytest.mark.parametrize("advisor", ["cophy", "dta", "tool-a"])
    def test_same_seed_same_payload(self, tpch, advisor):
        """Same seed ⇒ identical result payload (wall-clock excluded)."""
        first = Tuner().tune(_seeded_request(tpch, advisor=advisor))
        second = Tuner().tune(_seeded_request(tpch, advisor=advisor))
        assert first.fingerprint() == second.fingerprint()
        assert first.configuration == second.configuration
        assert first.statement_costs == second.statement_costs
        assert first.objective_estimate == second.objective_estimate

    def test_different_seed_changes_the_fingerprint(self, tpch):
        first = Tuner().tune(_seeded_request(tpch, seed=31))
        other = Tuner().tune(_seeded_request(tpch, seed=32))
        assert first.fingerprint() != other.fingerprint()

    def test_fingerprint_ignores_wall_clock_fields(self, tpch):
        result = Tuner().tune(_seeded_request(tpch))
        before = result.fingerprint()
        result.diagnostics.timings["facade.total"] = 123.456
        assert result.fingerprint() == before


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self, simple_schema,
                                             simple_workload):
        budget = StorageBudgetConstraint.from_fraction_of_data(simple_schema, 1.0)
        result = Tuner().tune(TuningRequest(
            workload=simple_workload, schema=simple_schema,
            constraints=[budget], request_id="round-trip"))
        restored = TuningResult.from_json(result.to_json())
        assert restored.configuration == result.configuration
        assert restored.advisor_name == result.advisor_name
        assert restored.objective_estimate == result.objective_estimate
        assert restored.statement_costs == result.statement_costs
        assert restored.provenance == result.provenance
        assert restored.diagnostics.gap == result.diagnostics.gap
        assert restored.diagnostics.whatif_calls == result.diagnostics.whatif_calls
        assert restored.diagnostics.timings == result.diagnostics.timings
        assert restored.fingerprint() == result.fingerprint()
        # Live extras never survive serialization — except the exported
        # span tree, which rides the payload so remote callers see the
        # server-side trace (PR 8).
        assert set(restored.extras) <= {"trace"}
        assert restored.extras.get("trace") == result.extras.get("trace")

    def test_round_trip_preserves_the_gap_trace(self, simple_schema,
                                                simple_workload):
        """Diagnostics of a branch-and-bound run include the gap trace."""
        budget = StorageBudgetConstraint.from_fraction_of_data(simple_schema, 1.0)
        result = Tuner().tune(TuningRequest(
            workload=simple_workload, schema=simple_schema,
            constraints=[budget],
            advisor=AdvisorSpec(
                "cophy", {"backend": SolverBackend.BRANCH_AND_BOUND})))
        assert result.diagnostics.gap_trace  # B&B always traces progress
        assert result.diagnostics.nodes_explored > 0
        restored = TuningResult.from_json(result.to_json())
        assert restored.diagnostics.gap_trace == result.diagnostics.gap_trace
        assert restored.diagnostics.nodes_explored \
            == result.diagnostics.nodes_explored

    def test_payload_is_plain_json(self, simple_schema, simple_workload):
        result = Tuner().tune(TuningRequest(workload=simple_workload,
                                            schema=simple_schema))
        payload = json.loads(result.to_json(indent=2))
        assert payload["advisor"] == "cophy"
        assert {index["table"] for index in payload["configuration"]["indexes"]} \
            <= {"orders", "items"}
        assert payload["provenance"]["api_version"] == 1

    def test_payload_carries_version_and_rejects_unknown_versions(
            self, simple_schema, simple_workload):
        from repro.api.result import RESULT_PAYLOAD_VERSION

        result = Tuner().tune(TuningRequest(workload=simple_workload,
                                            schema=simple_schema))
        payload = result.to_payload()
        assert payload["version"] == RESULT_PAYLOAD_VERSION
        # A payload without the field is a pre-PR 5 (structurally v1) one.
        legacy = dict(payload)
        del legacy["version"]
        restored = TuningResult.from_payload(legacy)
        assert restored.configuration == result.configuration
        # Anything else must fail loudly instead of silently partial-loading.
        for alien in (RESULT_PAYLOAD_VERSION + 1, "2", None):
            with pytest.raises(ValueError, match="version"):
                TuningResult.from_payload({**payload, "version": alien})

    def test_statement_cost_accessor(self):
        result = TuningResult(
            configuration=Configuration(),
            advisor_name="x", objective_estimate=1.0,
            statement_costs=(StatementCost("q1", 2.0, 10.0),),
            diagnostics=TuningDiagnostics(), provenance={})
        assert result.statement_cost("q1") == 10.0
        with pytest.raises(KeyError):
            result.statement_cost("q2")

    def test_diagnostics_payload_defaults(self):
        diagnostics = TuningDiagnostics.from_payload({})
        assert diagnostics.gap == 0.0
        assert diagnostics.gap_trace == ()
        assert diagnostics.timings == {}
