"""Tests for the scale-out subsystem (repro.scale + ScaleOutAdvisor).

Covers the three pipeline stages in isolation (compression, partitioning,
shard execution) and end to end, including the shard-vs-monolithic
equivalence check that runs in the fast CI lane and the process-pool paths
(pickled shard solves, process-sharded gamma-matrix builds).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.api import make_advisor
from repro.advisors.scaleout import ScaleOutAdvisor
from repro.core.bip_builder import BipBuilder
from repro.core.constraints import StorageBudgetConstraint
from repro.exceptions import ConstraintError, WorkloadError
from repro.indexes.candidate_generation import CandidateGenerator, CandidateSet
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.scale.compress import compress_workload
from repro.scale.executor import ShardExecutor, build_matrices_in_processes
from repro.scale.partition import partition_workload, split_budget
from repro.workload.generators import generate_homogeneous_workload
from repro.workload.workload import Workload, WorkloadStatement


@pytest.fixture(scope="module")
def tuning_workload():
    return generate_homogeneous_workload(24, seed=7)


class TestCompression:
    def test_exact_fallback_merges_only_identical_statements(self, simple_workload):
        compressed = compress_workload(simple_workload, max_cost_error=0.0)
        assert compressed.compressed_size == len(simple_workload)
        assert compressed.ratio == 1.0

    def test_duplicate_shapes_merge_and_weights_sum(self, simple_workload):
        doubled = Workload([*simple_workload.statements,
                            *simple_workload.statements], name="doubled")
        compressed = compress_workload(doubled)
        assert compressed.compressed_size == len(simple_workload)
        assert compressed.workload.total_weight() == doubled.total_weight()
        assert compressed.clusters[0] == (0, len(simple_workload))
        # Every original statement maps to the representative of its clone.
        for position, statement in enumerate(doubled):
            representative = compressed.workload.statements[
                compressed.representative_of[position]]
            assert representative.query.name == statement.query.name

    def test_templated_workload_compresses(self, tuning_workload):
        compressed = compress_workload(tuning_workload, signature="structural",
                                       max_cost_error=0.5)
        assert compressed.compressed_size < len(tuning_workload)
        assert compressed.workload.total_weight() == pytest.approx(
            tuning_workload.total_weight())

    def test_gamma_signature_requires_inum_and_tightens_with_error(
            self, tpch, tuning_workload):
        with pytest.raises(WorkloadError):
            compress_workload(tuning_workload, signature="gamma")
        inum = InumCache(WhatIfOptimizer(tpch))
        loose = compress_workload(tuning_workload, signature="gamma",
                                  max_cost_error=1.0, inum=inum)
        exact = compress_workload(tuning_workload, signature="gamma",
                                  max_cost_error=0.0, inum=inum)
        assert loose.compressed_size <= exact.compressed_size
        # Exact gamma merging still recognises repeated statements.
        doubled = Workload([*tuning_workload.statements,
                            *tuning_workload.statements], name="doubled")
        compressed = compress_workload(doubled, signature="gamma",
                                       max_cost_error=0.0, inum=inum)
        assert compressed.compressed_size <= len(tuning_workload)

    def test_rejects_bad_parameters(self, simple_workload):
        with pytest.raises(WorkloadError):
            compress_workload(simple_workload, signature="nonsense")
        with pytest.raises(WorkloadError):
            compress_workload(simple_workload, max_cost_error=-0.5)


class TestPartitioning:
    def test_disjoint_tables_fall_into_separate_components(self, simple_schema,
                                                           simple_workload):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        plan = partition_workload(simple_workload, candidates)
        # orders-only and items-only statements interact through the join
        # statement, so the component structure is deterministic.
        assert plan.component_count >= 1
        assert sorted(p for shard in plan.shards
                      for p in shard.statement_positions) == list(
            range(len(simple_workload)))

    def test_requested_shard_count_is_reached_by_splitting(self, tpch,
                                                           tuning_workload):
        candidates = CandidateGenerator(tpch).generate(tuning_workload)
        plan = partition_workload(tuning_workload, candidates, shard_count=4)
        assert plan.shard_count == 4
        # Statement positions are partitioned exactly.
        assert sorted(p for shard in plan.shards
                      for p in shard.statement_positions) == list(
            range(len(tuning_workload)))
        # shard_of is consistent with the shard membership lists.
        for shard in plan.shards:
            for position in shard.statement_positions:
                assert plan.shard_of[position] == shard.position

    def test_shard_candidates_are_relevant_subsets(self, tpch, tuning_workload):
        candidates = CandidateGenerator(tpch).generate(tuning_workload)
        plan = partition_workload(tuning_workload, candidates, shard_count=3)
        for shard in plan.shards:
            tables = set()
            for statement in shard.workload:
                tables.update(_shell(statement.query).tables)
                if hasattr(statement.query, "table"):
                    tables.add(statement.query.table)
            assert all(index.table in tables for index in shard.candidates)

    def test_budget_water_filling(self, tpch, tuning_workload):
        candidates = CandidateGenerator(tpch).generate(tuning_workload)
        plan = partition_workload(tuning_workload, candidates, shard_count=3)
        budget = 0.25 * candidates.total_size()
        # Strict split: shard budgets sum to (at most) the global budget.
        strict = split_budget(plan, candidates, budget, oversubscription=1.0)
        assert sum(shard.budget_bytes for shard in strict.shards) <= budget + 1e-6
        # Default (oversubscribed): every shard may fill up to the budget.
        loose = split_budget(plan, candidates, budget)
        for shard in loose.shards:
            assert shard.budget_bytes <= budget + 1e-6
        assert (sum(shard.budget_bytes for shard in loose.shards)
                >= sum(shard.budget_bytes for shard in strict.shards))
        # Sub-1.0 values deliberately under-allocate instead of clamping.
        half = split_budget(plan, candidates, budget, oversubscription=0.5)
        assert sum(shard.budget_bytes for shard in half.shards) <= 0.5 * budget + 1e-6
        with pytest.raises(ValueError):
            split_budget(plan, candidates, budget, oversubscription=0.0)
        # No budget: untouched.
        assert split_budget(plan, candidates, None) is plan


class TestProcessPaths:
    def test_index_and_matrix_pickle_roundtrip_rehashes(self, tpch,
                                                        tuning_workload):
        index = Index("lineitem", ("l_shipdate",), include_columns=("l_tax",))
        clone = pickle.loads(pickle.dumps(index))
        assert clone == index and hash(clone) == hash(index)
        assert clone in {index}
        inum = InumCache(WhatIfOptimizer(tpch))
        shell = _shell(tuning_workload.statements[0].query)
        templates = inum.templates(shell)
        restored = pickle.loads(pickle.dumps(templates))
        assert restored == templates
        assert {t: p for p, t in enumerate(restored)}[templates[0]] == 0

    def test_process_built_matrices_match_serial(self, tpch, tuning_workload):
        candidates = list(CandidateGenerator(tpch).generate(tuning_workload))[:40]
        serial = InumCache(WhatIfOptimizer(tpch), build_workers=1)
        serial.prepare(tuning_workload, candidates)
        sharded = InumCache(WhatIfOptimizer(tpch), build_processes=2)
        sharded.prepare(tuning_workload, candidates)
        assert serial.template_build_calls == sharded.template_build_calls
        for statement in tuning_workload:
            shell = _shell(statement.query)
            assert np.array_equal(serial.gamma_matrix(shell).array,
                                  sharded.gamma_matrix(shell).array)
        probe = Configuration(candidates[:15])
        assert (serial.workload_cost(tuning_workload, probe)
                == sharded.workload_cost(tuning_workload, probe))

    def test_build_matrices_in_processes_is_idempotent(self, tpch,
                                                       tuning_workload):
        cache = InumCache(WhatIfOptimizer(tpch))
        shells = [_shell(s.query) for s in tuning_workload]
        built = build_matrices_in_processes(cache, shells, (), workers=2)
        assert built > 0
        assert build_matrices_in_processes(cache, shells, (), workers=2) == 0

    def test_pooled_shard_solves_match_inline(self, tpch, tuning_workload):
        budget = StorageBudgetConstraint.from_fraction_of_data(tpch, 0.5)
        inline = make_advisor("scaleout", tpch, shard_count=3, shard_workers=1,
                                 gap_tolerance=0.0)
        pooled = make_advisor("scaleout", tpch, shard_count=3, shard_workers=2,
                                 gap_tolerance=0.0)
        first = inline.tune(tuning_workload, constraints=[budget])
        second = pooled.tune(tuning_workload, constraints=[budget])
        assert second.extras["shard_workers"] == 2
        assert (sorted(i.name for i in first.configuration)
                == sorted(i.name for i in second.configuration))
        assert second.objective_estimate == pytest.approx(
            first.objective_estimate, rel=1e-9)
        # Worker-side optimizer work is reported, not silently dropped: the
        # pooled run must account at least the inline run's shard-phase work.
        assert second.whatif_calls >= first.whatif_calls > 0


class TestScaleOutAdvisor:
    def test_single_shard_reproduces_monolithic(self, tpch, tuning_workload):
        """The fast-lane shard-vs-monolithic equivalence check (CI)."""
        budget = StorageBudgetConstraint.from_fraction_of_data(tpch, 0.5)
        monolithic = make_advisor("cophy", tpch, gap_tolerance=0.0).tune(
            tuning_workload, constraints=[budget])
        scaled = make_advisor("scaleout", tpch, compress=False, shard_count=1,
                                 gap_tolerance=0.0).tune(
            tuning_workload, constraints=[budget])
        evaluator = InumCache(WhatIfOptimizer(tpch))
        evaluator.prepare(tuning_workload, (*monolithic.configuration,
                                            *scaled.configuration))
        assert evaluator.workload_cost(tuning_workload, scaled.configuration) \
            == pytest.approx(evaluator.workload_cost(
                tuning_workload, monolithic.configuration), rel=1e-9)

    def test_sharded_compressed_quality_within_bound(self, tpch,
                                                     tuning_workload):
        """Compression (exact) + 4 shards stays within 5% of monolithic."""
        budget = StorageBudgetConstraint.from_fraction_of_data(tpch, 0.5)
        monolithic = make_advisor("cophy", tpch, gap_tolerance=0.0).tune(
            tuning_workload, constraints=[budget])
        scaled = make_advisor("scaleout", tpch, signature="structural",
                                 max_cost_error=0.0, shard_count=4,
                                 gap_tolerance=0.0).tune(
            tuning_workload, constraints=[budget])
        assert scaled.extras["partition"]["shards"] == 4
        evaluator = InumCache(WhatIfOptimizer(tpch))
        evaluator.prepare(tuning_workload, (*monolithic.configuration,
                                            *scaled.configuration))
        monolithic_cost = evaluator.workload_cost(tuning_workload,
                                                  monolithic.configuration)
        scaled_cost = evaluator.workload_cost(tuning_workload,
                                              scaled.configuration)
        assert scaled_cost <= 1.05 * monolithic_cost
        # The recommendation respects the global budget even though shards
        # were solved under an oversubscribed split.
        total = sum(_index_size(tpch, index) for index in scaled.configuration)
        assert total <= budget.budget_bytes + 1e-6

    def test_deterministic_across_runs(self, tpch, tuning_workload):
        budget = StorageBudgetConstraint.from_fraction_of_data(tpch, 0.5)
        make = lambda: make_advisor("scaleout", tpch, max_cost_error=0.5, shard_count=4,
                                       gap_tolerance=0.0).tune(
            tuning_workload, constraints=[budget])
        first, second = make(), make()
        assert ([i.name for i in first.configuration]
                == [i.name for i in second.configuration])

    def test_soft_constraints_are_rejected(self, tpch, tuning_workload):
        budget = StorageBudgetConstraint.from_fraction_of_data(tpch, 0.5)
        with pytest.raises(ConstraintError):
            make_advisor("scaleout", tpch).tune(tuning_workload,
                                       constraints=[budget.soft()])

    def test_recommendation_reports_pipeline_extras(self, tpch,
                                                    tuning_workload):
        budget = StorageBudgetConstraint.from_fraction_of_data(tpch, 0.5)
        recommendation = make_advisor("scaleout", tpch, max_cost_error=0.5,
                                         shard_count=2).tune(
            tuning_workload, constraints=[budget])
        assert recommendation.extras["compression"]["representatives"] <= len(
            tuning_workload)
        assert recommendation.extras["partition"]["shards"] == 2
        assert len(recommendation.extras["shards"]) == 2
        assert recommendation.extras["merge"]["winners"] >= len(
            recommendation.configuration)
        for key in ("compress", "partition", "solve", "merge", "total"):
            assert key in recommendation.timings


class TestWeightedBipBuild:
    def test_statement_weights_override_matches_reweighted_workload(
            self, simple_schema, simple_workload):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        weights = {statement.query.name: float(2 + position)
                   for position, statement in enumerate(simple_workload)}
        inum = InumCache(WhatIfOptimizer(simple_schema))
        overridden = BipBuilder(inum).build(simple_workload, candidates,
                                            statement_weights=weights)
        reweighted = Workload(
            [WorkloadStatement(s.query, weights[s.query.name])
             for s in simple_workload], name="reweighted")
        rebuilt = BipBuilder(inum).build(
            reweighted, CandidateGenerator(simple_schema).generate(reweighted))
        by_name = {v.name: c for v, c in rebuilt.cost_expression.terms.items()}
        for variable, coefficient in overridden.cost_expression.terms.items():
            assert coefficient == pytest.approx(by_name[variable.name])
        assert overridden.cost_expression.constant == pytest.approx(
            rebuilt.cost_expression.constant)

    def test_extend_honours_statement_weight_overrides(self, simple_schema,
                                                       simple_workload):
        all_candidates = list(
            CandidateGenerator(simple_schema).generate(simple_workload))
        weights = {statement.query.name: float(2 + position)
                   for position, statement in enumerate(simple_workload)}
        inum = InumCache(WhatIfOptimizer(simple_schema))
        builder = BipBuilder(inum)
        half = CandidateSet(simple_schema, all_candidates[: len(all_candidates) // 2])
        extended = builder.build(simple_workload, half,
                                 statement_weights=weights)
        builder.extend(extended, all_candidates[len(all_candidates) // 2:])
        full = builder.build(
            simple_workload, CandidateSet(simple_schema, all_candidates),
            statement_weights=weights)
        extended_terms = {v.name: c
                          for v, c in extended.cost_expression.terms.items()}
        for variable, coefficient in full.cost_expression.terms.items():
            assert coefficient == pytest.approx(extended_terms[variable.name])


def _shell(query):
    return query.query_shell() if hasattr(query, "query_shell") else query


def _index_size(schema, index: Index) -> float:
    from repro.indexes.index import index_size_bytes

    return index_size_bytes(index, schema.table(index.table))
