"""Tests for the DBA constraint language and its linear translation."""

from __future__ import annotations

import pytest

from repro.core.bip_builder import BipBuilder
from repro.core.constraints import (
    ClusteredIndexConstraint,
    ComparisonSense,
    IndexCountConstraint,
    IndexWidthConstraint,
    QueryCostConstraint,
    QuerySpeedupGenerator,
    SoftConstraint,
    StorageBudgetConstraint,
    UpdateCostConstraint,
    split_constraints,
)
from repro.core.solver import CoPhySolver, SolverBackend
from repro.exceptions import ConstraintError, InfeasibleProblemError
from repro.indexes.candidate_generation import CandidateGenerator
from repro.indexes.configuration import Configuration
from repro.inum.cache import InumCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.query import SelectQuery


@pytest.fixture
def tuning_setup(simple_schema, simple_workload):
    optimizer = WhatIfOptimizer(simple_schema)
    inum = InumCache(optimizer)
    candidates = CandidateGenerator(simple_schema).generate(simple_workload)
    bip = BipBuilder(inum).build(simple_workload, candidates)
    return optimizer, inum, candidates, bip


def _solve(bip, constraints, gap=0.0):
    solver = CoPhySolver(backend=SolverBackend.MILP, gap_tolerance=gap)
    return solver.solve(bip, hard_constraints=constraints)


class TestStorageBudgetConstraint:
    def test_budget_respected(self, tuning_setup):
        _, _, candidates, bip = tuning_setup
        budget = 0.25 * candidates.total_size()
        report = _solve(bip, [StorageBudgetConstraint(budget)])
        used = sum(candidates.size_of(index) for index in report.configuration)
        assert used <= budget * (1 + 1e-9)

    def test_tighter_budget_never_improves_cost(self, tuning_setup):
        _, _, candidates, bip = tuning_setup
        loose = _solve(bip, [StorageBudgetConstraint(candidates.total_size())])
        tight = _solve(bip, [StorageBudgetConstraint(0.1 * candidates.total_size())])
        assert tight.objective >= loose.objective - 1e-6

    def test_from_fraction_of_data(self, simple_schema):
        constraint = StorageBudgetConstraint.from_fraction_of_data(simple_schema, 0.5)
        assert constraint.budget_bytes == pytest.approx(
            0.5 * simple_schema.total_size_bytes)

    def test_negative_budget_rejected(self):
        with pytest.raises(ConstraintError):
            StorageBudgetConstraint(-1.0)

    def test_zero_budget_selects_nothing(self, tuning_setup):
        _, _, _, bip = tuning_setup
        report = _solve(bip, [StorageBudgetConstraint(0.0)])
        assert len(report.configuration) == 0


class TestIndexCountConstraint:
    def test_limits_total_indexes(self, tuning_setup):
        _, _, _, bip = tuning_setup
        report = _solve(bip, [IndexCountConstraint(limit=2)])
        assert len(report.configuration) <= 2

    def test_per_table_selector(self, tuning_setup):
        _, _, _, bip = tuning_setup
        constraint = IndexCountConstraint(
            limit=1, selector=lambda index: index.table == "items",
            name="items_limit")
        report = _solve(bip, [constraint])
        assert len(report.configuration.indexes_on("items")) <= 1

    def test_at_least_sense(self, tuning_setup):
        _, _, _, bip = tuning_setup
        constraint = IndexCountConstraint(limit=3, sense=ComparisonSense.AT_LEAST)
        report = _solve(bip, [constraint])
        assert len(report.configuration) >= 3

    def test_unsatisfiable_at_least_on_empty_selector(self, tuning_setup):
        _, _, _, bip = tuning_setup
        constraint = IndexCountConstraint(
            limit=1, selector=lambda index: index.table == "no_such_table",
            sense=ComparisonSense.AT_LEAST)
        with pytest.raises(ConstraintError):
            constraint.to_linear(bip)


class TestWidthAndClusteredConstraints:
    def test_width_constraint_excludes_wide_indexes(self, tuning_setup):
        _, _, _, bip = tuning_setup
        report = _solve(bip, [IndexWidthConstraint(max_columns=1)])
        assert all(index.width <= 1 for index in report.configuration)

    def test_clustered_constraint_allows_one_per_table(self, tuning_setup):
        _, _, _, bip = tuning_setup
        report = _solve(bip, [ClusteredIndexConstraint()])
        for table in ("orders", "items"):
            assert len(report.configuration.clustered_indexes_on(table)) <= 1

    def test_clustered_rows_only_for_tables_with_multiple_candidates(self,
                                                                     tuning_setup):
        _, _, _, bip = tuning_setup
        rows = ClusteredIndexConstraint().to_linear(bip)
        # Every generated row must involve at least two clustered candidates.
        for row in rows:
            assert len(row.variables()) >= 2


class TestQueryCostConstraints:
    def test_single_query_constraint_enforced(self, tuning_setup, simple_workload):
        optimizer, inum, _, bip = tuning_setup
        query = simple_workload.statements[0].query
        baseline_cost = inum.cost(query, Configuration())
        constraint = QueryCostConstraint(query=query, reference_cost=baseline_cost,
                                         factor=0.6)
        report = _solve(bip, [constraint])
        achieved = inum.cost(query, report.configuration)
        assert achieved <= 0.6 * baseline_cost * (1 + 1e-6)

    def test_unknown_query_rejected(self, tuning_setup):
        _, _, _, bip = tuning_setup
        foreign = SelectQuery(tables=("orders",), name="not_in_workload")
        constraint = QueryCostConstraint(query=foreign, reference_cost=10.0)
        with pytest.raises(ConstraintError):
            constraint.to_linear(bip)

    def test_invalid_parameters_rejected(self, simple_workload):
        query = simple_workload.statements[0].query
        with pytest.raises(ConstraintError):
            QueryCostConstraint(query=query, reference_cost=-1.0)
        with pytest.raises(ConstraintError):
            QueryCostConstraint(query=query, reference_cost=1.0, factor=0.0)

    def test_generator_expands_to_all_selects(self, tuning_setup, simple_workload):
        optimizer, inum, _, bip = tuning_setup
        references = {
            statement.query.name: inum.statement_cost(statement.query, Configuration())
            for statement in simple_workload.select_statements()}
        generator = QuerySpeedupGenerator(reference_costs=references, factor=0.9)
        rows = generator.to_linear(bip)
        assert len(rows) == len(simple_workload.select_statements())

    def test_generator_with_filter(self, tuning_setup, simple_workload):
        optimizer, inum, _, bip = tuning_setup
        references = {
            statement.query.name: inum.statement_cost(statement.query, Configuration())
            for statement in simple_workload.select_statements()}
        generator = QuerySpeedupGenerator(
            reference_costs=references, factor=0.9,
            statement_filter=lambda q: "join" in q.name)
        assert len(generator.to_linear(bip)) == 1

    def test_generator_with_no_matches_rejected(self, tuning_setup):
        _, _, _, bip = tuning_setup
        generator = QuerySpeedupGenerator(reference_costs={}, factor=0.9)
        with pytest.raises(ConstraintError):
            generator.to_linear(bip)

    def test_infeasible_speedup_raises(self, tuning_setup, simple_workload):
        _, inum, _, bip = tuning_setup
        query = simple_workload.statements[1].query  # full-scan aggregate query
        baseline_cost = inum.cost(query, Configuration())
        impossible = QueryCostConstraint(query=query, reference_cost=baseline_cost,
                                         factor=1e-9)
        with pytest.raises(InfeasibleProblemError):
            _solve(bip, [impossible])


class TestUpdateCostConstraint:
    def test_bounds_total_maintenance(self, tuning_setup, simple_workload):
        optimizer, _, _, bip = tuning_setup
        report = _solve(bip, [UpdateCostConstraint(limit=0.0)])
        # With a zero maintenance budget no index on the updated table that
        # stores a written column may be selected.
        update = simple_workload.statements[3].query
        for index in report.configuration.indexes_on("orders"):
            assert optimizer.update_maintenance_cost(index, update) == 0.0

    def test_negative_limit_rejected(self):
        with pytest.raises(ConstraintError):
            UpdateCostConstraint(limit=-5.0)


class TestSoftConstraintWrapper:
    def test_soft_wrapper_exposes_measure_and_target(self, tuning_setup):
        _, _, candidates, bip = tuning_setup
        soft = StorageBudgetConstraint(12345.0).soft()
        assert isinstance(soft, SoftConstraint)
        assert soft.target_value() == pytest.approx(12345.0)
        assert not soft.measure_expression(bip).is_empty()
        assert "soft" in soft.name

    def test_explicit_target_overrides_bound(self):
        soft = StorageBudgetConstraint(100.0).soft(target=5.0)
        assert soft.target_value() == pytest.approx(5.0)

    def test_unsupported_soft_constraint_rejected(self, tuning_setup):
        _, _, _, bip = tuning_setup
        soft = ClusteredIndexConstraint().soft(target=1.0)
        with pytest.raises(ConstraintError):
            soft.measure_expression(bip)

    def test_split_constraints(self):
        hard = StorageBudgetConstraint(10.0)
        soft = StorageBudgetConstraint(10.0).soft()
        hard_list, soft_list = split_constraints([hard, soft])
        assert hard_list == [hard]
        assert soft_list == [soft]
        with pytest.raises(ConstraintError):
            split_constraints(["not a constraint"])  # type: ignore[list-item]
