"""Tests for the observability layer (PR 8): tracing, metrics, logs.

Covers the unit surface of :mod:`repro.obs` plus the end-to-end promises:
span-tree shapes per advisor, fingerprint parity with tracing on/off,
trace-id propagation client -> server -> result, ``GET /v1/metrics``
exposition, and ``TuningService.stats()`` atomicity under concurrency.
"""

from __future__ import annotations

import io
import json
import logging
import re
import threading
import time
from urllib.request import Request, urlopen

import pytest

from repro.api import AdvisorSpec, Tuner, TuningRequest, TuningResult
from repro.api.service import TuningService
from repro.obs.log import configure as configure_logging
from repro.obs.log import log_event
from repro.obs.metrics import (
    METRICS_CONTENT_TYPE,
    MetricsRegistry,
    declare_standard_metrics,
    use_registry,
)
from repro.obs.trace import (
    Tracer,
    activate,
    current_trace_id,
    span,
    trace_context,
)
from repro.core.constraints import StorageBudgetConstraint
from repro.server.app import TuningServer, _endpoint_pattern
from repro.server.client import TuningClient
from repro.server.protocol import TRACE_HEADER
from repro.workload.generators import generate_homogeneous_workload


def _request(schema, seed=31, statements=10, **kwargs):
    workload = generate_homogeneous_workload(statements, seed=seed)
    budget = StorageBudgetConstraint.from_fraction_of_data(schema, 1.0)
    return TuningRequest(workload=workload, schema=schema,
                         constraints=[budget], **kwargs)


def _span_names(node):
    """Flatten a span payload tree into the set of span names."""
    names = {node["name"]}
    for child in node.get("children", ()):
        names |= _span_names(child)
    return names


def _find_spans(node, predicate):
    found = [node] if predicate(node) else []
    for child in node.get("children", ()):
        found.extend(_find_spans(child, predicate))
    return found


# ---------------------------------------------------------------------- tracer
class TestTracer:
    def test_spans_nest_into_one_tree(self):
        tracer = Tracer("t" * 32)
        with tracer.span("tune", advisor="cophy"):
            with tracer.span("prepare"):
                pass
            with tracer.span("solve") as solve:
                solve.set(gap=0.0)
        export = tracer.export()
        assert export["trace_id"] == "t" * 32
        root = export["root"]
        assert root["name"] == "tune"
        assert root["attrs"]["advisor"] == "cophy"
        assert [child["name"] for child in root["children"]] \
            == ["prepare", "solve"]
        assert root["children"][1]["attrs"]["gap"] == 0.0
        assert root["duration_ms"] >= 0.0

    def test_adopt_grafts_a_worker_export_under_the_open_span(self):
        worker = Tracer("shared")
        with worker.span("shard[0]", in_worker=True):
            pass
        parent = Tracer("shared")
        with parent.span("tune"):
            with parent.span("solve"):
                parent.adopt(worker.export())
        root = parent.export()["root"]
        solve = root["children"][0]
        assert solve["children"][0]["name"] == "shard[0]"
        assert solve["children"][0]["attrs"]["in_worker"] is True

    def test_export_finishes_open_spans_for_partial_traces(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("tune"):
                with tracer.span("prepare"):
                    raise RuntimeError("boom")
        # Exported mid-failure (from an except handler) the spans that were
        # open at the time still carry meaningful durations.
        export = tracer.export()
        assert export["root"]["name"] == "tune"

    def test_module_span_is_noop_without_a_tracer(self):
        assert current_trace_id() is None
        with span("anything", x=1) as node:
            node.set(y=2)  # must not explode
        assert not node.is_recording

    def test_trace_context_plants_the_pending_id(self):
        with trace_context("given-id") as trace_id:
            assert trace_id == "given-id"
            assert Tracer().trace_id == "given-id"
        assert Tracer().trace_id != "given-id"

    def test_activate_exposes_the_current_trace_id(self):
        tracer = Tracer("abc")
        with activate(tracer):
            assert current_trace_id() == "abc"
        assert current_trace_id() is None


# --------------------------------------------------------------------- metrics
class TestMetricsRegistry:
    def test_counter_labels_and_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", "help", ("status",))
        counter.inc(status="ok")
        counter.inc(2.0, status="error")
        assert counter.value(status="ok") == 1.0
        assert counter.total() == 3.0
        with pytest.raises(ValueError):
            counter.inc(-1.0, status="ok")
        with pytest.raises(ValueError):
            counter.inc(wrong="label")

    def test_get_or_create_rejects_kind_and_label_collisions(self):
        registry = MetricsRegistry()
        registry.counter("thing", "help")
        with pytest.raises(ValueError):
            registry.gauge("thing", "help")
        registry.counter("labelled", "help", ("a",))
        with pytest.raises(ValueError):
            registry.counter("labelled", "help", ("b",))

    def test_histogram_buckets_are_cumulative_in_render(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "help", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        text = registry.render()
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="10"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_sum 55.5" in text
        assert "h_count 3" in text

    def test_snapshot_is_one_consistent_view(self):
        registry = declare_standard_metrics(MetricsRegistry())
        registry.counter("repro_requests_total", "", ("advisor", "tier",
                                                      "status")).inc(
            advisor="cophy", tier="exact", status="ok")
        snap = registry.snapshot()
        assert snap["repro_requests_total"] == {("cophy", "exact", "ok"): 1.0}
        # Declared-but-untouched families still appear (empty).
        assert "repro_solver_solves_total" in snap

    def test_render_is_valid_prometheus_text(self):
        registry = declare_standard_metrics(MetricsRegistry())
        registry.counter("repro_requests_total", "", ("advisor", "tier",
                                                      "status")).inc(
            advisor="cophy", tier="exact", status="ok")
        _assert_valid_exposition(registry.render())


SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$")


def _assert_valid_exposition(text: str) -> None:
    assert text.endswith("\n")
    for line in text.splitlines():
        if not line or line.startswith("# "):
            continue
        assert SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"


# ------------------------------------------------------------------------ logs
class TestStructuredLogs:
    def test_log_event_emits_json_with_trace_id(self):
        stream = io.StringIO()
        configure_logging("INFO", stream=stream)
        try:
            with activate(Tracer("deadbeef")):
                log_event(logging.WARNING, "something_degraded", shard=3)
            record = json.loads(stream.getvalue())
            assert record["event"] == "something_degraded"
            assert record["shard"] == 3
            assert record["trace_id"] == "deadbeef"
            assert record["level"] == "WARNING"
        finally:
            configure_logging("WARNING")

    def test_below_threshold_events_are_dropped(self):
        stream = io.StringIO()
        configure_logging("ERROR", stream=stream)
        try:
            log_event(logging.WARNING, "quiet")
            assert stream.getvalue() == ""
        finally:
            configure_logging("WARNING")


# ------------------------------------------------------------------ span shape
class TestSpanTreeShapes:
    def test_monolithic_cophy_trace_shape(self, tpch):
        result = Tuner().tune(_request(tpch))
        trace = result.extras["trace"]
        assert trace["trace_id"]
        root = trace["root"]
        assert root["name"] == "tune"
        assert root["attrs"]["advisor"] == "cophy"
        names = _span_names(root)
        assert {"candidates", "prepare", "solve", "evaluate"} <= names

    def test_scaleout_trace_includes_worker_shard_spans(self, tpch):
        result = Tuner().tune(_request(
            tpch, statements=12,
            advisor=AdvisorSpec("scaleout", {"shard_count": 2,
                                             "shard_workers": 2})))
        root = result.extras["trace"]["root"]
        names = _span_names(root)
        assert {"partition", "solve", "merge"} <= names
        shards = _find_spans(root,
                             lambda node: node["name"].startswith("shard["))
        assert len(shards) == 2
        # Worker-side spans were built in the worker process under the same
        # trace id and grafted back into the solve span.
        assert all(shard["attrs"].get("in_worker") for shard in shards)
        solve = _find_spans(root, lambda node: node["name"] == "solve")[0]
        assert {child["name"] for child in solve["children"]} \
            == {shard["name"] for shard in shards}

    def test_inline_scaleout_shards_nest_without_grafting(self, tpch):
        # Inline shard retries each leave their own shard[i] span, so mask
        # any env fault plan (the CI chaos lane kills first attempts).
        from repro.reliability.faults import FaultPlan

        result = Tuner(fault_plan=FaultPlan()).tune(_request(
            tpch, statements=12,
            advisor=AdvisorSpec("scaleout", {"shard_count": 2,
                                             "shard_workers": 1})))
        shards = _find_spans(
            result.extras["trace"]["root"],
            lambda node: node["name"].startswith("shard["))
        assert len(shards) == 2
        assert not any(shard["attrs"].get("in_worker") for shard in shards)

    def test_tracing_off_yields_no_trace(self, tpch):
        result = Tuner(tracing=False).tune(_request(tpch))
        assert "trace" not in result.extras

    def test_fingerprint_parity_with_tracing_on_and_off(self, tpch):
        traced = Tuner(tracing=True).tune(_request(tpch))
        untraced = Tuner(tracing=False).tune(_request(tpch))
        assert traced.fingerprint() == untraced.fingerprint()

    def test_trace_survives_the_json_round_trip(self, tpch):
        result = Tuner().tune(_request(tpch))
        restored = TuningResult.from_json(result.to_json())
        assert restored.extras["trace"] == result.extras["trace"]
        assert restored.fingerprint() == result.fingerprint()


# ------------------------------------------------------------------- metrics e2e
class TestFacadeMetrics:
    def test_one_tune_populates_the_standard_families(self, tpch):
        tuner = Tuner()
        tuner.tune(_request(tpch))
        snap = tuner.metrics.snapshot()
        assert snap["repro_requests_total"] == {("cophy", "exact", "ok"): 1.0}
        assert snap["repro_request_seconds"][("cophy",)]["count"] == 1
        assert sum(snap["repro_solver_solves_total"].values()) >= 1
        cache_events = snap["repro_cache_events_total"]
        assert any(key[0] == "tensor" for key in cache_events)

    def test_failed_requests_count_as_errors(self, tpch):
        from repro.reliability.faults import FaultPlan, FaultRule, InjectedFault

        # A fault plan that always kills the solver forces the error path.
        tuner = Tuner(fault_plan=FaultPlan(
            [FaultRule(site="solver", probability=1.0)]))
        with pytest.raises(InjectedFault):
            tuner.tune(_request(tpch))
        snap = tuner.metrics.snapshot()
        statuses = {key[2] for key in snap["repro_requests_total"]}
        assert statuses == {"error"}


# -------------------------------------------------------------- stats atomicity
class TestStatsUnderConcurrency:
    def test_stats_stay_consistent_while_tuning(self, tpch):
        service = TuningService(namespace_statements=True)
        requests = [_request(tpch, seed=40 + i, statements=6)
                    for i in range(6)]
        seen: list[dict] = []
        stop = threading.Event()

        def poll():
            while not stop.is_set():
                stats = service.stats()
                assert stats["pending"] >= 0
                assert stats["requests_served"] >= 0
                seen.append(stats)
                time.sleep(0.005)

        poller = threading.Thread(target=poll)
        poller.start()
        try:
            results = service.tune_many(requests)
        finally:
            stop.set()
            poller.join()
            service.close()
        assert len(results) == len(requests)
        served = [stats["requests_served"] for stats in seen]
        assert served == sorted(served), "requests_served must be monotonic"
        assert service.stats()["requests_served"] == len(requests)
        assert service.stats()["pending"] == 0


# ----------------------------------------------------------------- wire + HTTP
@pytest.fixture(scope="class")
def live_server():
    server = TuningServer(port=0, namespace_statements=True).start()
    yield server
    server.stop()


class TestServerObservability:
    def test_trace_id_round_trips_client_server_result(self, live_server,
                                                       tpch):
        client = TuningClient(live_server.url)
        with trace_context("11112222333344445555666677778888") as trace_id:
            result = client.tune(_request(tpch))
        assert result.extras["trace"]["trace_id"] == trace_id
        assert result.extras["trace"]["root"]["name"] == "tune"

    def test_metrics_endpoint_serves_prometheus_text(self, live_server, tpch):
        TuningClient(live_server.url).tune(_request(tpch))
        time.sleep(0.2)  # the handler's finally may still be recording
        request = Request(live_server.url + "/v1/metrics",
                          headers={TRACE_HEADER: "scrape-1"})
        with urlopen(request) as response:
            assert response.headers["Content-Type"] == METRICS_CONTENT_TYPE
            assert response.headers[TRACE_HEADER] == "scrape-1"
            text = response.read().decode("utf-8")
        _assert_valid_exposition(text)
        assert 'repro_requests_total{advisor="cophy"' in text
        assert 'repro_http_requests_total{endpoint="/v1/tune"' in text
        assert "repro_solver_solves_total" in text
        assert 'repro_cache_events_total{cache="schema_payload"' in text

    def test_unknown_paths_collapse_to_one_endpoint_label(self, live_server):
        with pytest.raises(Exception):
            urlopen(live_server.url + "/v1/no-such-endpoint")
        time.sleep(0.2)
        snap = live_server.service.tuner.metrics.snapshot()
        assert snap["repro_http_requests_total"].get(
            ("unknown", "GET", "404"), 0.0) >= 1.0

    def test_endpoint_pattern_bounds_cardinality(self):
        assert _endpoint_pattern("POST", "/v1/tune") == "/v1/tune"
        assert _endpoint_pattern("POST", "/v1/sessions/s42/tune") \
            == "/v1/sessions/{id}/tune"
        assert _endpoint_pattern("DELETE", "/v1/sessions/s42") \
            == "/v1/sessions/{id}"
        assert _endpoint_pattern("GET", "/etc/passwd") == "unknown"
        assert _endpoint_pattern("GET", "/v1/sessions/a/b/c") == "unknown"
