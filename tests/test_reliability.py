"""Tests for the reliability subsystem (PR 7).

Covers the fault-injection harness and retry policy in isolation, then the
three execution layers they are threaded through: the shard executor
(inline + process pool, worker kills, graceful degradation, budget-bounded
retries), the tuning service (admission control), and the HTTP server/client
(429 + Retry-After, typed connection errors, client-side backoff, graceful
shutdown).

The load-bearing guarantee: **a survived fault never changes the
recommendation, only the timing** — every recovery test asserts fingerprint
identity against a fault-free run.  All tests pass explicit plans (or arm
one via the context manager), so the suite is hermetic under the chaos CI
lane's ``REPRO_FAULT_PLAN``.
"""

from __future__ import annotations

import json
import pickle
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import AdvisorSpec, Tuner, TuningRequest, TuningService
from repro.core.constraints import StorageBudgetConstraint
from repro.exceptions import ServerOverloaded
from repro.indexes.candidate_generation import CandidateGenerator
from repro.indexes.configuration import Configuration
from repro.inum.cache import InumCache
from repro.lp.budget import SolveBudget
from repro.optimizer.whatif import WhatIfOptimizer
from repro.reliability import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    RetryPolicy,
    armed,
    armed_plan,
)
from repro.reliability.faults import maybe_check
from repro.scale.executor import ShardExecutor, build_matrices_in_processes
from repro.scale.partition import partition_workload
from repro.server import TuningClient, TuningServer
from repro.server.protocol import TuningServerUnavailable
from repro.workload.workload import Workload

#: Retries in the fast tests should not sleep for real.
FAST_RETRIES = RetryPolicy(max_attempts=3, base_delay_s=0.001,
                           cap_delay_s=0.01, seed=0)


def _budget(schema, fraction=1.0):
    return StorageBudgetConstraint.from_fraction_of_data(schema, fraction)


@pytest.fixture
def two_component_workload(simple_workload):
    """The point (orders) + range (items) statements: two disjoint shards."""
    return Workload(list(simple_workload)[:2], name="two-components")


def _scaleout_request(schema, workload, request_id, **options):
    options.setdefault("shard_workers", 1)
    options.setdefault("gap_tolerance", 0.0)
    return TuningRequest(
        workload=workload, schema=schema, constraints=[_budget(schema)],
        advisor=AdvisorSpec("scaleout", options), request_id=request_id)


# =========================================================== FaultPlan units
class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(ValueError, match="site"):
            FaultRule(site="warp-core")
        with pytest.raises(ValueError, match="action"):
            FaultRule(site="solver", action="explode")
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="solver", probability=1.5)

    def test_calls_filter_counts_per_site(self):
        plan = FaultPlan([FaultRule(site="shard_solve", calls=(2,))])
        plan.check("shard_solve")  # call 1: clean
        plan.check("solver")       # other site: independent counter
        with pytest.raises(InjectedFault):
            plan.check("shard_solve")  # call 2 fires
        plan.check("shard_solve")      # call 3: clean again
        assert plan.counters()["checks"] == {"shard_solve": 3, "solver": 1}
        assert plan.injected_total == 1

    def test_attempts_filter(self):
        plan = FaultPlan([FaultRule(site="shard_solve", attempts=(1,),
                                    calls=None)])
        with pytest.raises(InjectedFault):
            plan.check("shard_solve", attempt=1)
        plan.check("shard_solve", attempt=2)  # the retry survives

    def test_key_filter_is_exact(self):
        plan = FaultPlan([FaultRule(site="http_request", key="/v1/tune",
                                    attempts=None)])
        plan.check("http_request", key="/v1/sessions/s1/tune")
        with pytest.raises(InjectedFault):
            plan.check("http_request", key="/v1/tune")

    def test_latency_action_sleeps_and_proceeds(self):
        plan = FaultPlan([FaultRule(site="solver", action="latency",
                                    latency_s=0.05)])
        started = time.perf_counter()
        plan.check("solver")  # no raise
        assert time.perf_counter() - started >= 0.05
        assert plan.injected_total == 1

    def test_kill_outside_worker_degrades_to_raise(self):
        plan = FaultPlan([FaultRule(site="shard_solve", action="kill")])
        with pytest.raises(InjectedFault):
            plan.check("shard_solve", in_worker=False)

    def test_json_round_trip(self):
        plan = FaultPlan([FaultRule(site="shard_solve", action="kill",
                                    key="0", calls=(1, 3), attempts=None),
                          FaultRule(site="http_request", latency_s=0.5,
                                    action="latency", probability=0.25)],
                         seed=42)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.rules == plan.rules
        assert clone.seed == plan.seed

    def test_pickle_resets_per_process_counters(self):
        plan = FaultPlan([FaultRule(site="shard_solve", calls=(1,))])
        with pytest.raises(InjectedFault):
            plan.check("shard_solve")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.counters() == {"checks": {}, "injected": {}}
        with pytest.raises(InjectedFault):
            clone.check("shard_solve")  # the clone's call 1 fires again

    def test_probability_is_seeded_and_reproducible(self):
        def pattern(seed):
            plan = FaultPlan([FaultRule(site="solver", probability=0.5,
                                        attempts=None)], seed=seed)
            fired = []
            for _ in range(30):
                try:
                    plan.check("solver")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert pattern(7) == pattern(7)
        assert 0 < sum(pattern(7)) < 30  # actually probabilistic
        assert pattern(7) != pattern(8)  # and actually seeded

    def test_armed_precedence_and_restoration(self, monkeypatch):
        import repro.reliability.faults as faults

        env_plan = FaultPlan([FaultRule(site="solver")], seed=1)
        monkeypatch.setenv(faults.ENV_VAR, env_plan.to_json())
        monkeypatch.setattr(faults, "_env_read", False)
        monkeypatch.setattr(faults, "_env_plan", None)
        assert armed_plan().rules == env_plan.rules  # env plan reachable
        explicit = FaultPlan(seed=2)
        with armed(explicit):
            assert armed_plan() is explicit  # explicit beats env
            mask = FaultPlan()
            with armed(mask):
                # An empty armed plan masks the env plan (hermetic tests).
                assert armed_plan() is mask
            assert armed_plan() is explicit
        assert armed_plan().rules == env_plan.rules

    def test_maybe_check_tolerates_no_plan(self):
        maybe_check(None, "solver")  # no-op, no raise


# ========================================================== RetryPolicy units
class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        attempts = []

        def flaky(attempt):
            attempts.append(attempt)
            if attempt < 3:
                raise InjectedFault("transient")
            return "ok"

        assert FAST_RETRIES.call(flaky) == "ok"
        assert attempts == [1, 2, 3]

    def test_non_retryable_raises_immediately(self):
        attempts = []

        def broken(attempt):
            attempts.append(attempt)
            raise ValueError("a bug, not a fault")

        with pytest.raises(ValueError):
            FAST_RETRIES.call(broken)
        assert attempts == [1]

    def test_exhaustion_reraises_the_last_error(self):
        attempts = []

        def hopeless(attempt):
            attempts.append(attempt)
            raise InjectedFault(f"attempt {attempt}")

        with pytest.raises(InjectedFault, match="attempt 3"):
            FAST_RETRIES.call(hopeless)
        assert attempts == [1, 2, 3]

    def test_seeded_delays_are_deterministic(self):
        def delays(policy):
            observed = []
            with pytest.raises(InjectedFault):
                policy.call(lambda attempt: (_ for _ in ()).throw(
                    InjectedFault()),
                    on_retry=lambda a, e, d: observed.append(d))
            return observed

        policy = RetryPolicy(max_attempts=4, base_delay_s=0.001, seed=11)
        assert delays(policy) == delays(policy)

    def test_delay_cap_and_growth(self):
        policy = RetryPolicy(max_attempts=9, base_delay_s=0.1, cap_delay_s=0.4,
                             multiplier=2.0, jitter=0.0)
        assert policy.backoff_delay(1) == pytest.approx(0.1)
        assert policy.backoff_delay(2) == pytest.approx(0.2)
        assert policy.backoff_delay(8) == pytest.approx(0.4)  # capped

    def test_budget_stops_retries(self):
        budget = SolveBudget(time_budget_ms=50).start()
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.2, jitter=0.0)
        attempts = []

        def hopeless(attempt):
            attempts.append(attempt)
            raise InjectedFault()

        started = time.perf_counter()
        with pytest.raises(InjectedFault):
            policy.call(hopeless, budget=budget)
        # The 0.2 s backoff does not fit the 50 ms budget: no retry taken.
        assert attempts == [1]
        assert time.perf_counter() - started < 0.2

    def test_retry_after_floors_the_delay(self):
        observed = []

        def overloaded(attempt):
            if attempt == 1:
                raise ServerOverloaded(retry_after_s=0.05)
            return "ok"

        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0001, jitter=0.0)
        assert policy.call(overloaded, retryable=lambda exc: True,
                           on_retry=lambda a, e, d: observed.append(d)) == "ok"
        assert observed and observed[0] >= 0.05


# ================================================== executor fault tolerance
class TestExecutorFaultTolerance:
    def _partition(self, schema, workload):
        candidates = CandidateGenerator(schema).generate(workload)
        return partition_workload(workload, candidates)

    def test_inline_crash_is_retried_with_identical_results(
            self, simple_schema, two_component_workload):
        plan = self._partition(simple_schema, two_component_workload)
        clean = ShardExecutor(workers=1, gap_tolerance=0.0).solve_shards(
            plan, simple_schema,
            inum=InumCache(WhatIfOptimizer(simple_schema)))
        faults = FaultPlan([FaultRule(site="shard_solve", key="0",
                                      attempts=(1,))])
        recovered = ShardExecutor(
            workers=1, gap_tolerance=0.0, retry_policy=FAST_RETRIES,
            fault_plan=faults).solve_shards(
            plan, simple_schema,
            inum=InumCache(WhatIfOptimizer(simple_schema)))
        assert [r.indexes for r in recovered] == [r.indexes for r in clean]
        assert [r.objective for r in recovered] == [
            r.objective for r in clean]
        assert recovered[0].retries == 1
        assert recovered[0].faults_survived == 1
        assert not any(r.failed for r in recovered)
        assert recovered[1].retries == 0  # the other shard never failed

    def test_exhausted_retries_degrade_instead_of_raising(
            self, simple_schema, two_component_workload):
        plan = self._partition(simple_schema, two_component_workload)
        faults = FaultPlan([FaultRule(site="shard_solve", key="0",
                                      attempts=None)])  # every attempt fails
        results = ShardExecutor(
            workers=1, gap_tolerance=0.0, retry_policy=FAST_RETRIES,
            fault_plan=faults).solve_shards(
            plan, simple_schema,
            inum=InumCache(WhatIfOptimizer(simple_schema)))
        assert results[0].failed
        assert results[0].indexes == ()
        assert "InjectedFault" in results[0].failure
        assert not results[1].failed and results[1].indexes

    def test_degrade_false_raises_after_exhaustion(self, simple_schema,
                                                   two_component_workload):
        plan = self._partition(simple_schema, two_component_workload)
        faults = FaultPlan([FaultRule(site="shard_solve", key="0",
                                      attempts=None)])
        with pytest.raises(InjectedFault):
            ShardExecutor(workers=1, gap_tolerance=0.0,
                          retry_policy=FAST_RETRIES, fault_plan=faults,
                          degrade=False).solve_shards(
                plan, simple_schema,
                inum=InumCache(WhatIfOptimizer(simple_schema)))

    def test_budget_bounds_recovery_time(self, simple_schema,
                                         two_component_workload):
        plan = self._partition(simple_schema, two_component_workload)
        faults = FaultPlan([FaultRule(site="shard_solve", attempts=None)])
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.2, jitter=0.0)
        budget = SolveBudget(time_budget_ms=150).start()
        started = time.perf_counter()
        results = ShardExecutor(
            workers=1, gap_tolerance=0.0, retry_policy=policy,
            fault_plan=faults).solve_shards(
            plan, simple_schema,
            inum=InumCache(WhatIfOptimizer(simple_schema)), budget=budget)
        elapsed = time.perf_counter() - started
        assert all(result.failed for result in results)
        # 9 allowed retries at >= 0.2 s each would take > 1.8 s per shard;
        # the budget cuts recovery off near its 150 ms deadline instead.
        assert elapsed < 1.5
        assert all(result.retries < 9 for result in results)

    @pytest.mark.slow
    def test_worker_kill_recovers_with_identical_results(
            self, simple_schema, two_component_workload):
        plan = self._partition(simple_schema, two_component_workload)
        clean = ShardExecutor(workers=2, gap_tolerance=0.0).solve_shards(
            plan, simple_schema,
            inum=InumCache(WhatIfOptimizer(simple_schema)))
        faults = FaultPlan([FaultRule(site="shard_solve", action="kill",
                                      key="0", attempts=(1,))])
        recovered = ShardExecutor(
            workers=2, gap_tolerance=0.0, retry_policy=FAST_RETRIES,
            fault_plan=faults).solve_shards(
            plan, simple_schema,
            inum=InumCache(WhatIfOptimizer(simple_schema)))
        assert [r.indexes for r in recovered] == [r.indexes for r in clean]
        assert not any(r.failed for r in recovered)
        assert sum(r.faults_survived for r in recovered) >= 1
        # Worker-side optimizer work is still fully accounted after recovery.
        assert (sum(r.worker_optimizer_calls for r in recovered)
                == sum(r.worker_optimizer_calls for r in clean))

    def test_matrix_build_faults_fall_back_to_local_build(self,
                                                          simple_schema,
                                                          simple_workload):
        faults = FaultPlan([FaultRule(site="matrix_build", attempts=None)])
        cache = InumCache(WhatIfOptimizer(simple_schema))
        shells = [statement.query.query_shell()
                  if hasattr(statement.query, "query_shell")
                  else statement.query for statement in simple_workload]
        built = build_matrices_in_processes(cache, shells, (), workers=2,
                                            retry_policy=FAST_RETRIES,
                                            fault_plan=faults)
        assert built == 0  # degraded: nothing adopted, nothing raised
        # The caller-side local build still works on the untouched cache.
        candidates = CandidateGenerator(simple_schema).generate(
            simple_workload)
        cache.prepare(simple_workload, candidates)
        assert cache.workload_cost(simple_workload, Configuration(())) > 0


# ================================================ end-to-end through the API
class TestTunerFaultTolerance:
    def test_recovered_run_fingerprints_identical_to_clean_run(
            self, simple_schema, two_component_workload):
        request = _scaleout_request(simple_schema, two_component_workload,
                                    "recovery-parity")
        with armed(FaultPlan()):
            clean = Tuner().tune(request)
        faults = FaultPlan([FaultRule(site="shard_solve", key="0",
                                      attempts=(1,))])
        faulty = Tuner(fault_plan=faults).tune(request)
        assert faulty.fingerprint() == clean.fingerprint()
        assert faulty.diagnostics.retries >= 1
        assert faulty.diagnostics.faults_survived >= 1
        assert not faulty.diagnostics.degraded
        assert clean.diagnostics.retries == 0

    def test_exhaustion_degrades_to_surviving_shards(
            self, simple_schema, two_component_workload):
        faults = FaultPlan([FaultRule(site="shard_solve", key="0",
                                      attempts=None)])
        service = TuningService(tuner=Tuner(fault_plan=faults))
        result = service.tune(_scaleout_request(
            simple_schema, two_component_workload, "degraded-run",
            retry_policy=FAST_RETRIES))
        # Shard 0 (the orders statement) is lost; the recommendation is
        # merged over the surviving items shard instead of raising.
        assert result.diagnostics.degraded
        assert result.configuration
        assert all(index.table == "items" for index in result.configuration)
        assert result.extras["faults"]["failed_shards"] == [0]
        stats = service.stats()
        assert stats["degraded_results"] == 1
        assert stats["retries"] >= 2
        assert stats["faults_injected"] >= 3

    def test_degraded_runs_fingerprint_differently(self, simple_schema,
                                                   two_component_workload):
        request = _scaleout_request(simple_schema, two_component_workload,
                                    "degraded-fp", retry_policy=FAST_RETRIES)
        with armed(FaultPlan()):
            clean = Tuner().tune(request)
        faults = FaultPlan([FaultRule(site="shard_solve", key="0",
                                      attempts=None)])
        degraded = Tuner(fault_plan=faults).tune(request)
        # Unlike retries (timing detail), degradation changes the result:
        # it must never masquerade as the complete recommendation.
        assert degraded.fingerprint() != clean.fingerprint()

    def test_solver_site_faults_surface_to_the_caller(self, simple_schema,
                                                      simple_workload):
        faults = FaultPlan([FaultRule(site="solver")])
        request = TuningRequest(workload=simple_workload,
                                schema=simple_schema,
                                constraints=[_budget(simple_schema)])
        with pytest.raises(InjectedFault):
            Tuner(fault_plan=faults).tune(request)


# ========================================================= admission control
class TestAdmissionControl:
    def test_full_service_rejects_with_retry_hint(self, simple_schema,
                                                  simple_workload):
        service = TuningService(max_pending=0, retry_after_s=2.5)
        request = TuningRequest(workload=simple_workload,
                                schema=simple_schema,
                                constraints=[_budget(simple_schema)])
        with pytest.raises(ServerOverloaded) as info:
            service.tune(request)
        assert info.value.retry_after_s == 2.5
        stats = service.stats()
        assert stats["rejected_overload"] == 1
        assert stats["pending"] == 0  # no slot leaked
        assert stats["requests_served"] == 0

    def test_slots_are_released_after_each_request(self, simple_schema,
                                                   simple_workload):
        with TuningService(max_pending=1) as service:
            request = TuningRequest(workload=simple_workload,
                                    schema=simple_schema,
                                    constraints=[_budget(simple_schema)])
            first = service.tune(request)
            second = service.tune(request)  # the slot came back
            assert first.configuration == second.configuration
            assert first.objective_estimate == second.objective_estimate
            assert service.pending == 0

    def test_server_answers_429_with_retry_after_header(self, simple_schema,
                                                        simple_workload):
        from repro.server.wire import encode_request

        request = TuningRequest(workload=simple_workload,
                                schema=simple_schema,
                                constraints=[_budget(simple_schema)])
        with TuningServer(max_pending=0, retry_after_s=1.0) as server:
            raw = urllib.request.Request(
                f"{server.url}/v1/tune",
                data=json.dumps(encode_request(request)).encode(),
                headers={"Content-Type": "application/json"}, method="POST")
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(raw, timeout=10)
            assert info.value.code == 429
            assert info.value.headers["Retry-After"] == "1"
            envelope = json.loads(info.value.read())
            assert envelope["error"]["type"] == "ServerOverloaded"
            assert envelope["error"]["retry_after_s"] == 1.0

    def test_client_rejection_is_typed_with_retry_hint(self, simple_schema,
                                                       simple_workload):
        request = TuningRequest(workload=simple_workload,
                                schema=simple_schema,
                                constraints=[_budget(simple_schema)])
        with TuningServer(max_pending=0, retry_after_s=0.5) as server:
            client = TuningClient(server.url, retry_policy=None,
                                  fault_plan=FaultPlan())
            with pytest.raises(ServerOverloaded) as info:
                client.tune(request)
        assert info.value.retry_after_s == 0.5

    def test_client_backoff_outlives_transient_overload(self, simple_schema,
                                                        simple_workload):
        request = TuningRequest(workload=simple_workload,
                                schema=simple_schema,
                                constraints=[_budget(simple_schema)])
        with TuningServer(max_pending=0, retry_after_s=0.2) as server:
            # The overload clears while the client is backing off.
            timer = threading.Timer(
                0.3, lambda: setattr(server.service, "max_pending", None))
            timer.start()
            try:
                client = TuningClient(
                    server.url, fault_plan=FaultPlan(),
                    retry_policy=RetryPolicy(max_attempts=5,
                                             base_delay_s=0.05, seed=3))
                result = client.tune(request)
            finally:
                timer.cancel()
            assert result.configuration
            assert server.service.stats()["rejected_overload"] >= 1
            assert server.service.stats()["requests_served"] == 1


# ================================================================ client SDK
class TestClientResilience:
    def test_unreachable_server_raises_typed_error(self):
        client = TuningClient("http://127.0.0.1:9", timeout=2,
                              retry_policy=None, fault_plan=FaultPlan())
        with pytest.raises(TuningServerUnavailable) as info:
            client.health()
        assert info.value.status == 0
        assert info.value.error_type == "ServerUnavailable"

    def test_transient_5xx_is_retried(self, simple_schema):
        with TuningServer() as server:
            calls = {"health": 0}
            original = server.handle_health

            def flaky_health():
                calls["health"] += 1
                if calls["health"] == 1:
                    raise RuntimeError("transient server bug")
                return original()

            server.handle_health = flaky_health  # type: ignore[method-assign]
            client = TuningClient(server.url, fault_plan=FaultPlan(),
                                  retry_policy=FAST_RETRIES)
            assert client.health()["status"] == "ok"
        assert calls["health"] == 2

    def test_injected_transport_faults_are_transparent(self, simple_schema,
                                                       simple_workload):
        faults = FaultPlan([FaultRule(site="http_request", key="/v1/tune",
                                      attempts=(1,))])
        request = TuningRequest(workload=simple_workload,
                                schema=simple_schema,
                                constraints=[_budget(simple_schema)])
        with TuningServer() as server:
            clean = TuningClient(server.url, fault_plan=FaultPlan()).tune(
                request)
            retried = TuningClient(server.url, fault_plan=faults,
                                   retry_policy=FAST_RETRIES).tune(request)
        # Same server, warm cache: call-count diagnostics legitimately
        # differ, the decision must not.
        assert retried.configuration == clean.configuration
        assert retried.objective_estimate == clean.objective_estimate

    def test_non_idempotent_calls_are_never_retried(self, simple_schema,
                                                    simple_workload):
        faults = FaultPlan([FaultRule(site="http_request", key="/v1/sessions",
                                      attempts=None)])
        request = TuningRequest(workload=simple_workload,
                                schema=simple_schema,
                                constraints=[_budget(simple_schema)])
        with TuningServer() as server:
            client = TuningClient(server.url, fault_plan=faults,
                                  retry_policy=FAST_RETRIES)
            with pytest.raises(InjectedFault):
                client.open_session(request)
        # Exactly one check: the fault was not swallowed by a retry loop.
        assert faults.counters()["checks"]["http_request"] == 1


# ========================================================= graceful shutdown
class TestGracefulShutdown:
    def test_stop_drains_inflight_requests(self, simple_schema,
                                           simple_workload):
        slow = FaultPlan([FaultRule(site="solver", action="latency",
                                    latency_s=0.5)])
        request = TuningRequest(workload=simple_workload,
                                schema=simple_schema,
                                constraints=[_budget(simple_schema)])
        server = TuningServer(service=TuningService(
            tuner=Tuner(fault_plan=slow)), drain_timeout_s=10.0)
        server.start()
        client = TuningClient(server.url, retry_policy=None,
                              fault_plan=FaultPlan())
        outcome = {}

        def tune_slowly():
            try:
                outcome["result"] = client.tune(request)
            except Exception as exc:  # pragma: no cover - failure diagnostics
                outcome["error"] = exc

        worker = threading.Thread(target=tune_slowly)
        worker.start()
        deadline = time.monotonic() + 5
        while server.inflight_requests == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert server.inflight_requests == 1
        server.stop()  # must wait for the in-flight solve, then close
        worker.join(timeout=10)
        assert "error" not in outcome
        assert outcome["result"].configuration is not None
        assert server.inflight_requests == 0
        # The listener is gone: new requests fail as unreachable.
        with pytest.raises(TuningServerUnavailable):
            client.health()

    def test_stop_is_idempotent_and_reentrant_safe(self):
        server = TuningServer().start()
        server.stop()
        server.stop()  # second call is a no-op

    def test_signal_handler_stops_the_server(self):
        import signal

        from repro.server.app import install_signal_handlers

        previous_term = signal.getsignal(signal.SIGTERM)
        previous_int = signal.getsignal(signal.SIGINT)
        server = TuningServer().start()
        try:
            install_signal_handlers(server)
            handler = signal.getsignal(signal.SIGTERM)
            assert callable(handler)
            handler(signal.SIGTERM, None)  # what the kernel would invoke
            deadline = time.monotonic() + 5
            while server._serving and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not server._serving
        finally:
            server.stop()
            signal.signal(signal.SIGTERM, previous_term)
            signal.signal(signal.SIGINT, previous_int)


# ==================================================================== stats
class TestStatsCounters:
    def test_stats_exposes_reliability_counters(self):
        service = TuningService()
        stats = service.stats()
        for key in ("pending", "max_pending", "rejected_overload", "retries",
                    "degraded_results", "faults_injected"):
            assert key in stats

    def test_server_stats_surface_service_counters(self, simple_schema,
                                                   simple_workload):
        with TuningServer() as server:
            client = TuningClient(server.url, retry_policy=None,
                                  fault_plan=FaultPlan())
            stats = client.stats()
        service_stats = stats["service"]
        assert service_stats["rejected_overload"] == 0
        assert service_stats["retries"] == 0
        assert service_stats["degraded_results"] == 0
