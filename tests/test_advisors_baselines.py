"""Tests for the ILP, Tool-A-like and Tool-B-like baseline advisors."""

from __future__ import annotations

import pytest

from repro.api import make_advisor
from repro.advisors.base import Recommendation
from repro.advisors.dta import DtaAdvisor
from repro.advisors.ilp_advisor import IlpAdvisor
from repro.advisors.relaxation import RelaxationAdvisor
from repro.bench.metrics import baseline_configuration, perf_improvement
from repro.core.constraints import StorageBudgetConstraint
from repro.indexes.candidate_generation import CandidateGenerator
from repro.indexes.index import index_size_bytes
from repro.inum.cache import InumCache
from repro.optimizer.whatif import WhatIfOptimizer


@pytest.fixture
def evaluation_optimizer(simple_schema) -> WhatIfOptimizer:
    return WhatIfOptimizer(simple_schema)


def _budget(simple_schema, fraction=1.0) -> StorageBudgetConstraint:
    return StorageBudgetConstraint.from_fraction_of_data(simple_schema, fraction)


class TestIlpAdvisor:
    def test_produces_useful_recommendation(self, simple_schema, simple_workload,
                                            evaluation_optimizer):
        advisor = make_advisor("ilp", simple_schema, gap_tolerance=0.0)
        recommendation = advisor.tune(simple_workload,
                                      [_budget(simple_schema)])
        assert isinstance(recommendation, Recommendation)
        assert perf_improvement(evaluation_optimizer, simple_workload,
                                recommendation.configuration) > 0.05
        assert recommendation.timings["build"] > 0
        assert recommendation.extras["variables"] > 0

    def test_matches_cophy_quality_on_small_instance(self, simple_schema,
                                                     simple_workload,
                                                     evaluation_optimizer):
        """On small instances both BIP formulations find equally good designs."""
        budget = _budget(simple_schema)
        cophy = make_advisor("cophy", simple_schema, gap_tolerance=0.0).tune(
            simple_workload, [budget])
        ilp = make_advisor("ilp", simple_schema, gap_tolerance=0.0).tune(
            simple_workload, [budget])
        cophy_perf = perf_improvement(evaluation_optimizer, simple_workload,
                                      cophy.configuration)
        ilp_perf = perf_improvement(evaluation_optimizer, simple_workload,
                                    ilp.configuration)
        assert ilp_perf == pytest.approx(cophy_perf, abs=0.08)

    def test_respects_storage_budget(self, simple_schema, simple_workload):
        tight = StorageBudgetConstraint(
            0.1 * simple_schema.total_size_bytes)
        advisor = make_advisor("ilp", simple_schema, gap_tolerance=0.0)
        recommendation = advisor.tune(simple_workload, [tight])
        used = sum(index_size_bytes(index, simple_schema.table(index.table))
                   for index in recommendation.configuration)
        assert used <= tight.budget_bytes * (1 + 1e-9)

    def test_pruning_knobs_bound_the_model_size(self, simple_schema,
                                                simple_workload):
        small = make_advisor("ilp", simple_schema, max_indexes_per_table=1,
                           max_configurations_per_query=4)
        large = make_advisor("ilp", simple_schema, max_indexes_per_table=4,
                           max_configurations_per_query=64)
        small_rec = small.tune(simple_workload)
        large_rec = large.tune(simple_workload)
        assert small_rec.extras["variables"] < large_rec.extras["variables"]

    def test_ilp_model_is_larger_than_cophys(self, simple_schema, simple_workload):
        """The per-atomic-configuration formulation needs more variables."""
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        cophy = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        cophy_rec = cophy.tune(simple_workload, candidates=candidates)
        ilp = make_advisor("ilp", simple_schema, gap_tolerance=0.0)
        ilp_rec = ilp.tune(simple_workload, candidates=candidates)
        cophy_constraints = cophy_rec.extras["bip_statistics"]["constraints"]
        assert ilp_rec.extras["constraints"] > cophy_constraints * 0.5


class TestRelaxationAdvisor:
    def test_produces_recommendation_within_budget(self, simple_schema,
                                                   simple_workload,
                                                   evaluation_optimizer):
        budget = _budget(simple_schema)
        advisor = make_advisor("relaxation", simple_schema)
        recommendation = advisor.tune(simple_workload, [budget])
        used = sum(index_size_bytes(index, simple_schema.table(index.table))
                   for index in recommendation.configuration)
        assert used <= budget.budget_bytes * (1 + 1e-9)
        assert perf_improvement(evaluation_optimizer, simple_workload,
                                recommendation.configuration) > 0.0

    def test_uses_many_whatif_calls(self, simple_schema, simple_workload):
        advisor = make_advisor("relaxation", simple_schema)
        recommendation = advisor.tune(simple_workload, [_budget(simple_schema)])
        cophy = make_advisor("cophy", simple_schema).tune(simple_workload,
                                                 [_budget(simple_schema)])
        assert recommendation.whatif_calls > cophy.whatif_calls

    def test_candidate_pruning_cap(self, simple_schema, simple_workload):
        advisor = make_advisor("relaxation", simple_schema, max_candidates=5)
        recommendation = advisor.tune(simple_workload, [_budget(simple_schema)])
        assert recommendation.candidate_count <= 5

    def test_call_budget_forces_workload_sampling(self, simple_schema,
                                                  simple_workload):
        advisor = make_advisor("relaxation", simple_schema, whatif_call_budget=100)
        recommendation = advisor.tune(simple_workload, [_budget(simple_schema)])
        assert recommendation.extras["evaluated_statements"] <= len(simple_workload)

    def test_quality_trails_cophy(self, simple_schema, simple_workload,
                                  evaluation_optimizer):
        budget = _budget(simple_schema)
        cophy = make_advisor("cophy", simple_schema, gap_tolerance=0.0).tune(
            simple_workload, [budget])
        tool_a = make_advisor("relaxation", simple_schema).tune(simple_workload, [budget])
        cophy_perf = perf_improvement(evaluation_optimizer, simple_workload,
                                      cophy.configuration)
        tool_a_perf = perf_improvement(evaluation_optimizer, simple_workload,
                                       tool_a.configuration)
        assert cophy_perf >= tool_a_perf - 0.02


class TestDtaAdvisor:
    def test_produces_recommendation_within_budget(self, simple_schema,
                                                   simple_workload,
                                                   evaluation_optimizer):
        budget = _budget(simple_schema)
        advisor = make_advisor("dta", simple_schema)
        recommendation = advisor.tune(simple_workload, [budget])
        used = sum(index_size_bytes(index, simple_schema.table(index.table))
                   for index in recommendation.configuration)
        assert used <= budget.budget_bytes * (1 + 1e-9)
        assert perf_improvement(evaluation_optimizer, simple_workload,
                                recommendation.configuration) > 0.0

    def test_inum_backed_costing_produces_useful_recommendation(
            self, simple_schema, simple_workload, evaluation_optimizer):
        """With an INUM cache the advisor answers every cost probe from the
        gamma matrices — no what-if optimizations at all — and must still
        produce a beneficial, budget-respecting recommendation."""
        budget = _budget(simple_schema)
        optimizer = WhatIfOptimizer(simple_schema)
        advisor = make_advisor("dta", simple_schema, optimizer=optimizer,
                             inum=InumCache(optimizer))
        recommendation = advisor.tune(simple_workload, [budget])
        # Every counted optimizer invocation is a template build — the cost
        # probes themselves never reach the optimizer.
        assert (recommendation.whatif_calls
                == advisor.inum.template_build_calls)
        assert len(recommendation.configuration) > 0
        used = sum(index_size_bytes(index, simple_schema.table(index.table))
                   for index in recommendation.configuration)
        assert used <= budget.budget_bytes * (1 + 1e-9)
        assert perf_improvement(evaluation_optimizer, simple_workload,
                                recommendation.configuration) > 0.0

    def test_inum_backed_costing_matches_loop_path_recommendation(
            self, simple_schema, simple_workload):
        """The vectorized and loop INUM paths must drive DTA identically."""
        budget = _budget(simple_schema)
        fast_opt = WhatIfOptimizer(simple_schema)
        slow_opt = WhatIfOptimizer(simple_schema)
        fast = make_advisor("dta", simple_schema, optimizer=fast_opt,
                          inum=InumCache(fast_opt)).tune(simple_workload, [budget])
        slow = make_advisor("dta", simple_schema, optimizer=slow_opt,
                          inum=InumCache(slow_opt, use_gamma_matrix=False)
                          ).tune(simple_workload, [budget])
        assert fast.configuration == slow.configuration
        assert fast.objective_estimate == slow.objective_estimate

    def test_workload_compression_kicks_in(self, simple_schema, simple_workload):
        advisor = make_advisor("dta", simple_schema, compression_size=2)
        recommendation = advisor.tune(simple_workload, [_budget(simple_schema)])
        assert recommendation.extras["compressed_statements"] == 2
        assert recommendation.extras["original_statements"] == len(simple_workload)

    def test_no_compression_for_small_workloads(self, simple_schema,
                                                simple_workload):
        advisor = make_advisor("dta", simple_schema, compression_size=50)
        recommendation = advisor.tune(simple_workload, [_budget(simple_schema)])
        assert recommendation.extras["compressed_statements"] == len(simple_workload)

    def test_candidate_cap_respected(self, simple_schema, simple_workload):
        advisor = make_advisor("dta", simple_schema, max_candidates=3)
        recommendation = advisor.tune(simple_workload, [_budget(simple_schema)])
        assert recommendation.candidate_count <= 3

    def test_examines_fewer_candidates_than_cophy(self, simple_schema,
                                                  simple_workload):
        """The §5.2 observation: commercial advisors examine far fewer candidates."""
        cophy = make_advisor("cophy", simple_schema).tune(simple_workload)
        tool_b = make_advisor("dta", simple_schema).tune(simple_workload)
        assert tool_b.candidate_count < cophy.candidate_count


class TestBaselineConfiguration:
    def test_contains_one_clustered_pk_per_keyed_table(self, simple_schema):
        baseline = baseline_configuration(simple_schema)
        assert len(baseline) == 2
        assert all(index.clustered for index in baseline)

    def test_perf_improvement_is_zero_for_empty_recommendation(self,
                                                               simple_schema,
                                                               simple_workload,
                                                               evaluation_optimizer):
        from repro.indexes.configuration import Configuration

        assert perf_improvement(evaluation_optimizer, simple_workload,
                                Configuration()) == pytest.approx(0.0, abs=1e-9)

    def test_perf_improvement_bounded(self, simple_schema, simple_workload,
                                      evaluation_optimizer):
        recommendation = make_advisor("cophy", simple_schema).tune(simple_workload)
        perf = perf_improvement(evaluation_optimizer, simple_workload,
                                recommendation.configuration)
        assert 0.0 <= perf < 1.0
