"""Tests for BIPGen (Theorem 1): structure, equivalence with brute force, deltas."""

from __future__ import annotations

import itertools

import pytest

from repro.core.bip_builder import BipBuilder
from repro.core.solver import CoPhySolver, SolverBackend
from repro.exceptions import SolverError
from repro.indexes.candidate_generation import CandidateGenerator, CandidateSet
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.lp.highs_backend import MilpBackend
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.workload import Workload


@pytest.fixture
def inum(simple_schema) -> InumCache:
    return InumCache(WhatIfOptimizer(simple_schema))


@pytest.fixture
def builder(inum) -> BipBuilder:
    return BipBuilder(inum)


def brute_force_best(inum: InumCache, workload: Workload,
                     candidates: CandidateSet,
                     max_size: int | None = None,
                     storage_budget: float | None = None) -> tuple[float, set]:
    """Exhaustively search every candidate subset for the cheapest workload cost."""
    best_cost = float("inf")
    best_subset: set = set()
    indexes = list(candidates)
    for size in range(0, len(indexes) + 1):
        if max_size is not None and size > max_size:
            break
        for subset in itertools.combinations(indexes, size):
            if storage_budget is not None:
                storage = sum(candidates.size_of(index) for index in subset)
                if storage > storage_budget:
                    continue
            cost = inum.workload_cost(workload, Configuration(subset))
            if cost < best_cost - 1e-9:
                best_cost = cost
                best_subset = set(subset)
    return best_cost, best_subset


class TestBipStructure:
    def test_variable_families_present(self, builder, simple_workload,
                                       simple_schema):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        bip = builder.build(simple_workload, candidates)
        assert len(bip.z_variables) == len(candidates)
        assert len(bip.y_variables) >= len(simple_workload)
        assert bip.x_variables, "expected slot variables"
        assert bip.model.variable_count == (
            len(bip.z_variables) + len(bip.y_variables)
            + sum(len(v) for v in bip.x_variables.values()))

    def test_one_template_constraint_per_statement(self, builder, simple_workload,
                                                   simple_schema):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        bip = builder.build(simple_workload, candidates)
        template_rows = [c for c in bip.model.constraints
                         if c.name.startswith("one_template")]
        assert len(template_rows) == len(simple_workload)

    def test_slot_constraints_cover_every_slot(self, builder, simple_workload,
                                               simple_schema):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        bip = builder.build(simple_workload, candidates)
        assert set(bip.slot_constraints.keys()) == set(bip.x_variables.keys())

    def test_statistics_capture_beta_and_gamma(self, builder, simple_workload,
                                               simple_schema):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        bip = builder.build(simple_workload, candidates)
        assert any(key.startswith("beta::") for key in bip.statistics)
        assert any(key.startswith("gamma::") for key in bip.statistics)
        assert bip.statistics["variables"] == float(bip.model.variable_count)

    def test_update_costs_attached_to_z_variables(self, builder, simple_workload,
                                                  simple_schema):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        bip = builder.build(simple_workload, candidates)
        ucost_keys = [key for key in bip.statistics if key.startswith("ucost::")]
        assert ucost_keys, "expected update-maintenance coefficients"
        update_expression = bip.update_cost_expression()
        assert not update_expression.is_empty()

    def test_storage_expression_uses_candidate_sizes(self, builder, simple_workload,
                                                     simple_schema):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        bip = builder.build(simple_workload, candidates)
        expression = bip.storage_expression()
        full_selection = {variable: 1.0 for variable in bip.z_variables.values()}
        assert expression.evaluate(full_selection) == pytest.approx(
            candidates.total_size())

    def test_query_cost_expression_for_known_statement(self, builder,
                                                       simple_workload,
                                                       simple_schema):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        bip = builder.build(simple_workload, candidates)
        query = simple_workload.statements[0].query
        expression = bip.query_cost_expression(query)
        assert not expression.is_empty()

    def test_unknown_index_variable_lookup_raises(self, builder, simple_workload,
                                                  simple_schema):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        bip = builder.build(simple_workload, candidates)
        with pytest.raises(SolverError):
            bip.index_variable(Index("orders", ("o_id", "o_total", "o_status")))


class TestTheoremOneEquivalence:
    """The heart of the reproduction: the BIP optimum equals the true optimum."""

    def _small_instance(self, simple_schema, simple_workload):
        # A hand-picked, diverse candidate set small enough for brute force.
        candidates = CandidateSet(simple_schema, [
            Index("orders", ("o_customer",), include_columns=("o_total",)),
            Index("orders", ("o_date",)),
            Index("orders", ("o_status", "o_date")),
            Index("items", ("i_shipdate",)),
            Index("items", ("i_order",)),
            Index("items", ("i_shipdate",), include_columns=("i_price",)),
        ])
        return candidates

    def test_unconstrained_optimum_matches_brute_force(self, simple_schema,
                                                       simple_workload, inum,
                                                       builder):
        candidates = self._small_instance(simple_schema, simple_workload)
        bip = builder.build(simple_workload, candidates)
        solution = MilpBackend().solve(bip.model)
        chosen = bip.extract_configuration(solution)
        bip_cost = inum.workload_cost(simple_workload, chosen)
        brute_cost, _ = brute_force_best(inum, simple_workload, candidates)
        assert bip_cost == pytest.approx(brute_cost, rel=1e-6)
        # The BIP objective itself must equal the INUM cost of its own solution.
        assert solution.objective == pytest.approx(bip_cost, rel=1e-6)

    def test_storage_constrained_optimum_matches_brute_force(self, simple_schema,
                                                             simple_workload, inum,
                                                             builder):
        from repro.core.constraints import StorageBudgetConstraint

        candidates = self._small_instance(simple_schema, simple_workload)
        budget = 0.4 * candidates.total_size()
        bip = builder.build(simple_workload, candidates)
        solver = CoPhySolver(backend=SolverBackend.MILP, gap_tolerance=0.0)
        report = solver.solve(bip, [StorageBudgetConstraint(budget)])
        chosen_cost = inum.workload_cost(simple_workload, report.configuration)
        chosen_storage = sum(candidates.size_of(i) for i in report.configuration)
        brute_cost, brute_subset = brute_force_best(
            inum, simple_workload, candidates, storage_budget=budget)
        assert chosen_storage <= budget * (1 + 1e-9)
        assert chosen_cost == pytest.approx(brute_cost, rel=1e-6)

    def test_branch_and_bound_agrees_with_milp(self, simple_schema, simple_workload,
                                               builder):
        candidates = self._small_instance(simple_schema, simple_workload)
        bip = builder.build(simple_workload, candidates)
        milp = CoPhySolver(backend=SolverBackend.MILP, gap_tolerance=0.0).solve(bip)
        bnb = CoPhySolver(backend=SolverBackend.BRANCH_AND_BOUND,
                          gap_tolerance=0.0).solve(bip)
        assert bnb.objective == pytest.approx(milp.objective, rel=1e-6)


class TestIncrementalExtension:
    def test_extend_adds_variables_and_preserves_existing(self, simple_schema,
                                                          simple_workload, builder):
        generator = CandidateGenerator(simple_schema)
        all_candidates = list(generator.generate(simple_workload))
        initial = CandidateSet(simple_schema, all_candidates[:6])
        bip = builder.build(simple_workload, initial)
        variables_before = bip.model.variable_count
        added = all_candidates[6:10]
        builder.extend(bip, added)
        assert bip.model.variable_count > variables_before
        for index in added:
            assert index in bip.candidates
            assert index in bip.z_variables

    def test_extend_is_equivalent_to_building_from_scratch(self, simple_schema,
                                                           simple_workload):
        generator = CandidateGenerator(simple_schema)
        all_candidates = list(generator.generate(simple_workload))
        subset, added = all_candidates[:6], all_candidates[6:12]

        shared_inum = InumCache(WhatIfOptimizer(simple_schema))
        incremental_builder = BipBuilder(shared_inum)
        incremental = incremental_builder.build(
            simple_workload, CandidateSet(simple_schema, subset))
        incremental_builder.extend(incremental, added)
        incremental_solution = MilpBackend().solve(incremental.model)

        fresh_inum = InumCache(WhatIfOptimizer(simple_schema))
        fresh_builder = BipBuilder(fresh_inum)
        fresh = fresh_builder.build(simple_workload,
                                    CandidateSet(simple_schema, subset + added))
        fresh_solution = MilpBackend().solve(fresh.model)

        assert incremental_solution.objective == pytest.approx(
            fresh_solution.objective, rel=1e-6)

    def test_extend_with_duplicates_is_a_no_op(self, simple_schema, simple_workload,
                                               builder):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        bip = builder.build(simple_workload, candidates)
        variables_before = bip.model.variable_count
        builder.extend(bip, list(candidates)[:3])
        assert bip.model.variable_count == variables_before

    def test_warm_start_from_configuration_is_feasible(self, simple_schema,
                                                       simple_workload, builder):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        bip = builder.build(simple_workload, candidates)
        solution = MilpBackend().solve(bip.model)
        configuration = bip.extract_configuration(solution)
        warm = bip.warm_start_from(configuration)
        assert bip.model.is_feasible_assignment(warm)
        # The warm start selects exactly the indexes of the configuration.
        for index, variable in bip.z_variables.items():
            expected = 1.0 if index in configuration else 0.0
            assert warm[variable] == expected
