"""Tests for the performance-introspection layer (PR 10).

Covers the contention/profiling primitives (:mod:`repro.obs.profile`), the
queryable :class:`~repro.obs.store.TraceStore` ring (eviction order, slow
pinning, concurrent writers), histogram snapshots + quantile estimation,
the latency-SLO block in ``TuningService.stats()``, the ``/v1/traces``
endpoints end-to-end, the ``repro.obs.report`` CLI, and the acceptance
criterion that fingerprints stay bit-identical with introspection on vs off.
"""

from __future__ import annotations

import cProfile
import json
import math
import threading
import time
import tracemalloc

import pytest

from repro.api import Tuner, TuningRequest
from repro.api.service import TuningService
from repro.core.constraints import StorageBudgetConstraint
from repro.obs import report
from repro.obs.metrics import (
    MetricsRegistry,
    histogram_quantiles,
    use_registry,
)
from repro.obs.profile import (
    InstrumentedLock,
    ProfileSampler,
    drain_pending_waits,
    note_queue_wait,
)
from repro.obs.store import TraceStore
from repro.server import app as server_app
from repro.server.app import TuningServer
from repro.server.client import TuningClient
from repro.server.protocol import TuningServerError
from repro.workload.generators import generate_homogeneous_workload


def _request(schema, seed=31, statements=10, **kwargs):
    workload = generate_homogeneous_workload(statements, seed=seed)
    budget = StorageBudgetConstraint.from_fraction_of_data(schema, 1.0)
    return TuningRequest(workload=workload, schema=schema,
                         constraints=[budget], **kwargs)


def _trace(trace_id, duration_ms=1.0):
    """A minimal-but-valid trace export for store-level tests."""
    return {"trace_id": trace_id,
            "root": {"name": "tune", "duration_ms": duration_ms,
                     "attrs": {}, "children": []}}


# ------------------------------------------------------ histogram snapshots
class TestHistogramSnapshot:
    def test_buckets_are_cumulative_and_end_with_overflow(self):
        registry = MetricsRegistry()
        metric = registry.histogram("h", "test", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            metric.observe(value)
        sample = registry.snapshot()["h"][()]
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(7.0)
        assert sample["buckets"] == [[1.0, 1], [2.0, 2], [math.inf, 3]]

    def test_quantiles_interpolate_within_bucket(self):
        sample = {"count": 10, "sum": 5.0,
                  "buckets": [[1.0, 10], [math.inf, 10]]}
        p50, p90 = histogram_quantiles(sample, (0.5, 0.9))
        assert p50 == pytest.approx(0.5)
        assert p90 == pytest.approx(0.9)

    def test_quantiles_of_empty_sample_are_none(self):
        assert histogram_quantiles({"count": 0, "buckets": []},
                                   (0.5, 0.99)) == [None, None]

    def test_overflow_rank_answers_highest_finite_bound(self):
        sample = {"count": 10, "sum": 100.0,
                  "buckets": [[1.0, 0], [math.inf, 10]]}
        assert histogram_quantiles(sample, (0.5,)) == [1.0]

    def test_exemplar_in_snapshot_but_never_in_exposition(self):
        registry = MetricsRegistry()
        metric = registry.histogram("h", "test", buckets=(1.0,))
        metric.observe(0.2, exemplar="aaaabbbbccccdddd")
        metric.observe(0.9, exemplar="slowslowslowslow")
        metric.observe(0.1, exemplar="fastfastfastfast")
        sample = registry.snapshot()["h"][()]
        # slowest-wins retention
        assert sample["exemplar"]["trace_id"] == "slowslowslowslow"
        assert sample["exemplar"]["value"] == pytest.approx(0.9)
        assert "slowslowslowslow" not in registry.render()


# --------------------------------------------------------- instrumented lock
class TestInstrumentedLock:
    def test_uncontended_acquire_records_zero_wait(self):
        registry = MetricsRegistry()
        drain_pending_waits()  # isolate from earlier tests on this thread
        with use_registry(registry):
            lock = InstrumentedLock("test_lock")
            with lock:
                pass
        sample = registry.snapshot()["repro_lock_wait_seconds"][("test_lock",)]
        assert sample["count"] == 1
        assert sample["sum"] == 0.0
        assert drain_pending_waits() == {}

    def test_reentrant_by_default(self):
        lock = InstrumentedLock("reentrant")
        with lock:
            with lock:
                pass  # an RLock underneath: no deadlock

    def test_nonblocking_acquire_on_held_lock_returns_false(self):
        lock = InstrumentedLock("mutex", lock=threading.Lock())
        assert lock.acquire()
        try:
            assert lock.acquire(blocking=False) is False
        finally:
            lock.release()

    def test_contended_wait_lands_in_histogram_and_thread_local(self):
        registry = MetricsRegistry()
        lock = InstrumentedLock("contended", lock=threading.Lock())
        waits_seen = {}
        lock.acquire()

        def contender():
            with use_registry(registry):
                drain_pending_waits()
                with lock:
                    pass
                waits_seen.update(drain_pending_waits())

        thread = threading.Thread(target=contender)
        thread.start()
        time.sleep(0.05)
        lock.release()
        thread.join(timeout=5)
        sample = registry.snapshot()["repro_lock_wait_seconds"][("contended",)]
        assert sample["count"] == 1
        assert sample["sum"] >= 0.02
        assert waits_seen["lock_wait_s"] >= 0.02

    def test_queue_wait_accumulates_until_drained(self):
        drain_pending_waits()
        note_queue_wait(0.25)
        note_queue_wait(0.25)
        assert drain_pending_waits() == {"queue_wait_s": 0.5}
        assert drain_pending_waits() == {}


# ------------------------------------------------------------ profile sampler
class TestProfileSampler:
    def test_first_request_always_captured(self):
        sampler = ProfileSampler(every=3)
        decisions = [sampler.should_capture() for _ in range(7)]
        assert decisions == [True, False, False, True, False, False, True]

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            ProfileSampler(every=0)
        with pytest.raises(ValueError):
            ProfileSampler(every=1, top=0)

    def test_hotspots_table_is_sorted_and_bounded(self):
        sampler = ProfileSampler(every=1, top=3)
        profile = cProfile.Profile()
        profile.enable()
        sorted([3, 1, 2] * 100)
        json.dumps({"a": list(range(50))})
        profile.disable()
        table = sampler.hotspots(profile)
        assert table["engine"] == "cProfile"
        rows = table["top"]
        assert 0 < len(rows) <= 3
        times = [row["tottime_ms"] for row in rows]
        assert times == sorted(times, reverse=True)
        assert all({"function", "file", "calls"} <= set(row) for row in rows)


# ----------------------------------------------------------------- TraceStore
class TestTraceStore:
    def test_ring_evicts_oldest_first(self):
        store = TraceStore(capacity=3)
        for index in range(5):
            store.record(_trace(f"t{index}"))
        ids = [row["trace_id"] for row in store.summaries()]
        assert ids == ["t4", "t3", "t2"]  # newest first
        assert store.get("t0") is None
        assert store.get("t1") is None
        assert store.stats()["evicted"] == 2

    def test_slow_entries_survive_recent_ring_rotation(self):
        store = TraceStore(capacity=2, slow_threshold_ms=100.0)
        store.record(_trace("slow-1", duration_ms=500.0))
        for index in range(5):
            store.record(_trace(f"fast-{index}", duration_ms=1.0))
        entry = store.get("slow-1")
        assert entry is not None and entry["slow"] is True
        assert "slow-1" in {row["trace_id"] for row in store.summaries()}
        # fast entries rotated out normally
        assert store.get("fast-0") is None

    def test_rerecording_a_trace_id_overwrites(self):
        store = TraceStore(capacity=4)
        store.record(_trace("pinned"), advisor="first")
        store.record(_trace("pinned"), advisor="second")
        assert store.get("pinned")["advisor"] == "second"
        assert len(store) == 1

    def test_summaries_limit_and_fields(self):
        store = TraceStore(capacity=8, slow_threshold_ms=None)
        store.record(_trace("a"), advisor="cophy", status="ok",
                     request_id="r-1")
        rows = store.summaries(limit=1)
        assert len(rows) == 1
        assert set(rows[0]) == {"trace_id", "advisor", "status",
                                "duration_ms", "request_id", "slow", "seq"}
        assert "trace" not in rows[0]  # span trees only on the per-id endpoint

    def test_record_rejects_traceless_payloads(self):
        store = TraceStore(capacity=2)
        assert store.record(None) is None
        assert store.record({}) is None
        assert len(store) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)
        with pytest.raises(ValueError):
            TraceStore(capacity=1, slow_capacity=0)
        with pytest.raises(ValueError):
            TraceStore(capacity=1, slow_threshold_ms=-1.0)

    def test_concurrent_writers_stay_bounded(self):
        store = TraceStore(capacity=16, slow_threshold_ms=50.0,
                           slow_capacity=4)
        errors = []

        def writer(worker):
            try:
                for index in range(50):
                    duration = 100.0 if index % 10 == 0 else 1.0
                    store.record(_trace(f"w{worker}-{index}",
                                        duration_ms=duration))
                    store.summaries(limit=5)
                    store.get(f"w{worker}-{index}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        stats = store.stats()
        assert stats["recorded"] == 8 * 50
        assert len(store) <= store.capacity + store.slow_capacity
        assert stats["slow_retained"] <= store.slow_capacity


@pytest.fixture
def stop_memory_tracking():
    """``profile_memory=True`` starts tracemalloc process-wide (deliberately
    sticky for a server); stop it afterwards so the rest of the suite does
    not pay allocation tracing."""
    yield
    if tracemalloc.is_tracing():
        tracemalloc.stop()


# -------------------------------------------------------- Tuner integration
class TestTunerIntrospection:
    def test_introspection_artefacts_on_one_request(self, tpch,
                                                    stop_memory_tracking):
        tuner = Tuner(trace_store_size=8, slow_threshold_ms=0.0,
                      profile_every=1, profile_memory=True)
        result = tuner.tune(_request(tpch))

        trace = result.extras["trace"]
        root = trace["root"]
        assert root["attrs"]["cpu_ms"] >= 0.0
        assert root["attrs"]["mem_peak_kb"] >= 0.0

        profile = result.extras["profile"]
        assert profile["engine"] == "cProfile"
        assert profile["top"], "sampled capture must produce hotspot rows"

        entry = tuner.trace_store.get(trace["trace_id"])
        assert entry is not None
        assert entry["slow"] is True  # threshold 0.0 pins everything
        assert entry["trace"]["trace_id"] == trace["trace_id"]
        assert entry["profile"]["top"]

        snapshot = tuner.metrics.snapshot()
        lock_waits = snapshot["repro_lock_wait_seconds"]
        assert ("schema_context",) in lock_waits
        assert lock_waits[("schema_context",)]["count"] > 0
        # the request latency histogram retains the trace id as exemplar
        latency = snapshot["repro_request_seconds"][("cophy",)]
        assert latency["exemplar"]["trace_id"] == trace["trace_id"]

    def test_profile_sampling_cadence(self, tpch):
        tuner = Tuner(profile_every=2)
        first = tuner.tune(_request(tpch))
        second = tuner.tune(_request(tpch))
        assert "profile" in first.extras
        assert "profile" not in second.extras

    def test_fingerprint_identical_with_introspection_on_and_off(
            self, tpch, stop_memory_tracking):
        request = _request(tpch)
        plain = Tuner(tracing=False, trace_store_size=0).tune(request)
        instrumented = Tuner(trace_store_size=8, slow_threshold_ms=0.0,
                             profile_every=1, profile_memory=True
                             ).tune(request)
        assert "profile" in instrumented.extras
        assert "trace" in instrumented.extras
        assert plain.fingerprint() == instrumented.fingerprint()

    def test_trace_store_size_zero_disables_the_store(self, tpch):
        tuner = Tuner(trace_store_size=0)
        assert tuner.trace_store is None
        result = tuner.tune(_request(tpch))  # still tunes fine
        assert result.configuration is not None

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            Tuner(trace_store_size=-1)
        with pytest.raises(ValueError):
            Tuner(profile_every=0)


# ------------------------------------------------------- service integration
class TestServiceIntrospection:
    def test_queue_wait_histogram_and_root_attribution(self, tpch):
        service = TuningService(tuner=Tuner(trace_store_size=8))
        try:
            results = service.tune_many([_request(tpch), _request(tpch)])
        finally:
            service.close()
        assert len(results) == 2
        sample = service.tuner.metrics.snapshot()[
            "repro_queue_wait_seconds"][()]
        assert sample["count"] >= 2
        store = service.tuner.trace_store
        for result in results:
            trace = result.extras["trace"]
            # every pooled request sat in the queue (possibly ~0ms)
            assert trace["root"]["attrs"]["queue_wait_ms"] >= 0.0
            # ...and its trace landed in the store from the pool thread
            assert store.get(trace["trace_id"]) is not None

    def test_stats_exposes_latency_slo_per_advisor(self, tpch):
        service = TuningService(tuner=Tuner(trace_store_size=4))
        try:
            service.tune_many([_request(tpch)])
            stats = service.stats()
        finally:
            service.close()
        slo = stats["latency_slo"]
        assert "cophy" in slo
        row = slo["cophy"]
        assert row["count"] >= 1
        assert row["p50_ms"] is not None
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
        assert row["exemplar_trace_id"]

    def test_introspection_knobs_conflict_with_explicit_tuner(self):
        with pytest.raises(ValueError):
            TuningService(tuner=Tuner(), trace_store_size=4)


# --------------------------------------------------------- server end-to-end
@pytest.fixture(scope="class")
def introspective_server():
    server = TuningServer(port=0, namespace_statements=True,
                          trace_store_size=8, slow_threshold_ms=0.0,
                          profile_every=1).start()
    yield server
    server.stop()


class TestServerTraceEndpoints:
    def test_listing_then_fetching_a_stored_trace(self, introspective_server,
                                                  tpch):
        client = TuningClient(introspective_server.url)
        result = client.tune(_request(tpch))
        trace_id = result.extras["trace"]["trace_id"]

        listing = client.traces()
        assert listing["enabled"] is True
        assert listing["count"] >= 1
        assert listing["capacity"] == 8
        rows = listing["traces"]
        assert trace_id in {row["trace_id"] for row in rows}
        assert all("trace" not in row for row in rows)

        entry = client.trace(trace_id)
        assert entry["trace"]["root"]["name"] == "tune"
        assert entry["slow"] is True
        assert entry["profile"]["top"]

    def test_listing_honours_limit_param(self, introspective_server, tpch):
        client = TuningClient(introspective_server.url)
        client.tune(_request(tpch))
        client.tune(_request(tpch))
        assert len(client.traces(limit=1)["traces"]) == 1

    def test_unknown_and_evicted_ids_answer_404(self, introspective_server,
                                                tpch):
        client = TuningClient(introspective_server.url)
        with pytest.raises(TuningServerError) as excinfo:
            client.trace("0000000000000000ffffffffffffffff")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "UnknownTrace"

        # Force an eviction through the live store and check the evicted id
        # is indistinguishable from a never-recorded one.
        client.tune(_request(tpch))
        store = introspective_server.service.tuner.trace_store
        evicted_id = store.summaries()[-1]["trace_id"]
        for index in range(store.capacity + store.slow_capacity):
            store.record(_trace(f"filler-{index}", duration_ms=999.0))
        with pytest.raises(TuningServerError) as excinfo:
            client.trace(evicted_id)
        assert excinfo.value.status == 404


# ------------------------------------------------------------- report CLI
class TestReportCLI:
    def _entry(self):
        return {
            "trace_id": "feedfacefeedfacefeedfacefeedface",
            "advisor": "cophy", "status": "ok", "duration_ms": 100.0,
            "slow": True,
            "trace": {
                "trace_id": "feedfacefeedfacefeedfacefeedface",
                "root": {
                    "name": "tune", "duration_ms": 100.0,
                    "attrs": {"cpu_ms": 42.5, "queue_wait_ms": 1.25},
                    "children": [
                        {"name": "solve", "duration_ms": 75.0,
                         "attrs": {"cpu_ms": 40.0}, "children": []},
                    ],
                },
            },
            "profile": {"engine": "cProfile", "sort": "tottime",
                        "top": [{"function": "solve", "file": "solver.py:10",
                                 "calls": 3, "tottime_ms": 40.0,
                                 "cumtime_ms": 75.0}]},
        }

    def test_render_entry_shows_tree_shares_and_resources(self):
        text = report.render_entry(self._entry())
        assert "trace feedfacefeedfacefeedfacefeedface" in text
        assert "SLOW" in text
        assert "cpu_ms=42.5" in text and "queue_wait_ms=1.25" in text
        assert " 75.0%" in text  # the child's share of the root
        assert "hotspots (cProfile" in text
        assert "solver.py:10" in text

    def test_load_entry_accepts_all_three_shapes(self):
        export = self._entry()["trace"]
        assert report.load_entry(export)["trace"] is export
        assert report.load_entry(self._entry())["advisor"] == "cophy"
        wrapped = {"result": {"trace": export, "advisor": "cophy"}}
        assert report.load_entry(wrapped)["trace_id"] == export["trace_id"]
        with pytest.raises(ValueError):
            report.load_entry({"nope": 1})

    def test_main_renders_a_file(self, tmp_path, capsys):
        path = tmp_path / "entry.json"
        path.write_text(json.dumps(self._entry()), encoding="utf-8")
        assert report.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "tune" in out and "solve" in out

    def test_main_rejects_unrecognised_input(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"nope": 1}', encoding="utf-8")
        assert report.main([str(path)]) == 1
        assert "error:" in capsys.readouterr().err


def test_server_cli_help_lists_introspection_flags(capsys):
    with pytest.raises(SystemExit):
        server_app.main(["--help"])
    out = capsys.readouterr().out
    assert "--trace-store-size" in out
    assert "--slow-threshold-ms" in out
    assert "--profile-every" in out
