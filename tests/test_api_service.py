"""Tests for the concurrent TuningService: cache sharing, determinism, sessions."""

from __future__ import annotations

import threading

import pytest

from repro.api import (
    Tuner,
    TuningRequest,
    TuningService,
    TuningSession,
    make_advisor,
)
from repro.core.constraints import IndexCountConstraint, StorageBudgetConstraint
from repro.workload.workload import Workload


def _budget(schema, fraction=1.0):
    return StorageBudgetConstraint.from_fraction_of_data(schema, fraction)


def _requests(schema, workload):
    """A mixed batch: two strategies plus a repeated request and a variant."""
    budget = _budget(schema)
    return [
        TuningRequest(workload=workload, schema=schema, constraints=[budget],
                      advisor="cophy", request_id="cophy-1"),
        TuningRequest(workload=workload, schema=schema, constraints=[budget],
                      advisor="dta", request_id="dta-1"),
        TuningRequest(workload=workload, schema=schema, constraints=[budget],
                      advisor="tool-a", request_id="tool-a-1"),
        TuningRequest(workload=workload, schema=schema,
                      constraints=[_budget(schema, 0.25)],
                      advisor="cophy", request_id="cophy-tight"),
        TuningRequest(workload=workload, schema=schema, constraints=[budget],
                      advisor="cophy", request_id="cophy-2"),
    ]


class TestConcurrentTuning:
    def test_simultaneous_requests_share_one_cache_deterministically(
            self, simple_schema, simple_workload):
        """≥4 simultaneous ``tune()`` calls, one shared cache, per-request
        results identical to an isolated sequential run.

        Determinism is asserted on the decisions (configuration, objective,
        per-statement costs) — call-count diagnostics legitimately differ
        between warm and cold caches.
        """
        sequential = [Tuner().tune(request)  # fresh Tuner per request: cold,
                      for request in _requests(simple_schema, simple_workload)]

        with TuningService(max_workers=4) as service:
            # All five requests are in flight together before any completes.
            barrier = threading.Barrier(4, timeout=30)
            gate_hits = []

            original = service.tune

            def gated_tune(request):
                if len(gate_hits) < 4:
                    gate_hits.append(request.request_id)
                    barrier.wait()
                return original(request)

            service.tune = gated_tune  # type: ignore[method-assign]
            concurrent = service.tune_many(
                _requests(simple_schema, simple_workload))
            assert len(gate_hits) >= 4

            # One schema + one costing spec = exactly one shared context.
            assert len(service.tuner.contexts) == 1
            context = service.context_for(simple_schema)
            assert context.inum.cached_query_count == len(simple_workload)

        for expected, got in zip(sequential, concurrent):
            assert got.configuration == expected.configuration
            assert got.objective_estimate == expected.objective_estimate
            assert ([ (c.statement, c.cost) for c in got.statement_costs]
                    == [(c.statement, c.cost) for c in expected.statement_costs])

    def test_repeated_requests_reuse_templates_and_tensors(self, simple_schema,
                                                           simple_workload):
        service = TuningService()
        first = TuningRequest(workload=simple_workload, schema=simple_schema,
                              constraints=[_budget(simple_schema)])
        service.tune(first)
        context = service.context_for(simple_schema)
        builds_after_first = context.inum.template_build_calls
        assert builds_after_first > 0

        # An equal-but-distinct workload object: the canonical-workload LRU
        # must route it onto the existing tensors, not rebuild anything.
        clone = Workload(simple_workload.statements, name=simple_workload.name)
        assert clone is not simple_workload
        second = TuningRequest(workload=clone, schema=simple_schema,
                               constraints=[_budget(simple_schema)])
        result = service.tune(second)
        assert context.inum.template_build_calls == builds_after_first
        assert context.canonical_workload(clone) is context.canonical_workload(
            simple_workload)
        assert result.configuration == service.tune(first).configuration

    def test_name_collisions_do_not_alias_different_workloads(self, tpch):
        """Default statement names (``stmt1``…) must never make the shared
        context substitute or mix structurally different statements — the
        collision is rejected loudly at admission, never served wrong."""
        from repro.exceptions import WorkloadError
        from repro.api.tuner import workload_fingerprint
        from repro.workload import parse_workload

        first = parse_workload(
            ["SELECT o_totalprice FROM orders WHERE o_orderdate < 700"],
            schema=tpch)
        second = parse_workload(
            ["SELECT l_extendedprice FROM lineitem "
             "WHERE l_shipdate BETWEEN 2300 AND 2400"],
            schema=tpch)
        # Same workload name, same default statement names and weights —
        # only the structure differs.
        assert first.name == second.name
        assert [s.query.name for s in first] == [s.query.name for s in second]
        assert workload_fingerprint(first) != workload_fingerprint(second)

        service = TuningService()
        ok = service.tune(TuningRequest(workload=first, schema=tpch))
        assert {index.table for index in ok.configuration} <= {"orders"}
        # The shared cache keys templates by statement name: serving the
        # colliding workload would mix the two statements' templates.
        with pytest.raises(WorkloadError, match="structurally different"):
            service.tune(TuningRequest(workload=second, schema=tpch))
        # A repeat of the admitted workload (equal fingerprint) still works…
        again = service.tune(TuningRequest(workload=first, schema=tpch))
        assert again.configuration == ok.configuration
        # …and the rejected workload tunes fine on its own context.
        fresh = Tuner().tune(TuningRequest(workload=second, schema=tpch))
        assert {index.table for index in fresh.configuration} <= {"lineitem"}

    def test_rejected_workload_leaves_no_digest_trace(self, tpch):
        """Admission is validate-then-commit: a refused workload must not
        poison the name registry for names it never served."""
        from repro.exceptions import WorkloadError
        from repro.workload import parse_statement
        from repro.workload.workload import Workload

        def statement(sql, name):
            return parse_statement(sql, schema=tpch, name=name)

        service = TuningService()
        service.tune(TuningRequest(workload=Workload([statement(
            "SELECT o_totalprice FROM orders WHERE o_orderdate < 700",
            "q-orders")]), schema=tpch))
        # The rejected workload registers a *fresh* name first, then hits the
        # collision — the fresh registration must be rolled back with it.
        rejected = Workload([
            statement("SELECT s_acctbal FROM supplier WHERE s_acctbal >= 9000",
                      "q-fresh"),
            statement("SELECT l_extendedprice FROM lineitem "
                      "WHERE l_shipdate < 100", "q-orders"),  # collides
        ])
        with pytest.raises(WorkloadError, match="q-orders"):
            service.tune(TuningRequest(workload=rejected, schema=tpch))
        # 'q-fresh' may later name a *different* shape: the rejected
        # workload's registration must not have stuck.
        ok = service.tune(TuningRequest(workload=Workload([statement(
            "SELECT p_retailprice FROM part WHERE p_size <= 5", "q-fresh")]),
            schema=tpch))
        assert {index.table for index in ok.configuration} <= {"part"}

    def test_fingerprint_is_constant_sensitive(self, tpch):
        """Equal shapes with different predicate constants stay distinct."""
        from repro.api.tuner import workload_fingerprint
        from repro.workload import parse_workload

        narrow = parse_workload(
            ["SELECT o_totalprice FROM orders WHERE o_orderdate < 10"],
            schema=tpch)
        wide = parse_workload(
            ["SELECT o_totalprice FROM orders WHERE o_orderdate < 2000"],
            schema=tpch)
        assert workload_fingerprint(narrow) != workload_fingerprint(wide)

    def test_different_costing_specs_do_not_share_a_context(self,
                                                            simple_schema,
                                                            simple_workload):
        from repro.api import CostingSpec

        service = TuningService()
        service.tune(TuningRequest(workload=simple_workload,
                                   schema=simple_schema))
        service.tune(TuningRequest(workload=simple_workload,
                                   schema=simple_schema,
                                   costing=CostingSpec(max_orders_per_table=1)))
        assert len(service.tuner.contexts) == 2


class TestContextEviction:
    def test_lru_cap_evicts_whole_contexts(self, simple_workload):
        from repro.catalog import tpch_schema

        service = TuningService(max_contexts=2)
        schemas = [tpch_schema(scale_factor=0.003 + 0.001 * i)
                   for i in range(3)]
        for schema in schemas:
            service.context_for(schema)
        assert len(service.tuner.contexts) == 2
        assert service.tuner.evicted_contexts == 1
        # The survivor set is LRU: schema 0 is gone, touching schema 1 keeps
        # it alive past a fourth arrival.
        service.context_for(schemas[1])
        service.context_for(tpch_schema(scale_factor=0.009))
        live = {context.schema for context in service.tuner.contexts}
        assert schemas[1] in live and schemas[2] not in live
        stats = service.stats()
        assert stats["evicted_contexts"] == 2
        assert stats["max_contexts"] == 2

    def test_ttl_reaps_idle_contexts(self, simple_schema, simple_workload):
        import time

        from repro.catalog import tpch_schema

        service = TuningService(context_ttl_s=0.05)
        service.tune(TuningRequest(workload=simple_workload,
                                   schema=simple_schema))
        assert len(service.tuner.contexts) == 1
        time.sleep(0.1)
        service.context_for(tpch_schema(scale_factor=0.003))
        assert service.tuner.expired_contexts == 1
        assert all(context.schema is not simple_schema
                   for context in service.tuner.contexts)

    def test_in_flight_reference_survives_eviction(self, simple_schema,
                                                   simple_workload):
        """Eviction drops the registry entry, not the object: a caller holding
        the context finishes on its own reference, cold state comes later."""
        from repro.catalog import tpch_schema

        service = TuningService(max_contexts=1)
        context = service.context_for(simple_schema)
        service.context_for(tpch_schema(scale_factor=0.003))  # evicts it
        assert context not in service.tuner.contexts
        # Tuning through the held reference still works and caches normally.
        from repro.api.tuner import tune_in_context
        result = tune_in_context(
            TuningRequest(workload=simple_workload, schema=simple_schema),
            context)
        assert result.index_count >= 0
        assert context.inum.cached_query_count == len(simple_workload)

    def test_stats_do_not_block_behind_a_busy_context(self, simple_schema,
                                                      simple_workload):
        """A stats poll must not stall behind a context lock held by a
        long-running solve (which would transitively stall tuning traffic
        for every other schema through the registry lock)."""
        service = TuningService()
        service.tune(TuningRequest(workload=simple_workload,
                                   schema=simple_schema))
        context = service.context_for(simple_schema)
        holding = threading.Event()
        release = threading.Event()

        def long_solve_holder():
            with context.lock:
                holding.set()
                release.wait(10)

        holder = threading.Thread(target=long_solve_holder)
        holder.start()
        assert holding.wait(10)
        try:
            polled: dict[str, object] = {}
            poller = threading.Thread(
                target=lambda: polled.setdefault("stats", service.stats()))
            poller.start()
            poller.join(timeout=5)
            assert not poller.is_alive(), "stats() blocked on a busy context"
            assert polled["stats"]["context_count"] == 1
        finally:
            release.set()
            holder.join(timeout=10)

    def test_eviction_knobs_require_owned_tuner(self):
        with pytest.raises(ValueError, match="Tuner"):
            TuningService(Tuner(), max_contexts=4)

    def test_invalid_knobs_are_rejected(self):
        with pytest.raises(ValueError):
            Tuner(max_contexts=0)
        with pytest.raises(ValueError):
            Tuner(context_ttl_s=0.0)


class TestStatementNamespacing:
    def _colliding_workloads(self, tpch):
        from repro.workload import parse_workload

        first = parse_workload(
            ["SELECT o_totalprice FROM orders WHERE o_orderdate < 700"],
            schema=tpch)
        second = parse_workload(
            ["SELECT l_extendedprice FROM lineitem "
             "WHERE l_shipdate BETWEEN 2300 AND 2400"],
            schema=tpch)
        return first, second

    def test_namespacing_admits_colliding_traffic(self, tpch):
        first, second = self._colliding_workloads(tpch)
        service = TuningService(namespace_statements=True)
        ok = service.tune(TuningRequest(workload=first, schema=tpch))
        renamed = service.tune(TuningRequest(workload=second, schema=tpch))
        isolated = Tuner().tune(TuningRequest(workload=second, schema=tpch))
        # Renaming never changes the decision, only the statement labels.
        assert renamed.configuration == isolated.configuration
        assert renamed.objective_estimate == isolated.objective_estimate
        assert renamed.provenance["pipeline"]["namespaced"] is True
        assert ok.provenance["pipeline"]["namespaced"] is False
        names = [c.statement for c in renamed.statement_costs]
        assert all("@" in name for name in names)
        assert service.stats()["namespaced_requests"] == 1

    def test_namespaced_names_are_content_addressed(self, tpch):
        """The qualifier depends only on the workload's content, so repeats
        resolve to the same canonical workload (tensor cache hits) and the
        rename is independent of request interleaving."""
        first, second = self._colliding_workloads(tpch)
        service = TuningService(namespace_statements=True)
        service.tune(TuningRequest(workload=first, schema=tpch))
        one = service.tune(TuningRequest(workload=second, schema=tpch))
        context = service.context_for(tpch)
        workloads_before = context.canonical_workload_count
        two = service.tune(TuningRequest(workload=second, schema=tpch))
        assert [c.statement for c in one.statement_costs] == \
            [c.statement for c in two.statement_costs]
        assert context.canonical_workload_count == workloads_before
        assert two.configuration == one.configuration

    def test_name_referencing_constraints_follow_the_rename(self, tpch):
        """Constraints targeting statements by name (query-cost, speedup
        generators) must be rewritten alongside the workload, or they would
        silently stop matching the renamed statements."""
        from repro.core.constraints import (
            QueryCostConstraint,
            QuerySpeedupGenerator,
        )

        first, second = self._colliding_workloads(tpch)
        target = second.statements[0].query
        constraints = [
            QueryCostConstraint(target, reference_cost=1e9, factor=1.0),
            QuerySpeedupGenerator(reference_costs={target.name: 1e9},
                                  factor=1.0),
        ]
        isolated = Tuner().tune(TuningRequest(
            workload=second, schema=tpch, constraints=constraints))

        service = TuningService(namespace_statements=True)
        service.tune(TuningRequest(workload=first, schema=tpch))
        renamed = service.tune(TuningRequest(
            workload=second, schema=tpch, constraints=constraints))
        # The constraints applied (no ConstraintError, no silent drop) and
        # the decision matches the isolated run with the same constraints.
        assert renamed.configuration == isolated.configuration
        assert renamed.objective_estimate == isolated.objective_estimate

    def test_default_service_still_rejects_loudly(self, tpch):
        from repro.exceptions import WorkloadError

        first, second = self._colliding_workloads(tpch)
        service = TuningService()
        service.tune(TuningRequest(workload=first, schema=tpch))
        with pytest.raises(WorkloadError, match="structurally different"):
            service.tune(TuningRequest(workload=second, schema=tpch))

    def test_intra_workload_collisions_stay_loud(self, tpch):
        """Two same-named, structurally different statements in ONE request
        would receive the same qualifier — namespacing cannot split them, so
        admission still rejects."""
        from repro.exceptions import WorkloadError
        from repro.workload import parse_statement
        from repro.workload.workload import Workload

        clashing = Workload([
            parse_statement(
                "SELECT o_totalprice FROM orders WHERE o_orderdate < 700",
                schema=tpch, name="dup"),
            parse_statement(
                "SELECT l_extendedprice FROM lineitem WHERE l_shipdate < 10",
                schema=tpch, name="dup"),
        ])
        service = TuningService(namespace_statements=True)
        with pytest.raises(WorkloadError, match="dup"):
            service.tune(TuningRequest(workload=clashing, schema=tpch))


class TestServiceSessions:
    def test_open_session_matches_legacy_interactive_session(
            self, simple_schema, simple_workload):
        """The service session is the legacy delta-BIP session, normalised."""
        budget = _budget(simple_schema)
        legacy_advisor = make_advisor("cophy", simple_schema)
        legacy = legacy_advisor.create_session(simple_workload,
                                               constraints=[budget])
        legacy_first = legacy.recommend()
        legacy_capped = legacy.update_constraints(
            [budget, IndexCountConstraint(limit=2)])

        service = TuningService()
        session = service.open_session(TuningRequest(
            workload=simple_workload, schema=simple_schema,
            constraints=[budget]))
        assert isinstance(session, TuningSession)
        first = session.recommend()
        capped = session.update_constraints(
            [budget, IndexCountConstraint(limit=2)])

        assert first.configuration == legacy_first.configuration
        assert first.objective_estimate == legacy_first.objective_estimate
        assert capped.configuration == legacy_capped.configuration
        assert len(session.history) == 2
        assert session.last_result is capped
        assert capped.provenance["session"] == {
            "step": 2, "operation": "update_constraints"}

    def test_session_add_and_remove_candidates(self, simple_schema,
                                               simple_workload):
        from repro.indexes.index import Index

        service = TuningService()
        session = service.open_session(TuningRequest(
            workload=simple_workload, schema=simple_schema,
            constraints=[_budget(simple_schema)]))
        session.recommend()
        extra = Index("items", ("i_shipdate",), include_columns=("i_price",))
        grown = session.add_candidates([extra])
        assert grown.extras["warm_started"] is True
        shrunk = session.remove_candidates([extra])
        assert extra not in shrunk.configuration
        assert session.inner.last_recommendation.configuration \
            == shrunk.configuration

    def test_open_session_requires_cophy(self, simple_schema,
                                         simple_workload):
        service = TuningService()
        with pytest.raises(ValueError, match="cophy"):
            service.open_session(TuningRequest(
                workload=simple_workload, schema=simple_schema,
                advisor="dta"))
