"""Tests for selectivity estimation and the cost model primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.cost_model import CostModel
from repro.optimizer.selectivity import SelectivityEstimator
from repro.workload.predicates import ColumnRef, ComparisonOperator, JoinPredicate, SimplePredicate
from repro.workload.query import SelectQuery


@pytest.fixture
def estimator(simple_schema) -> SelectivityEstimator:
    return SelectivityEstimator(simple_schema)


def _pred(column, operator, value, hint=None):
    return SimplePredicate(ColumnRef("orders", column), operator, value,
                           selectivity_hint=hint)


class TestPredicateSelectivity:
    def test_hint_takes_precedence(self, estimator):
        predicate = _pred("o_customer", ComparisonOperator.EQ, 5, hint=0.42)
        assert estimator.predicate_selectivity(predicate) == pytest.approx(0.42)

    def test_equality_uses_distinct_count(self, estimator):
        predicate = _pred("o_customer", ComparisonOperator.EQ, 100)
        assert estimator.predicate_selectivity(predicate) == pytest.approx(
            1.0 / 5_000, rel=1.0)

    def test_range_narrower_is_more_selective(self, estimator):
        narrow = _pred("o_date", ComparisonOperator.BETWEEN, (0, 100))
        wide = _pred("o_date", ComparisonOperator.BETWEEN, (0, 1_000))
        assert (estimator.predicate_selectivity(narrow)
                < estimator.predicate_selectivity(wide))

    def test_open_range_operators(self, estimator):
        lt = _pred("o_date", ComparisonOperator.LT, 1_000)
        ge = _pred("o_date", ComparisonOperator.GE, 1_000)
        assert estimator.predicate_selectivity(lt) == pytest.approx(0.5, abs=0.1)
        assert estimator.predicate_selectivity(ge) == pytest.approx(0.5, abs=0.1)

    def test_in_list_sums_equalities(self, estimator):
        single = _pred("o_customer", ComparisonOperator.EQ, 5)
        triple = _pred("o_customer", ComparisonOperator.IN, (5, 6, 7))
        assert estimator.predicate_selectivity(triple) == pytest.approx(
            3 * estimator.predicate_selectivity(single), rel=0.01)

    def test_string_values_are_handled(self, estimator):
        predicate = _pred("o_status", ComparisonOperator.EQ, "shipped")
        assert 0.0 < estimator.predicate_selectivity(predicate) <= 1.0

    def test_combined_selectivity_multiplies(self, estimator):
        predicates = [
            _pred("o_date", ComparisonOperator.BETWEEN, (0, 200), hint=0.1),
            _pred("o_status", ComparisonOperator.EQ, 1, hint=0.5),
        ]
        assert estimator.combined_selectivity(predicates) == pytest.approx(0.05)

    def test_selectivity_never_exceeds_one_or_hits_zero(self, estimator):
        predicates = [_pred("o_date", ComparisonOperator.BETWEEN, (0, 200), hint=0.01)
                      for _ in range(10)]
        combined = estimator.combined_selectivity(predicates)
        assert 0.0 < combined <= 1.0


class TestCardinalityAndJoins:
    def test_table_cardinality(self, estimator, simple_schema):
        query = SelectQuery(
            tables=("orders",),
            predicates=(_pred("o_status", ComparisonOperator.EQ, 1, hint=0.25),),
            name="card#1")
        expected = simple_schema.table("orders").row_count * 0.25
        assert estimator.table_cardinality(query, "orders") == pytest.approx(expected)

    def test_join_selectivity_uses_larger_ndv(self, estimator):
        join = JoinPredicate(ColumnRef("orders", "o_id"), ColumnRef("items", "i_order"))
        assert estimator.join_selectivity(join) == pytest.approx(1.0 / 50_000)

    def test_group_count_bounded_by_input(self, estimator):
        query = SelectQuery(tables=("orders",),
                            group_by=(ColumnRef("orders", "o_status"),),
                            name="grp#1")
        assert estimator.group_count(query, 10_000) == pytest.approx(3.0)
        assert estimator.group_count(query, 2.0) <= 2.0

    def test_group_count_without_group_by_is_one(self, estimator):
        query = SelectQuery(tables=("orders",), name="nogrp#1")
        assert estimator.group_count(query, 500) == 1.0


class TestCostModel:
    def setup_method(self):
        self.model = CostModel()

    def test_seq_scan_scales_with_pages_and_rows(self):
        small = self.model.seq_scan_cost(10, 1_000)
        large = self.model.seq_scan_cost(100, 10_000)
        assert large > small

    def test_index_scan_cheaper_when_selective(self):
        common = dict(total_rows=100_000, leaf_pages=500, heap_pages=2_000,
                      covering=False, correlation=0.0, tree_height=3)
        selective = self.model.index_scan_cost(matched_rows=10, **common)
        unselective = self.model.index_scan_cost(matched_rows=50_000, **common)
        assert selective < unselective

    def test_covering_index_avoids_heap_fetches(self):
        common = dict(matched_rows=5_000, total_rows=100_000, leaf_pages=500,
                      heap_pages=2_000, correlation=0.0, tree_height=3)
        covering = self.model.index_scan_cost(covering=True, **common)
        fetching = self.model.index_scan_cost(covering=False, **common)
        assert covering < fetching

    def test_correlation_reduces_heap_fetch_cost(self):
        clustered = self.model.heap_fetch_cost(1_000, 2_000, correlation=1.0)
        random_order = self.model.heap_fetch_cost(1_000, 2_000, correlation=0.0)
        assert clustered < random_order

    def test_heap_fetch_capped_by_pages(self):
        assert self.model.heap_fetch_cost(1_000_000, 100, correlation=0.0) <= \
            100 * self.model.random_page_cost

    def test_sort_cost_superlinear(self):
        small = self.model.sort_cost(1_000, 32)
        large = self.model.sort_cost(10_000, 32)
        assert large > 10 * small * 0.9

    def test_sort_spills_beyond_work_mem(self):
        in_memory = self.model.sort_cost(1_000, 100)
        model = CostModel(work_mem_bytes=1_000)
        spilled = model.sort_cost(1_000, 100)
        assert spilled > in_memory

    def test_hash_join_spills_beyond_work_mem(self):
        cheap = self.model.hash_join_cost(1_000, 10_000, 50, 10_000)
        model = CostModel(work_mem_bytes=1_000)
        expensive = model.hash_join_cost(1_000, 10_000, 50, 10_000)
        assert expensive > cheap

    def test_merge_join_linear_in_inputs(self):
        assert self.model.merge_join_cost(100, 100, 100) < \
            self.model.merge_join_cost(10_000, 10_000, 10_000)

    def test_nested_loop_quadratic(self):
        assert self.model.nested_loop_cost(1_000, 1_000, 100) > \
            self.model.hash_join_cost(1_000, 1_000, 32, 100)

    def test_stream_aggregate_cheaper_than_hash(self):
        assert self.model.stream_aggregate_cost(10_000, 10) < \
            self.model.hash_aggregate_cost(10_000, 10)

    def test_btree_height_grows_logarithmically(self):
        shallow = self.model.btree_height(1_000, 100)
        deep = self.model.btree_height(100_000_000, 100)
        assert deep > shallow
        assert deep <= 5

    def test_update_costs_positive(self):
        assert self.model.index_maintenance_cost(100, 3) > 0
        assert self.model.base_update_cost(100, 50) > 0

    @given(rows=st.floats(min_value=1, max_value=1e7),
           width=st.floats(min_value=1, max_value=512))
    @settings(max_examples=40, deadline=None)
    def test_property_costs_non_negative(self, rows, width):
        assert self.model.sort_cost(rows, width) >= 0
        assert self.model.seq_scan_cost(rows / 10, rows) >= 0
        assert self.model.hash_join_cost(rows, rows, width, rows) >= 0
