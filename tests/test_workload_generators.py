"""Tests for the W_hom / W_het workload generators and the TPC-H templates."""

from __future__ import annotations

import pytest

from repro.exceptions import WorkloadError
from repro.workload.generators import (
    HeterogeneousWorkloadGenerator,
    HomogeneousWorkloadGenerator,
    generate_heterogeneous_workload,
    generate_homogeneous_workload,
)
from repro.workload.query import StatementKind
from repro.workload.templates_tpch import (
    SELECT_TEMPLATES,
    UPDATE_TEMPLATES,
    instantiate_template,
)
import random


class TestTemplates:
    def test_fifteen_select_templates(self):
        assert len(SELECT_TEMPLATES) == 15

    @pytest.mark.parametrize("template_id", sorted(SELECT_TEMPLATES))
    def test_select_templates_instantiate_and_validate(self, tpch, template_id):
        query = instantiate_template(template_id, random.Random(7), 1)
        assert query.kind is StatementKind.SELECT
        query.validate_against(tpch)
        assert query.name == f"{template_id}#1"

    @pytest.mark.parametrize("template_id", sorted(UPDATE_TEMPLATES))
    def test_update_templates_instantiate_and_validate(self, tpch, template_id):
        query = instantiate_template(template_id, random.Random(7), 2)
        assert query.kind is StatementKind.UPDATE
        query.validate_against(tpch)

    def test_unknown_template_rejected(self):
        with pytest.raises(KeyError):
            instantiate_template("Q99", random.Random(0), 1)

    def test_instances_differ_in_parameters(self):
        rng = random.Random(1)
        first = SELECT_TEMPLATES["Q6"](rng, "Q6#1")
        second = SELECT_TEMPLATES["Q6"](rng, "Q6#2")
        assert first.predicates[0].value != second.predicates[0].value


class TestHomogeneousGenerator:
    def test_deterministic_given_seed(self):
        first = generate_homogeneous_workload(30, seed=11)
        second = generate_homogeneous_workload(30, seed=11)
        assert [s.query.name for s in first] == [s.query.name for s in second]
        assert [s.weight for s in first] == [s.weight for s in second]

    def test_different_seeds_differ(self):
        first = generate_homogeneous_workload(30, seed=1)
        second = generate_homogeneous_workload(30, seed=2)
        assert [s.query.name for s in first] != [s.query.name for s in second]

    def test_size_and_validity(self, tpch):
        workload = generate_homogeneous_workload(40, seed=3)
        assert len(workload) == 40
        workload.validate_against(tpch)

    def test_update_fraction_zero_means_no_updates(self):
        workload = generate_homogeneous_workload(40, seed=3, update_fraction=0.0)
        assert not workload.update_statements()

    def test_update_fraction_roughly_respected(self):
        workload = generate_homogeneous_workload(200, seed=3, update_fraction=0.2)
        fraction = len(workload.update_statements()) / len(workload)
        assert 0.1 < fraction < 0.3

    def test_few_distinct_templates(self):
        workload = generate_homogeneous_workload(200, seed=5)
        # At most the 15 SELECT templates plus the 4 update templates.
        assert workload.distinct_template_count() <= 19

    def test_template_subset_restriction(self):
        generator = HomogeneousWorkloadGenerator(seed=0, update_fraction=0.0,
                                                 templates=("Q1", "Q6"))
        workload = generator.generate(50)
        prefixes = {s.query.name.split("#")[0] for s in workload}
        assert prefixes <= {"Q1", "Q6"}

    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            HomogeneousWorkloadGenerator(update_fraction=1.5)
        with pytest.raises(WorkloadError):
            HomogeneousWorkloadGenerator(update_fraction=-0.1)
        with pytest.raises(WorkloadError):
            HomogeneousWorkloadGenerator(templates=("Q999",))
        with pytest.raises(WorkloadError):
            generate_homogeneous_workload(0)


class TestHeterogeneousGenerator:
    def test_deterministic_given_seed(self):
        first = generate_heterogeneous_workload(30, seed=11)
        second = generate_heterogeneous_workload(30, seed=11)
        assert [s.query.name for s in first] == [s.query.name for s in second]

    def test_size_and_validity(self, tpch):
        workload = generate_heterogeneous_workload(40, seed=3)
        assert len(workload) == 40
        workload.validate_against(tpch)

    def test_many_distinct_shapes(self):
        homogeneous = generate_homogeneous_workload(100, seed=4)
        heterogeneous = generate_heterogeneous_workload(100, seed=4)
        assert (heterogeneous.distinct_template_count()
                > 3 * homogeneous.distinct_template_count())

    def test_joins_are_connected(self, tpch):
        workload = generate_heterogeneous_workload(60, seed=9, update_fraction=0.0)
        for statement in workload:
            query = statement.query
            if len(query.tables) == 1:
                continue
            # Every multi-table query must have at least |tables| - 1 joins.
            assert len(query.joins) >= len(query.tables) - 1

    def test_max_tables_respected(self):
        generator = HeterogeneousWorkloadGenerator(seed=2, max_tables=3,
                                                   update_fraction=0.0)
        workload = generator.generate(50)
        assert max(len(s.query.tables) for s in workload) <= 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            HeterogeneousWorkloadGenerator(update_fraction=-0.1)
        with pytest.raises(WorkloadError):
            HeterogeneousWorkloadGenerator(max_tables=0)
        with pytest.raises(WorkloadError):
            generate_heterogeneous_workload(0)


class TestAllUpdateWorkloads:
    """``update_fraction=1.0``: write-only workloads (e.g. maintenance-cost
    studies) must generate, validate and stay seed-deterministic."""

    @pytest.mark.parametrize("generate", [generate_homogeneous_workload,
                                          generate_heterogeneous_workload])
    def test_every_statement_is_an_update(self, tpch, generate):
        workload = generate(30, seed=13, update_fraction=1.0)
        assert len(workload) == 30
        assert all(s.query.kind is StatementKind.UPDATE for s in workload)
        assert not workload.select_statements()
        workload.validate_against(tpch)

    @pytest.mark.parametrize("generate", [generate_homogeneous_workload,
                                          generate_heterogeneous_workload])
    def test_seed_determinism(self, generate):
        first = generate(25, seed=21, update_fraction=1.0)
        second = generate(25, seed=21, update_fraction=1.0)
        assert [s.query.name for s in first] == [s.query.name for s in second]
        assert [s.weight for s in first] == [s.weight for s in second]
        assert ([s.query.table for s in first]
                == [s.query.table for s in second])
        other_seed = generate(25, seed=22, update_fraction=1.0)
        assert ([s.query.name for s in first]
                != [s.query.name for s in other_seed])
