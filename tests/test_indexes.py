"""Tests for index definitions, configurations and candidate generation."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import IndexDefinitionError
from repro.indexes.candidate_generation import CandidateGenerator, CandidateSet
from repro.indexes.configuration import (
    AtomicConfiguration,
    Configuration,
    atomic_configurations,
)
from repro.indexes.index import Index, index_size_bytes
from repro.workload.predicates import ColumnRef
from repro.workload.query import StatementKind, UpdateQuery


class TestIndex:
    def test_canonical_name_and_str(self):
        index = Index("orders", ("o_date", "o_total"), include_columns=("o_status",))
        assert "orders" in index.name
        assert "INDEX ON orders(o_date, o_total)" in str(index)
        assert "INCLUDE" in str(index)

    def test_rejects_empty_key(self):
        with pytest.raises(IndexDefinitionError):
            Index("orders", ())

    def test_rejects_duplicate_key_columns(self):
        with pytest.raises(IndexDefinitionError):
            Index("orders", ("a", "a"))

    def test_rejects_overlap_between_key_and_includes(self):
        with pytest.raises(IndexDefinitionError):
            Index("orders", ("a",), include_columns=("a",))

    def test_include_columns_are_deduplicated(self):
        index = Index("orders", ("a",), include_columns=("b", "b", "c"))
        assert index.include_columns == ("b", "c")

    def test_covers(self):
        index = Index("orders", ("o_date",), include_columns=("o_total",))
        assert index.covers(["o_date", "o_total"])
        assert index.covers([ColumnRef("orders", "o_date")])
        assert not index.covers(["o_status"])

    def test_provides_order_only_on_leading_column(self):
        index = Index("orders", ("o_date", "o_total"))
        assert index.provides_order_on("o_date")
        assert not index.provides_order_on("o_total")

    def test_key_prefix_matches(self):
        index = Index("orders", ("a", "b", "c"))
        assert index.key_prefix_matches({"a", "b"}) == 2
        assert index.key_prefix_matches({"b", "c"}) == 0
        assert index.key_prefix_matches({"a", "c"}) == 1

    def test_equality_ignores_name(self):
        first = Index("orders", ("o_date",), name="one")
        second = Index("orders", ("o_date",), name="two")
        assert first == second
        assert hash(first) == hash(second)

    def test_width(self):
        index = Index("orders", ("a", "b"), include_columns=("c",))
        assert index.width == 3


class TestIndexSize:
    def test_size_positive_and_grows_with_columns(self, simple_schema):
        table = simple_schema.table("orders")
        narrow = Index("orders", ("o_date",))
        wide = Index("orders", ("o_date",), include_columns=("o_total", "o_status"))
        assert index_size_bytes(narrow, table) > 0
        assert index_size_bytes(wide, table) > index_size_bytes(narrow, table)

    def test_size_grows_with_row_count(self, simple_schema):
        orders = simple_schema.table("orders")
        items = simple_schema.table("items")
        orders_index = Index("orders", ("o_date",))
        items_index = Index("items", ("i_shipdate",))
        per_row_orders = index_size_bytes(orders_index, orders) / orders.row_count
        per_row_items = index_size_bytes(items_index, items) / items.row_count
        assert per_row_items == pytest.approx(per_row_orders, rel=0.5)

    def test_clustered_index_cheaper_than_secondary_copy(self, simple_schema):
        table = simple_schema.table("orders")
        clustered = Index("orders", ("o_id",), clustered=True)
        secondary_full = Index("orders", ("o_id",),
                               include_columns=("o_customer", "o_date", "o_total",
                                                "o_status"))
        assert index_size_bytes(clustered, table) < index_size_bytes(
            secondary_full, table)

    def test_wrong_table_rejected(self, simple_schema):
        index = Index("items", ("i_order",))
        with pytest.raises(IndexDefinitionError):
            index_size_bytes(index, simple_schema.table("orders"))

    @given(columns=st.lists(st.sampled_from(["o_customer", "o_date", "o_total",
                                             "o_status"]),
                            min_size=1, max_size=4, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_property_size_monotone_in_key_width(self, columns):
        from tests.conftest import build_simple_schema

        table = build_simple_schema().table("orders")
        sizes = [index_size_bytes(Index("orders", tuple(columns[:i + 1])), table)
                 for i in range(len(columns))]
        assert all(b >= a - 1e-6 for a, b in zip(sizes, sizes[1:]))


class TestConfiguration:
    def test_deduplicates(self):
        index = Index("orders", ("o_date",))
        configuration = Configuration([index, Index("orders", ("o_date",))])
        assert len(configuration) == 1

    def test_set_like_equality(self):
        a = Index("orders", ("o_date",))
        b = Index("items", ("i_order",))
        assert Configuration([a, b]) == Configuration([b, a])
        assert hash(Configuration([a, b])) == hash(Configuration([b, a]))

    def test_union_with_and_without(self):
        a = Index("orders", ("o_date",))
        b = Index("items", ("i_order",))
        configuration = Configuration([a])
        union = configuration.union(Configuration([b]))
        assert set(union.indexes) == {a, b}
        assert union.without_index(a) == Configuration([b])
        assert configuration.with_index(b) == union

    def test_per_table_lookup(self):
        a = Index("orders", ("o_date",))
        clustered = Index("orders", ("o_id",), clustered=True)
        configuration = Configuration([a, clustered])
        assert set(configuration.indexes_on("orders")) == {a, clustered}
        assert configuration.clustered_indexes_on("orders") == (clustered,)
        assert configuration.indexes_on("items") == ()

    def test_pickle_roundtrip_rehashes(self):
        """Like Index/TemplatePlan: the cached hash never ships in a pickle.

        A shipped hash would be built from another process's string hashes
        (hash randomisation) and silently break every dict lookup keyed by
        the configuration in scale-out workers.
        """
        configuration = Configuration(
            [Index("orders", ("o_date",)), Index("items", ("i_order",))],
            name="shipped")
        clone = pickle.loads(pickle.dumps(configuration))
        assert "_hash" not in pickle.loads(
            pickle.dumps(configuration.__getstate__()))
        assert clone == configuration
        assert hash(clone) == hash(configuration)
        assert clone in {configuration}
        assert clone.name == "shipped"
        # The lazily built per-table partition is rebuilt, not shipped.
        assert set(clone.indexes_on("orders")) == {Index("orders", ("o_date",))}

    def test_process_pool_roundtrip_preserves_dict_lookups(self):
        """Configurations keyed in a dict must survive a worker round trip."""
        from concurrent.futures import ProcessPoolExecutor

        configurations = [
            Configuration([Index("orders", ("o_date",))]),
            Configuration([Index("items", ("i_order",)),
                           Index("orders", ("o_total",), clustered=True)]),
            Configuration(),
        ]
        mapping = {config: position
                   for position, config in enumerate(configurations)}
        with ProcessPoolExecutor(max_workers=1) as pool:
            looked_up = pool.submit(_lookup_all, mapping,
                                    configurations).result()
        assert looked_up == [0, 1, 2]


def _lookup_all(mapping, probes):
    """Worker-side dict lookups (both sides of the map cross the pickle)."""
    return [mapping.get(probe, -1) for probe in probes]


class TestAtomicConfiguration:
    def test_at_most_one_index_per_table(self):
        with pytest.raises(IndexDefinitionError):
            AtomicConfiguration.from_indexes([Index("orders", ("o_date",)),
                                              Index("orders", ("o_total",))])

    def test_table_assignment_must_match(self):
        with pytest.raises(IndexDefinitionError):
            AtomicConfiguration({"orders": Index("items", ("i_order",))})

    def test_lookup(self):
        index = Index("orders", ("o_date",))
        atomic = AtomicConfiguration({"orders": index, "items": None})
        assert atomic.index_for("orders") is index
        assert atomic.index_for("items") is None
        assert atomic.indexes() == (index,)

    def test_enumeration_counts(self):
        orders_indexes = [Index("orders", ("o_date",)), Index("orders", ("o_total",))]
        items_indexes = [Index("items", ("i_order",))]
        configuration = Configuration(orders_indexes + items_indexes)
        atomics = list(atomic_configurations(configuration, ["orders", "items"]))
        # (2 + none) * (1 + none) = 6 combinations.
        assert len(atomics) == 6

    def test_enumeration_respects_cap(self):
        configuration = Configuration([Index("orders", ("o_date",)),
                                       Index("orders", ("o_total",))])
        atomics = list(atomic_configurations(configuration, ["orders"], max_count=2))
        assert len(atomics) == 2


class TestCandidateGeneration:
    def test_generates_candidates_for_every_referenced_table(self, simple_schema,
                                                             simple_workload):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        assert len(candidates) > 0
        assert set(candidates.tables_with_candidates()) == {"orders", "items"}

    def test_includes_single_column_sargable_candidates(self, simple_schema,
                                                        simple_workload):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        assert Index("orders", ("o_customer",)) in candidates
        assert Index("items", ("i_shipdate",)) in candidates

    def test_includes_join_column_candidates(self, simple_schema, simple_workload):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        assert Index("items", ("i_order",)) in candidates

    def test_covering_candidates_cover_output_columns(self, simple_schema,
                                                      simple_workload):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        covering = [index for index in candidates if index.include_columns]
        assert covering, "expected at least one covering candidate"

    def test_update_statements_contribute_shell_candidates(self, simple_schema):
        update = UpdateQuery(
            table="orders",
            set_columns=(ColumnRef("orders", "o_status"),),
            predicates=(),
            name="u#1",
        )
        assert update.kind is StatementKind.UPDATE
        generator = CandidateGenerator(simple_schema)
        # An update without predicates yields no sargable candidates.
        assert generator.candidates_for_query(update) == ()

    def test_per_query_limit(self, simple_schema, simple_workload):
        limited = CandidateGenerator(simple_schema, per_query_limit=2)
        for statement in simple_workload:
            assert len(limited.candidates_for_query(statement.query)) <= 2

    def test_disabling_features_reduces_candidates(self, simple_schema,
                                                   simple_workload):
        full = CandidateGenerator(simple_schema).generate(simple_workload)
        minimal = CandidateGenerator(simple_schema, multi_column=False,
                                     covering=False, clustered=False
                                     ).generate(simple_workload)
        assert len(minimal) < len(full)
        assert all(len(index.key_columns) == 1 and not index.include_columns
                   for index in minimal)

    def test_dba_indexes_are_added(self, simple_schema, simple_workload):
        dba_index = Index("orders", ("o_total", "o_date"))
        candidates = CandidateGenerator(simple_schema).generate(
            simple_workload, dba_indexes=[dba_index])
        assert dba_index in candidates


class TestCandidateSet:
    def test_add_deduplicates(self, simple_schema):
        candidates = CandidateSet(simple_schema)
        index = Index("orders", ("o_date",))
        assert candidates.add(index)
        assert not candidates.add(Index("orders", ("o_date",)))
        assert len(candidates) == 1

    def test_rejects_unknown_table(self, simple_schema):
        candidates = CandidateSet(simple_schema)
        with pytest.raises(IndexDefinitionError):
            candidates.add(Index("missing", ("x",)))

    def test_size_cache_and_total(self, simple_schema):
        candidates = CandidateSet(simple_schema, [Index("orders", ("o_date",)),
                                                  Index("items", ("i_order",))])
        total = candidates.total_size()
        assert total == pytest.approx(sum(candidates.size_of(i) for i in candidates))

    def test_subset(self, simple_schema):
        a = Index("orders", ("o_date",))
        b = Index("items", ("i_order",))
        candidates = CandidateSet(simple_schema, [a, b])
        subset = candidates.subset([a])
        assert len(subset) == 1
        assert a in subset and b not in subset
