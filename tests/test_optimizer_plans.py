"""Tests for access paths, plan construction and the what-if optimizer."""

from __future__ import annotations

import pytest

from repro.indexes.configuration import AtomicConfiguration, Configuration
from repro.indexes.index import Index
from repro.optimizer.plan import (
    AccessPath,
    AggregateNode,
    JoinAlgorithm,
    JoinNode,
    Plan,
    ScanNode,
    SortNode,
)
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.predicates import ColumnRef, ComparisonOperator, JoinPredicate, SimplePredicate
from repro.workload.query import Aggregate, AggregateFunction, SelectQuery, UpdateQuery


@pytest.fixture
def optimizer(simple_schema) -> WhatIfOptimizer:
    return WhatIfOptimizer(simple_schema)


def _point_query(selectivity=None):
    return SelectQuery(
        tables=("orders",),
        projections=(ColumnRef("orders", "o_total"),),
        predicates=(SimplePredicate(ColumnRef("orders", "o_customer"),
                                    ComparisonOperator.EQ, 42,
                                    selectivity_hint=selectivity),),
        name=f"point_sel_{selectivity}",
    )


def _join_query():
    return SelectQuery(
        tables=("orders", "items"),
        predicates=(SimplePredicate(ColumnRef("items", "i_shipdate"),
                                    ComparisonOperator.BETWEEN, (100, 140),
                                    selectivity_hint=0.02),),
        joins=(JoinPredicate(ColumnRef("orders", "o_id"),
                             ColumnRef("items", "i_order")),),
        group_by=(ColumnRef("orders", "o_date"),),
        aggregates=(Aggregate(AggregateFunction.COUNT, None),),
        name="join_query",
    )


class TestAccessPaths:
    def test_seq_scan_has_table_cost_and_pk_order(self, optimizer, simple_schema):
        query = _point_query(0.001)
        scan = optimizer.access_scan(query, "orders", None)
        assert scan.access_path is AccessPath.SEQ_SCAN
        assert scan.cost > 0
        assert scan.output_order == ColumnRef("orders", "o_id")

    def test_selective_index_scan_beats_seq_scan(self, optimizer):
        query = _point_query(0.0005)
        index = Index("orders", ("o_customer",))
        index_scan = optimizer.access_scan(query, "orders", index)
        seq_scan = optimizer.access_scan(query, "orders", None)
        assert index_scan.cost < seq_scan.cost
        assert index_scan.access_path is AccessPath.INDEX_SCAN

    def test_unselective_index_scan_loses_to_seq_scan(self, optimizer):
        query = _point_query(0.9)
        index = Index("orders", ("o_customer",))
        index_scan = optimizer.access_scan(query, "orders", index)
        seq_scan = optimizer.access_scan(query, "orders", None)
        assert index_scan.cost > seq_scan.cost

    def test_covering_index_becomes_index_only_scan(self, optimizer):
        query = _point_query(0.01)
        covering = Index("orders", ("o_customer",), include_columns=("o_total",))
        plain = Index("orders", ("o_customer",))
        covering_scan = optimizer.access_scan(query, "orders", covering)
        plain_scan = optimizer.access_scan(query, "orders", plain)
        assert covering_scan.access_path is AccessPath.INDEX_ONLY_SCAN
        assert covering_scan.cost < plain_scan.cost

    def test_index_scan_output_order_is_leading_column(self, optimizer):
        query = _join_query()
        index = Index("items", ("i_shipdate", "i_order"))
        scan = optimizer.access_scan(query, "items", index)
        assert scan.output_order == ColumnRef("items", "i_shipdate")


class TestPlanStructure:
    def test_plan_walk_and_internal_cost(self):
        leaf_a = ScanNode(cost=10.0, rows=100, table="orders")
        leaf_b = ScanNode(cost=20.0, rows=200, table="items")
        join = JoinNode(cost=5.0, rows=50, algorithm=JoinAlgorithm.HASH_JOIN,
                        left=leaf_a, right=leaf_b)
        aggregate = AggregateNode(cost=2.0, rows=10, child=join)
        plan = Plan(aggregate, query_name="q")
        assert plan.total_cost == pytest.approx(37.0)
        assert plan.internal_cost == pytest.approx(7.0)
        assert {node.table for node in plan.scan_nodes()} == {"orders", "items"}
        assert plan.access_cost("orders") == pytest.approx(10.0)
        assert plan.access_cost("missing") == 0.0
        assert len(list(aggregate.walk())) == 4

    def test_explain_renders_every_node(self):
        leaf = ScanNode(cost=1.0, rows=10, table="orders")
        sort = SortNode(cost=2.0, rows=10, child=leaf,
                        sort_column=ColumnRef("orders", "o_date"))
        text = Plan(sort, query_name="q").explain()
        assert "Sort" in text and "SeqScan" in text

    def test_indexes_used(self):
        index = Index("orders", ("o_date",))
        leaf = ScanNode(cost=1.0, rows=10, table="orders", index=index,
                        access_path=AccessPath.INDEX_SCAN)
        assert Plan(leaf).indexes_used() == (index,)


class TestWhatIfOptimizer:
    def test_empty_configuration_costs_are_finite(self, optimizer, simple_workload):
        for statement in simple_workload:
            cost = optimizer.statement_cost(statement.query, Configuration())
            assert cost > 0 and cost != float("inf")

    def test_optimize_atomic_counts_whatif_calls_and_caches(self, optimizer):
        query = _point_query(0.001)
        atomic = AtomicConfiguration({"orders": None})
        before = optimizer.whatif_calls
        optimizer.optimize_atomic(query, atomic)
        assert optimizer.whatif_calls == before + 1
        optimizer.optimize_atomic(query, atomic)
        assert optimizer.whatif_calls == before + 1  # cache hit

    def test_good_index_reduces_query_cost(self, optimizer):
        query = _point_query(0.0005)
        index = Index("orders", ("o_customer",), include_columns=("o_total",))
        without = optimizer.cost(query, Configuration())
        with_index = optimizer.cost(query, Configuration([index]))
        assert with_index < without

    def test_cost_is_monotone_in_configuration(self, optimizer):
        """Adding indexes can never make a SELECT more expensive."""
        query = _join_query()
        indexes = [Index("items", ("i_shipdate",)),
                   Index("items", ("i_order",)),
                   Index("orders", ("o_id",), include_columns=("o_date",))]
        previous = optimizer.cost(query, Configuration())
        for count in range(1, len(indexes) + 1):
            current = optimizer.cost(query, Configuration(indexes[:count]))
            assert current <= previous + 1e-6
            previous = current

    def test_irrelevant_index_does_not_help(self, optimizer):
        query = _point_query(0.001)
        irrelevant = Index("items", ("i_product",))
        assert optimizer.cost(query, Configuration([irrelevant])) == pytest.approx(
            optimizer.cost(query, Configuration()))

    def test_join_query_plan_uses_both_tables(self, optimizer):
        plan = optimizer.optimize(_join_query(), Configuration())
        assert {node.table for node in plan.scan_nodes()} == {"orders", "items"}
        assert plan.total_cost > 0

    def test_update_statement_cost_includes_maintenance(self, optimizer,
                                                        simple_workload):
        update = simple_workload.statements[3].query
        assert isinstance(update, UpdateQuery)
        affected = Index("orders", ("o_status", "o_date"))
        unaffected = Index("orders", ("o_customer",))
        base = optimizer.statement_cost(update, Configuration())
        with_affected = optimizer.statement_cost(update, Configuration([affected]))
        with_unaffected = optimizer.statement_cost(update, Configuration([unaffected]))
        assert with_affected > base
        assert optimizer.update_maintenance_cost(unaffected, update) == 0.0
        assert with_unaffected <= with_affected

    def test_update_maintenance_only_for_same_table(self, optimizer,
                                                    simple_workload):
        update = simple_workload.statements[3].query
        other_table = Index("items", ("i_shipdate",))
        assert optimizer.update_maintenance_cost(other_table, update) == 0.0

    def test_update_fraction_overrides_predicates(self, optimizer):
        explicit = UpdateQuery(table="orders",
                               set_columns=(ColumnRef("orders", "o_status"),),
                               update_fraction=0.5, name="big_update")
        implicit = UpdateQuery(table="orders",
                               set_columns=(ColumnRef("orders", "o_status"),),
                               predicates=(SimplePredicate(
                                   ColumnRef("orders", "o_date"),
                                   ComparisonOperator.EQ, 3,
                                   selectivity_hint=0.001),),
                               name="small_update")
        assert optimizer.base_update_cost(explicit) > optimizer.base_update_cost(implicit)

    def test_plan_exploits_sorted_index_for_group_by(self, optimizer):
        """An index providing the grouping order should remove sort/hash work."""
        query = SelectQuery(
            tables=("items",),
            predicates=(SimplePredicate(ColumnRef("items", "i_shipdate"),
                                        ComparisonOperator.BETWEEN, (0, 2000),
                                        selectivity_hint=0.95),),
            group_by=(ColumnRef("items", "i_product"),),
            aggregates=(Aggregate(AggregateFunction.SUM,
                                  ColumnRef("items", "i_price")),),
            name="groupby_order",
        )
        ordering_index = Index("items", ("i_product",),
                               include_columns=("i_price", "i_shipdate"))
        without = optimizer.cost(query, Configuration())
        with_index = optimizer.cost(query, Configuration([ordering_index]))
        assert with_index < without
