"""Unit and property tests for histograms and column statistics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.statistics import (
    ColumnStatistics,
    Histogram,
    HistogramBucket,
    zipf_frequencies,
)


class TestZipfFrequencies:
    def test_uniform_when_skew_is_zero(self):
        frequencies = zipf_frequencies(4, 0.0)
        assert frequencies == pytest.approx([0.25, 0.25, 0.25, 0.25])

    def test_sums_to_one(self):
        assert sum(zipf_frequencies(10, 1.5)) == pytest.approx(1.0)

    def test_monotonically_decreasing_under_skew(self):
        frequencies = zipf_frequencies(8, 2.0)
        assert all(a >= b for a, b in zip(frequencies, frequencies[1:]))

    def test_higher_skew_concentrates_more_mass(self):
        mild = zipf_frequencies(16, 0.5)[0]
        heavy = zipf_frequencies(16, 2.0)[0]
        assert heavy > mild

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            zipf_frequencies(0, 1.0)
        with pytest.raises(ValueError):
            zipf_frequencies(4, -1.0)

    @given(n=st.integers(min_value=1, max_value=200),
           z=st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_property_valid_distribution(self, n, z):
        frequencies = zipf_frequencies(n, z)
        assert len(frequencies) == n
        assert sum(frequencies) == pytest.approx(1.0)
        assert all(f >= 0 for f in frequencies)


class TestHistogramBucket:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            HistogramBucket(low=10, high=5, frequency=0.1, distinct_values=1)

    def test_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            HistogramBucket(low=0, high=1, frequency=-0.1, distinct_values=1)

    def test_width(self):
        bucket = HistogramBucket(low=2.0, high=6.0, frequency=0.5, distinct_values=4)
        assert bucket.width == pytest.approx(4.0)


class TestHistogram:
    def test_requires_buckets(self):
        with pytest.raises(ValueError):
            Histogram([])

    def test_normalises_frequencies(self):
        histogram = Histogram([
            HistogramBucket(0, 1, 2.0, 1),
            HistogramBucket(1, 2, 2.0, 1),
        ])
        assert histogram.selectivity_range(None, None) == pytest.approx(1.0)

    def test_full_range_selectivity_is_one(self):
        histogram = Histogram.from_domain(0, 100, 100, skew=0.0)
        assert histogram.selectivity_range(0, 100) == pytest.approx(1.0, abs=1e-6)

    def test_half_range_uniform(self):
        histogram = Histogram.from_domain(0, 100, 100, skew=0.0, num_buckets=10)
        assert histogram.selectivity_range(0, 50) == pytest.approx(0.5, abs=0.05)

    def test_out_of_domain_equality_is_zero(self):
        histogram = Histogram.from_domain(0, 100, 100)
        assert histogram.selectivity_eq(1_000) == 0.0

    def test_equality_selectivity_positive_inside_domain(self):
        histogram = Histogram.from_domain(0, 100, 100)
        assert histogram.selectivity_eq(50) > 0.0

    def test_empty_range_is_zero(self):
        histogram = Histogram.from_domain(0, 100, 100)
        assert histogram.selectivity_range(60, 40) == 0.0

    def test_skew_increases_max_bucket_frequency(self):
        uniform = Histogram.from_domain(0, 100, 100, skew=0.0, num_buckets=10)
        skewed = Histogram.from_domain(0, 100, 100, skew=2.0, num_buckets=10)
        assert skewed.max_bucket_frequency > uniform.max_bucket_frequency

    def test_skewed_histogram_front_loaded(self):
        skewed = Histogram.from_domain(0, 100, 100, skew=2.0, num_buckets=10)
        front = skewed.selectivity_range(0, 10)
        back = skewed.selectivity_range(90, 100)
        assert front > back

    @given(low=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
           span=st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
           distinct=st.integers(min_value=1, max_value=10_000),
           skew=st.floats(min_value=0.0, max_value=2.5, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_property_range_selectivity_bounded(self, low, span, distinct, skew):
        histogram = Histogram.from_domain(low, low + span, distinct, skew=skew)
        for fraction in (0.0, 0.3, 0.7, 1.0):
            selectivity = histogram.selectivity_range(low, low + span * fraction)
            assert 0.0 <= selectivity <= 1.0

    @given(split=st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_property_range_monotone_in_upper_bound(self, split):
        histogram = Histogram.from_domain(0, 1000, 500, skew=1.0)
        narrow = histogram.selectivity_range(0, 1000 * split * 0.5)
        wide = histogram.selectivity_range(0, 1000 * split)
        assert wide >= narrow - 1e-9


class TestColumnStatistics:
    def test_rejects_non_positive_ndv(self):
        with pytest.raises(ValueError):
            ColumnStatistics(distinct_values=0)

    def test_rejects_bad_null_fraction(self):
        with pytest.raises(ValueError):
            ColumnStatistics(distinct_values=10, null_fraction=1.5)

    def test_rejects_bad_correlation(self):
        with pytest.raises(ValueError):
            ColumnStatistics(distinct_values=10, correlation=2.0)

    def test_equality_selectivity_default_uses_ndv(self):
        stats = ColumnStatistics(distinct_values=50)
        assert stats.equality_selectivity() == pytest.approx(1.0 / 50)

    def test_key_column_statistics(self):
        stats = ColumnStatistics.for_key_column(10_000)
        assert stats.distinct_values == pytest.approx(10_000)
        assert stats.correlation == pytest.approx(1.0)
        assert stats.equality_selectivity(5_000) <= 1.0 / 1_000

    def test_categorical_statistics(self):
        stats = ColumnStatistics.for_categorical(5)
        assert stats.distinct_values == 5
        assert stats.equality_selectivity(2) == pytest.approx(0.2, rel=0.5)

    def test_numeric_range_statistics(self):
        stats = ColumnStatistics.for_numeric_range(0, 100, 200, skew=0.0)
        assert stats.range_selectivity(0, 100) == pytest.approx(1.0, abs=1e-6)
        assert 0.0 < stats.range_selectivity(0, 25) < 0.5

    def test_skew_factor_grows_with_skew(self):
        uniform = ColumnStatistics.for_numeric_range(0, 100, 100, skew=0.0)
        skewed = ColumnStatistics.for_numeric_range(0, 100, 100, skew=2.0)
        assert skewed.skew_factor() > uniform.skew_factor()
        assert uniform.skew_factor() == pytest.approx(1.0, rel=0.05)

    def test_range_selectivity_without_histogram(self):
        stats = ColumnStatistics(distinct_values=10, histogram=None)
        assert stats.range_selectivity(None, None) == 1.0
        assert 0.0 < stats.range_selectivity(0, 5) <= 1.0
