"""End-to-end integration tests on the TPC-H catalog and generated workloads.

These tests exercise the complete pipeline the paper describes (Figure 2):
CGen -> INUM -> BIPGen -> Solver, plus the baselines and the evaluation
metrics, on the same (scaled-down) inputs the benchmarks use.
"""

from __future__ import annotations

import pytest

from repro.api import make_advisor
from repro.bench.harness import compare_advisors
from repro.bench.metrics import baseline_configuration, perf_improvement
from repro.core.constraints import ClusteredIndexConstraint, StorageBudgetConstraint
from repro.indexes.candidate_generation import CandidateGenerator
from repro.inum.cache import InumCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.generators import (
    generate_heterogeneous_workload,
    generate_homogeneous_workload,
)


@pytest.fixture(scope="module")
def tpch_module():
    from repro.catalog.tpch import tpch_schema

    return tpch_schema(scale_factor=0.005)


@pytest.fixture(scope="module")
def hom_workload():
    return generate_homogeneous_workload(12, seed=7)


@pytest.fixture(scope="module")
def het_workload():
    return generate_heterogeneous_workload(12, seed=7)


class TestPipelineOnTpch:
    def test_candidate_generation_scales_with_workload(self, tpch_module):
        generator = CandidateGenerator(tpch_module)
        small = generator.generate(generate_homogeneous_workload(5, seed=1))
        large = generator.generate(generate_homogeneous_workload(30, seed=1))
        assert len(large) >= len(small)
        assert len(large) > 50

    def test_inum_accuracy_on_tpch_queries(self, tpch_module, hom_workload):
        optimizer = WhatIfOptimizer(tpch_module)
        inum = InumCache(optimizer)
        candidates = CandidateGenerator(tpch_module).generate(hom_workload)
        configuration = baseline_configuration(tpch_module).union(
            list(candidates)[:10])
        for statement in hom_workload:
            inum_cost = inum.statement_cost(statement.query, configuration)
            true_cost = optimizer.statement_cost(statement.query, configuration)
            assert inum_cost == pytest.approx(true_cost, rel=0.5)

    def test_cophy_improves_homogeneous_workload(self, tpch_module, hom_workload):
        advisor = make_advisor("cophy", tpch_module)
        budget = StorageBudgetConstraint.from_fraction_of_data(tpch_module, 1.0)
        recommendation = advisor.tune(hom_workload, constraints=[budget])
        evaluation = WhatIfOptimizer(tpch_module)
        perf = perf_improvement(evaluation, hom_workload,
                                recommendation.configuration)
        assert perf > 0.15
        assert recommendation.candidate_count > 50

    def test_cophy_improves_heterogeneous_workload(self, tpch_module, het_workload):
        # A 12-statement heterogeneous sample is dominated by a few statements
        # whose plans indexes barely improve, so the bar is lower than for the
        # homogeneous workload; the figure-level benchmarks use larger
        # workloads where the improvement is substantial.
        advisor = make_advisor("cophy", tpch_module)
        budget = StorageBudgetConstraint.from_fraction_of_data(tpch_module, 1.0)
        recommendation = advisor.tune(het_workload, constraints=[budget])
        evaluation = WhatIfOptimizer(tpch_module)
        assert perf_improvement(evaluation, het_workload,
                                recommendation.configuration) > 0.02

    def test_constraints_hold_on_tpch_recommendation(self, tpch_module,
                                                     hom_workload):
        advisor = make_advisor("cophy", tpch_module)
        budget = StorageBudgetConstraint.from_fraction_of_data(tpch_module, 0.5)
        recommendation = advisor.tune(
            hom_workload, constraints=[budget, ClusteredIndexConstraint()])
        candidates = recommendation.extras["bip"].candidates
        used = sum(candidates.size_of(index)
                   for index in recommendation.configuration)
        assert used <= budget.budget_bytes * (1 + 1e-9)
        for table_name in tpch_module.table_names:
            clustered = recommendation.configuration.clustered_indexes_on(table_name)
            assert len(clustered) <= 1

    def test_cophy_beats_or_matches_tool_b_and_is_faster_than_ilp(self, tpch_module,
                                                                  hom_workload):
        evaluation = WhatIfOptimizer(tpch_module)
        budget = StorageBudgetConstraint.from_fraction_of_data(tpch_module, 1.0)
        result = compare_advisors(
            [make_advisor("cophy", tpch_module), make_advisor("ilp", tpch_module),
             make_advisor("dta", tpch_module)],
            evaluation, hom_workload, [budget], name="integration")
        cophy = result.run_for("cophy")
        ilp = result.run_for("ilp")
        tool_b = result.run_for("tool-b")
        assert cophy.perf >= tool_b.perf - 0.05
        assert cophy.perf == pytest.approx(ilp.perf, abs=0.1)
        # With vectorized INUM costing both advisors finish in well under a
        # second at this reduced scale and the INUM phase they share dominates
        # the total, so a strict wall-clock inequality would be timing noise;
        # CoPhy's growing advantage over ILP is asserted at realistic
        # candidate-set sizes in benchmarks/test_fig5_ilp_candidates.py.
        assert cophy.wall_seconds < ilp.wall_seconds * 2.0

    def test_skewed_catalog_still_tunes(self, hom_workload):
        from repro.catalog.tpch import tpch_schema

        skewed = tpch_schema(scale_factor=0.005, skew=2.0)
        advisor = make_advisor("cophy", skewed)
        budget = StorageBudgetConstraint.from_fraction_of_data(skewed, 1.0)
        recommendation = advisor.tune(hom_workload, constraints=[budget])
        evaluation = WhatIfOptimizer(skewed)
        assert perf_improvement(evaluation, hom_workload,
                                recommendation.configuration) > 0.1

    def test_interactive_retune_faster_than_initial_on_tpch(self, tpch_module):
        workload = generate_homogeneous_workload(15, seed=9)
        advisor = make_advisor("cophy", tpch_module)
        all_candidates = list(advisor.generate_candidates(workload))
        split = int(len(all_candidates) * 0.7)
        initial_set = advisor.generate_candidates(workload).subset(
            all_candidates[:split])
        session = advisor.create_session(
            workload,
            constraints=[StorageBudgetConstraint.from_fraction_of_data(
                tpch_module, 1.0)],
            candidates=initial_set)
        initial = session.recommend()
        retuned = session.add_candidates(all_candidates[split:])
        assert retuned.timings["total"] < initial.timings["total"]
