"""Tests for the LP relaxation backend, the MILP backend and branch and bound."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.branch_and_bound import BranchAndBoundSolver
from repro.lp.expression import LinearExpression
from repro.lp.highs_backend import LinearRelaxationBackend, MilpBackend
from repro.lp.model import Model, ObjectiveSense
from repro.lp.solution import Solution, SolutionStatus
from repro.lp.variable import VariableKind


def build_knapsack(values, weights, capacity, maximize=True) -> tuple[Model, list]:
    """A small knapsack model used throughout the solver tests."""
    model = Model("knapsack",
                  sense=ObjectiveSense.MAXIMIZE if maximize else ObjectiveSense.MINIMIZE)
    variables = [model.add_binary(f"x{i}") for i in range(len(values))]
    model.set_objective(LinearExpression.sum_of(variables, values))
    model.add_constraint(
        LinearExpression.sum_of(variables, weights) <= capacity, name="capacity")
    return model, variables


def brute_force_knapsack(values, weights, capacity) -> float:
    best = 0.0
    n = len(values)
    for mask in range(1 << n):
        weight = sum(weights[i] for i in range(n) if mask >> i & 1)
        if weight <= capacity + 1e-9:
            best = max(best, sum(values[i] for i in range(n) if mask >> i & 1))
    return best


class TestLinearRelaxationBackend:
    def test_solves_simple_lp(self):
        model = Model("lp")
        x = model.add_continuous("x", 0.0, 10.0)
        y = model.add_continuous("y", 0.0, 10.0)
        model.add_constraint((x + y) <= 4)
        model.set_objective(-1 * x - 2 * y)  # minimise => push x+y to the bound
        solution = LinearRelaxationBackend().solve(model)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.value(x) + solution.value(y) == pytest.approx(4.0, abs=1e-6)
        assert solution.objective == pytest.approx(-8.0, abs=1e-6)

    def test_detects_infeasibility(self):
        model = Model("lp")
        x = model.add_continuous("x", 0.0, 1.0)
        model.add_constraint((1 * x) >= 2)
        model.set_objective(1 * x)
        solution = LinearRelaxationBackend().solve(model)
        assert solution.status is SolutionStatus.INFEASIBLE

    def test_relaxation_of_binary_model_can_be_fractional(self):
        model, variables = build_knapsack([10, 10], [1, 1], 1.0)
        solution = LinearRelaxationBackend().solve(model)
        total = sum(solution.value(v) for v in variables)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_bounds_override(self):
        model = Model("lp")
        x = model.add_continuous("x", 0.0, 10.0)
        model.set_objective(-1 * x)
        matrices = model.to_matrices()
        tightened = matrices["bounds"].copy()
        tightened[0, 1] = 2.0
        solution = LinearRelaxationBackend().solve(model, bounds_override=tightened)
        assert solution.value(x) == pytest.approx(2.0, abs=1e-6)


class TestMilpBackend:
    def test_solves_knapsack_to_optimality(self):
        values = [6, 5, 4, 3]
        weights = [4, 3, 2, 1]
        model, variables = build_knapsack(values, weights, 6)
        solution = MilpBackend().solve(model)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(
            brute_force_knapsack(values, weights, 6))
        assert all(solution.value(v) in (0.0, 1.0) for v in variables)

    def test_detects_infeasibility(self):
        model = Model("m")
        x = model.add_binary("x")
        model.add_constraint((1 * x) >= 2)
        model.set_objective(1 * x)
        solution = MilpBackend().solve(model)
        assert solution.status is SolutionStatus.INFEASIBLE

    def test_gap_tolerance_accepted(self):
        values = list(range(1, 13))
        weights = [v + 0.5 for v in values]
        model, _ = build_knapsack(values, weights, 20)
        solution = MilpBackend(gap_tolerance=0.2).solve(model)
        assert solution.is_feasible
        assert solution.objective >= 0.75 * brute_force_knapsack(values, weights, 20)


class TestBranchAndBound:
    def test_matches_brute_force_on_knapsacks(self):
        values = [7, 2, 9, 5, 8]
        weights = [3, 1, 5, 2, 4]
        model, _ = build_knapsack(values, weights, 8)
        solution = BranchAndBoundSolver().solve(model)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(
            brute_force_knapsack(values, weights, 8))

    def test_minimisation_with_covering_constraint(self):
        model = Model("cover")
        x = [model.add_binary(f"x{i}") for i in range(4)]
        costs = [3.0, 2.0, 4.0, 1.0]
        model.set_objective(LinearExpression.sum_of(x, costs))
        model.add_constraint((x[0] + x[1]) >= 1)
        model.add_constraint((x[1] + x[2]) >= 1)
        model.add_constraint((x[2] + x[3]) >= 1)
        solution = BranchAndBoundSolver().solve(model)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(3.0)  # pick x1 and x3

    def test_detects_infeasibility(self):
        model = Model("m")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add_constraint((x + y) >= 3)
        model.set_objective(x + y)
        solver = BranchAndBoundSolver()
        assert not solver.is_feasible(model)
        assert solver.solve(model).status is SolutionStatus.INFEASIBLE

    def test_feasibility_probe_true_for_feasible_model(self):
        model, _ = build_knapsack([1, 2], [1, 1], 2)
        assert BranchAndBoundSolver().is_feasible(model)

    def test_gap_trace_is_monotone_and_final_gap_reported(self):
        values = [4, 7, 1, 9, 6, 3, 8]
        weights = [2, 5, 1, 6, 4, 2, 5]
        model, _ = build_knapsack(values, weights, 12)
        solution = BranchAndBoundSolver().solve(model)
        assert solution.gap_trace, "expected at least one gap trace point"
        gaps = [point.gap for point in solution.gap_trace]
        assert all(b <= a + 1e-9 for a, b in zip(gaps, gaps[1:]))
        assert solution.gap <= 1e-6

    def test_gap_tolerance_allows_early_stop(self):
        values = [4, 7, 1, 9, 6, 3, 8, 5, 2]
        weights = [2, 5, 1, 6, 4, 2, 5, 3, 1]
        exact = BranchAndBoundSolver().solve(build_knapsack(values, weights, 15)[0])
        loose = BranchAndBoundSolver(gap_tolerance=0.25).solve(
            build_knapsack(values, weights, 15)[0])
        assert loose.is_feasible
        assert loose.nodes_explored <= exact.nodes_explored
        # Within the advertised bound of the optimum.
        assert loose.objective >= (1 - 0.25) * exact.objective

    def test_warm_start_is_used_as_incumbent(self):
        values = [5, 4, 3, 2]
        weights = [4, 3, 2, 1]
        model, variables = build_knapsack(values, weights, 5)
        warm = {variables[0]: 1.0, variables[3]: 1.0,
                variables[1]: 0.0, variables[2]: 0.0}
        solution = BranchAndBoundSolver().solve(model, warm_start=warm)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(
            brute_force_knapsack(values, weights, 5))

    def test_infeasible_warm_start_is_ignored(self):
        values = [5, 4]
        weights = [4, 3]
        model, variables = build_knapsack(values, weights, 5)
        bad_warm = {variables[0]: 1.0, variables[1]: 1.0}
        solution = BranchAndBoundSolver().solve(model, warm_start=bad_warm)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(
            brute_force_knapsack(values, weights, 5))

    def test_node_limit_returns_feasible_solution(self):
        values = list(range(1, 16))
        weights = [(v * 7 % 11) + 1 for v in values]
        model, _ = build_knapsack(values, weights, 25)
        solver = BranchAndBoundSolver(node_limit=3)
        solution = solver.solve(model)
        assert solution.nodes_explored <= 3
        assert solution.is_feasible or solution.status is SolutionStatus.ERROR

    def test_progress_callback_invoked(self):
        observed = []
        values = [4, 7, 1, 9]
        weights = [2, 5, 1, 6]
        model, _ = build_knapsack(values, weights, 8)
        solver = BranchAndBoundSolver(progress_callback=observed.append)
        solver.solve(model)
        assert observed
        assert all(point.elapsed_seconds >= 0 for point in observed)

    def test_most_fractional_never_reads_continuous_variables(self):
        """Branching must only examine the precomputed binary variables."""
        model = Model("mixed")
        binaries = [model.add_binary(f"b{i}") for i in range(3)]
        continuous = [model.add_continuous(f"c{i}", 0.0, 10.0) for i in range(50)]

        class RecordingValues(dict):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.read_keys = []

            def get(self, key, default=None):
                self.read_keys.append(key)
                return super().get(key, default)

        values = RecordingValues({binaries[0]: 0.4, binaries[1]: 1.0,
                                  binaries[2]: 0.0})
        for variable in continuous:
            values[variable] = 3.7  # would look "fractional" if ever scanned
        solution = Solution(status=SolutionStatus.OPTIMAL, objective=0.0,
                            values=values)
        binary_variables = tuple(v for v in model.variables
                                 if v.kind is VariableKind.BINARY)
        chosen = BranchAndBoundSolver._most_fractional(solution, binary_variables)
        assert chosen == binaries[0].index
        assert set(values.read_keys) <= set(binaries)

    def test_most_fractional_vectorized_matches_dict_scan(self):
        """The vector path must agree with the scalar scan, ties included."""
        model = Model("mixed")
        binaries = [model.add_binary(f"b{i}") for i in range(4)]
        model.add_continuous("c0", 0.0, 10.0)
        binary_variables = tuple(v for v in model.variables
                                 if v.kind is VariableKind.BINARY)
        for assignment in ([0.4, 1.0, 0.0, 0.2], [0.3, 0.7, 0.7, 0.0],
                           [0.0, 1.0, 0.0, 1.0], [0.5, 0.5, 0.5, 0.5]):
            values = {variable: value
                      for variable, value in zip(binaries, assignment)}
            vector = np.zeros(len(model.variables))
            for variable, value in values.items():
                vector[variable.index] = value
            scalar = BranchAndBoundSolver._most_fractional(
                Solution(status=SolutionStatus.OPTIMAL, values=values),
                binary_variables)
            vectorized = BranchAndBoundSolver._most_fractional(
                Solution(status=SolutionStatus.OPTIMAL, values=values,
                         vector=vector),
                binary_variables)
            assert scalar == vectorized

    def test_rounding_heuristic_works_on_solution_vector(self):
        """Rounding must accept a feasible rounding and reject an infeasible one."""
        model, variables = build_knapsack([10, 4], [3, 1], 3.0)
        matrices = model.to_matrices()
        binary_mask = matrices["integrality"].astype(bool)
        relaxed = LinearRelaxationBackend().solve(model)
        assert relaxed.vector is not None
        rounded = BranchAndBoundSolver._rounding_heuristic(
            model, relaxed, matrices, binary_mask, sign=-1.0)
        if rounded is not None:
            vector, objective = rounded
            assignment = {variable: float(vector[variable.index])
                          for variable in model.variables}
            assert model.is_feasible_assignment(assignment)
            assert objective == pytest.approx(
                -model.objective_value(assignment))
        # An LP point whose rounding violates the capacity must be rejected.
        infeasible = Solution(status=SolutionStatus.OPTIMAL,
                              values={variables[0]: 0.9, variables[1]: 0.9},
                              vector=np.array([0.9, 0.9]))
        assert BranchAndBoundSolver._rounding_heuristic(
            model, infeasible, matrices, binary_mask, sign=-1.0) is None

    def test_backends_expose_solution_vector(self):
        model, variables = build_knapsack([6, 5, 4], [4, 3, 2], 6)
        relaxed = LinearRelaxationBackend().solve(model)
        assert relaxed.vector is not None
        assert relaxed.vector.shape == (len(model.variables),)
        integral = MilpBackend().solve(model)
        assert integral.vector is not None
        for variable in variables:
            assert integral.value(variable) == float(
                integral.vector[variable.index])

    def test_pruned_root_closes_best_bound(self):
        """Pruning the heap minimum must close the bound, not leave it stale.

        With an LP-integral model and an optimal warm start, the root node's
        bound cannot beat the incumbent: the solver must prove optimality by
        pruning, without exploring a single node.
        """
        model = Model("lp-integral")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.set_objective((1.0 * x) + (1.0 * y))
        model.add_constraint((x + y) >= 1)
        solution = BranchAndBoundSolver().solve(model, warm_start={x: 1.0, y: 0.0})
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(1.0)
        assert solution.best_bound == pytest.approx(1.0)
        assert solution.gap == pytest.approx(0.0)
        assert solution.nodes_explored == 0
        gaps = [point.gap for point in solution.gap_trace]
        assert all(b <= a + 1e-9 for a, b in zip(gaps, gaps[1:]))

    def test_gap_trace_non_increasing_with_warm_start(self):
        values = [4, 7, 1, 9, 6, 3, 8, 5, 2]
        weights = [2, 5, 1, 6, 4, 2, 5, 3, 1]
        model, variables = build_knapsack(values, weights, 15)
        warm = {variable: 0.0 for variable in variables}
        warm[variables[3]] = 1.0  # weight 6, value 9: feasible but suboptimal
        solution = BranchAndBoundSolver().solve(model, warm_start=warm)
        assert solution.status is SolutionStatus.OPTIMAL
        gaps = [point.gap for point in solution.gap_trace]
        assert gaps, "expected gap trace points"
        assert all(b <= a + 1e-9 for a, b in zip(gaps, gaps[1:]))
        assert solution.objective == pytest.approx(
            brute_force_knapsack(values, weights, 15))

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_matches_brute_force(self, data):
        n = data.draw(st.integers(min_value=2, max_value=7))
        values = data.draw(st.lists(st.integers(1, 30), min_size=n, max_size=n))
        weights = data.draw(st.lists(st.integers(1, 10), min_size=n, max_size=n))
        capacity = data.draw(st.integers(1, 25))
        model, _ = build_knapsack([float(v) for v in values],
                                  [float(w) for w in weights], float(capacity))
        solution = BranchAndBoundSolver().solve(model)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(
            brute_force_knapsack(values, weights, capacity))


def build_covering(maximize: bool = False) -> tuple[Model, list]:
    """The small covering model used by the warm-start sense tests."""
    sense = ObjectiveSense.MAXIMIZE if maximize else ObjectiveSense.MINIMIZE
    model = Model("cover", sense=sense)
    x = [model.add_binary(f"x{i}") for i in range(4)]
    costs = [3.0, 2.0, 4.0, 1.0]
    model.set_objective(LinearExpression.sum_of(x, costs))
    model.add_constraint((x[0] + x[1]) >= 1)
    model.add_constraint((x[1] + x[2]) >= 1)
    model.add_constraint((x[2] + x[3]) >= 1)
    if maximize:
        # Bound the maximisation away from "select everything".
        model.add_constraint(LinearExpression.sum_of(x) <= 2)
    return model, x


class TestWarmStartSeeding:
    """A feasible warm start must seed the incumbent; an infeasible one must
    be silently ignored — in both senses, even under a zero node limit."""

    def test_feasible_warm_start_seeds_incumbent_maximize(self):
        model, variables = build_knapsack([5, 4, 3, 2], [4, 3, 2, 1], 5)
        warm = {variables[1]: 1.0, variables[3]: 1.0}  # value 6, weight 4
        solution = BranchAndBoundSolver(node_limit=0).solve(model, warm_start=warm)
        assert solution.is_feasible
        assert solution.nodes_explored == 0
        assert solution.objective == pytest.approx(6.0)

    def test_feasible_warm_start_seeds_incumbent_minimize(self):
        model, x = build_covering(maximize=False)
        warm = {x[0]: 1.0, x[2]: 1.0}  # cost 7, feasible but suboptimal
        solution = BranchAndBoundSolver(node_limit=0).solve(model, warm_start=warm)
        assert solution.is_feasible
        assert solution.nodes_explored == 0
        assert solution.objective == pytest.approx(7.0)

    def test_infeasible_warm_start_ignored_maximize(self):
        model, variables = build_knapsack([5, 4], [4, 3], 5)
        bad_warm = {variables[0]: 1.0, variables[1]: 1.0}  # over capacity
        limited = BranchAndBoundSolver(node_limit=0).solve(model,
                                                           warm_start=bad_warm)
        assert limited.status is SolutionStatus.ERROR  # nothing was seeded
        full = BranchAndBoundSolver().solve(model, warm_start=bad_warm)
        assert full.status is SolutionStatus.OPTIMAL
        assert full.objective == pytest.approx(5.0)

    def test_infeasible_warm_start_ignored_minimize(self):
        model, x = build_covering(maximize=False)
        bad_warm = {variable: 0.0 for variable in x}  # violates every cover
        limited = BranchAndBoundSolver(node_limit=0).solve(model,
                                                           warm_start=bad_warm)
        assert limited.status is SolutionStatus.ERROR
        full = BranchAndBoundSolver().solve(model, warm_start=bad_warm)
        assert full.status is SolutionStatus.OPTIMAL
        assert full.objective == pytest.approx(3.0)

    def test_feasible_warm_start_maximize_sense_objective_sign(self):
        model, x = build_covering(maximize=True)
        warm = {x[1]: 1.0, x[3]: 1.0}  # value 3, feasible
        solution = BranchAndBoundSolver(node_limit=0).solve(model, warm_start=warm)
        assert solution.is_feasible
        assert solution.objective == pytest.approx(3.0)


class TestSolutionObject:
    def test_selected_and_lookup(self):
        model, variables = build_knapsack([3, 1], [1, 5], 1)
        solution = MilpBackend().solve(model)
        assert variables[0] in solution.selected()
        assert solution.value(variables[1]) == 0.0
        assert solution.assignment_by_name()["x0"] == 1.0

    def test_with_status_copies(self):
        model, _ = build_knapsack([3, 1], [1, 5], 1)
        solution = MilpBackend().solve(model)
        copy = solution.with_status(SolutionStatus.FEASIBLE)
        assert copy.status is SolutionStatus.FEASIBLE
        assert copy.objective == solution.objective
        assert copy.values == solution.values
