"""Edge cases and failure-path tests across modules."""

from __future__ import annotations

import pytest

from repro.api import make_advisor
from repro.catalog.column import Column
from repro.catalog.schema import Schema
from repro.catalog.table import Table
from repro.core.bip_builder import BipBuilder
from repro.core.constraints import StorageBudgetConstraint
from repro.exceptions import (
    CatalogError,
    IndexDefinitionError,
    OptimizerError,
    ReproError,
    SolverError,
    WorkloadError,
)
from repro.indexes.candidate_generation import CandidateSet
from repro.indexes.configuration import AtomicConfiguration, Configuration
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.lp.model import Model
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.predicates import ColumnRef, ComparisonOperator, SimplePredicate
from repro.workload.query import SelectQuery, UpdateQuery
from repro.workload.workload import Workload, WorkloadStatement


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exception_type", [
        CatalogError, WorkloadError, IndexDefinitionError, OptimizerError,
        SolverError,
    ])
    def test_all_errors_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_infeasible_error_carries_constraint_names(self):
        from repro.exceptions import InfeasibleProblemError

        error = InfeasibleProblemError(violated_constraints=("storage", "count"))
        assert error.violated_constraints == ("storage", "count")
        assert isinstance(error, SolverError)


class TestSingleTableTinySchema:
    """The whole pipeline must work on a degenerate one-table, one-query setup."""

    @pytest.fixture
    def tiny_schema(self):
        table = Table("t", (Column("a"), Column("b")), row_count=100,
                      primary_key=("a",))
        return Schema([table], name="tiny")

    @pytest.fixture
    def tiny_workload(self):
        query = SelectQuery(
            tables=("t",),
            projections=(ColumnRef("t", "b"),),
            predicates=(SimplePredicate(ColumnRef("t", "a"),
                                        ComparisonOperator.EQ, 5),),
            name="tiny#1")
        return Workload([WorkloadStatement(query, 1.0)])

    def test_end_to_end_on_tiny_instance(self, tiny_schema, tiny_workload):
        advisor = make_advisor("cophy", tiny_schema, gap_tolerance=0.0)
        recommendation = advisor.tune(tiny_workload)
        assert recommendation.objective_estimate > 0
        # On a 100-row table an extra index may or may not pay off, but the
        # recommendation must only use columns of the schema.
        for index in recommendation.configuration:
            assert index.table == "t"

    def test_optimizer_handles_query_without_predicates(self, tiny_schema):
        optimizer = WhatIfOptimizer(tiny_schema)
        query = SelectQuery(tables=("t",), projections=(ColumnRef("t", "a"),),
                            name="scan_all#1")
        plan = optimizer.optimize(query, Configuration())
        assert plan.total_cost > 0
        assert plan.scan_nodes()[0].rows == pytest.approx(100.0)

    def test_update_without_predicates_touches_whole_table(self, tiny_schema):
        optimizer = WhatIfOptimizer(tiny_schema)
        update = UpdateQuery(table="t", set_columns=(ColumnRef("t", "b"),),
                             name="upd_all#1")
        affected = Index("t", ("b",))
        assert optimizer.update_maintenance_cost(affected, update) > 0
        assert optimizer.base_update_cost(update) > 0


class TestOptimizerErrorPaths:
    def test_atomic_configuration_with_wrong_table_rejected(self, simple_schema,
                                                            simple_workload):
        optimizer = WhatIfOptimizer(simple_schema)
        query = simple_workload.statements[0].query  # references "orders" only
        foreign = Index("items", ("i_order",))
        with pytest.raises(IndexDefinitionError):
            AtomicConfiguration({"orders": foreign})
        # A well-formed atomic configuration for an unreferenced table is ignored.
        atomic = AtomicConfiguration({"orders": None})
        assert optimizer.optimize_atomic(query, atomic).total_cost > 0

    def test_query_over_unknown_table_fails_loudly(self, simple_schema):
        optimizer = WhatIfOptimizer(simple_schema)
        query = SelectQuery(tables=("missing",), name="bad#1")
        with pytest.raises(CatalogError):
            optimizer.cost(query, Configuration())


class TestBipBuilderErrorPaths:
    def test_workload_over_foreign_schema_fails(self, simple_schema):
        optimizer = WhatIfOptimizer(simple_schema)
        inum = InumCache(optimizer)
        builder = BipBuilder(inum)
        foreign_query = SelectQuery(tables=("unknown_table",), name="foreign#1")
        workload = Workload([WorkloadStatement(foreign_query, 1.0)])
        with pytest.raises(CatalogError):
            builder.build(workload, CandidateSet(simple_schema))

    def test_empty_candidate_set_still_solves(self, simple_schema, simple_workload):
        """With no candidates the only choice is the heap access everywhere."""
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        empty = CandidateSet(simple_schema)
        recommendation = advisor.tune(simple_workload, candidates=empty)
        assert len(recommendation.configuration) == 0
        assert recommendation.objective_estimate > 0

    def test_storage_constraint_with_empty_candidates_is_trivially_satisfied(
            self, simple_schema, simple_workload):
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        empty = CandidateSet(simple_schema)
        recommendation = advisor.tune(
            simple_workload, candidates=empty,
            constraints=[StorageBudgetConstraint(0.0)])
        assert len(recommendation.configuration) == 0


class TestModelEdgeCases:
    def test_model_without_constraints_solves(self):
        from repro.lp.highs_backend import MilpBackend

        model = Model("unconstrained")
        x = model.add_binary("x")
        model.set_objective(1 * x)  # minimise => x = 0
        solution = MilpBackend().solve(model)
        assert solution.value(x) == 0.0

    def test_objective_with_constant_only(self):
        from repro.lp.highs_backend import MilpBackend
        from repro.lp.expression import LinearExpression

        model = Model("constant")
        model.add_binary("x")
        model.set_objective(LinearExpression(constant=42.0))
        solution = MilpBackend().solve(model)
        assert solution.objective == pytest.approx(42.0)

    def test_duplicate_variable_names_are_allowed_but_distinct(self):
        model = Model("dup")
        first = model.add_binary("x")
        second = model.add_binary("x")
        assert first is not second
        assert first.index != second.index


class TestWorkloadEdgeCases:
    def test_workload_of_only_updates(self, simple_schema):
        update = UpdateQuery(table="orders",
                             set_columns=(ColumnRef("orders", "o_status"),),
                             predicates=(SimplePredicate(
                                 ColumnRef("orders", "o_date"),
                                 ComparisonOperator.LT, 10,
                                 selectivity_hint=0.01),),
                             name="only_update#1")
        workload = Workload([WorkloadStatement(update, 1.0)])
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        recommendation = advisor.tune(workload)
        # Indexes can only add maintenance cost here, so none should be picked
        # beyond ones that speed up locating the updated rows enough to pay off.
        assert recommendation.objective_estimate > 0

    def test_repeated_identical_statements_accumulate_weight(self, simple_schema,
                                                             simple_workload):
        optimizer = WhatIfOptimizer(simple_schema)
        inum = InumCache(optimizer)
        single = Workload([simple_workload.statements[0]])
        double = Workload([simple_workload.statements[0],
                           simple_workload.statements[0]])
        assert inum.workload_cost(double, Configuration()) == pytest.approx(
            2 * inum.workload_cost(single, Configuration()))
