"""Tests for the workload gamma tensor: stacking, masks, memo, incremental prepare."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import OptimizerError
from repro.indexes.candidate_generation import CandidateGenerator
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.inum.workload_tensor import WorkloadGammaTensor
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.workload import Workload, WorkloadStatement


@pytest.fixture
def optimizer(simple_schema) -> WhatIfOptimizer:
    return WhatIfOptimizer(simple_schema)


@pytest.fixture
def inum(optimizer) -> InumCache:
    return InumCache(optimizer)


def per_query_workload_cost(inum: InumCache, workload: Workload,
                            configuration: Configuration) -> float:
    """The pre-tensor reference: a Python loop over per-query costings."""
    total = 0.0
    for statement in workload:
        total += statement.weight * inum.statement_cost(statement.query,
                                                        configuration)
    return total


class TestTensorCosts:
    def test_bit_identical_to_per_query_path(self, inum, simple_schema,
                                             simple_workload):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        inum.prepare(simple_workload, candidates)
        for count in (0, 1, 3, len(candidates)):
            configuration = Configuration(list(candidates)[:count])
            assert (inum.workload_cost(simple_workload, configuration)
                    == per_query_workload_cost(inum, simple_workload,
                                               configuration))
            costs = inum.statement_costs(simple_workload, configuration)
            for statement, cost in zip(simple_workload, costs):
                assert float(cost) == inum.statement_cost(statement.query,
                                                          configuration)

    def test_single_query_workload(self, inum, simple_workload):
        single = Workload([simple_workload.statements[0]], name="single")
        configuration = Configuration([Index("orders", ("o_customer",))])
        assert (inum.workload_cost(single, configuration)
                == per_query_workload_cost(inum, single, configuration))
        assert inum.workload_tensor(single).query_count == 1

    def test_empty_tensor(self):
        tensor = WorkloadGammaTensor(())
        assert tensor.query_count == 0
        costs = tensor.shell_costs(Configuration())
        assert costs.shape == (0,)
        tensor.ensure_columns((Index("orders", ("o_id",)),))
        assert tensor.candidate_columns == ()

    def test_candidates_intersecting_no_query_table(self, inum, simple_workload):
        """Indexes on tables no statement touches must be inert (masked out)."""
        point_only = Workload([simple_workload.statements[0]], name="orders-only")
        foreign = Configuration([Index("items", ("i_shipdate",)),
                                 Index("items", ("i_order",))])
        empty = Configuration()
        assert (inum.workload_cost(point_only, foreign)
                == inum.workload_cost(point_only, empty))
        # The tensor never grows columns for tables outside the workload.
        tensor = inum.workload_tensor(point_only)
        tensor.ensure_columns(foreign.indexes)
        assert tensor.candidate_columns == ()

    def test_per_query_candidate_masks(self, inum, simple_workload):
        """Candidates relevant to one query must stay infinite for the others."""
        orders_index = Index("orders", ("o_customer",))
        items_index = Index("items", ("i_shipdate",))
        configuration = Configuration([orders_index, items_index])
        inum.prepare(simple_workload, configuration)
        tensor = inum.workload_tensor(simple_workload)
        assert set(tensor.candidate_columns) == {orders_index, items_index}
        costs = tensor.shell_costs(configuration)
        # Position-aligned with the workload; every entry matches the
        # per-query matrix bit for bit (mask correctness).
        for position, statement in enumerate(simple_workload):
            shell = inum._shell(statement.query)
            assert float(costs[position]) == inum.gamma_matrix(shell).cost(
                configuration)

    def test_memo_hits_identity_and_equality(self, inum, simple_workload):
        index = Index("orders", ("o_customer",))
        first = Configuration([index])
        second = Configuration([index])  # equal set, different object
        tensor = inum.workload_tensor(simple_workload)
        costs_first = tensor.shell_costs(first)
        assert tensor.shell_costs(first) is costs_first  # identity-level hit
        assert tensor.shell_costs(second) is costs_first  # equality-level hit
        with pytest.raises(ValueError):
            costs_first[0] = 0.0  # memoized vectors are read-only

    def test_infeasible_query_raises(self, inum, simple_workload):
        inum.prepare(simple_workload)
        tensor = inum.workload_tensor(simple_workload)
        tensor._tensor[0, :, :, 0] = float("inf")  # force query 0 infeasible
        tensor._cost_memo_by_id.clear()
        tensor._cost_memo_by_key.clear()
        with pytest.raises(OptimizerError):
            inum.workload_cost(simple_workload, Configuration())

    def test_update_statements_add_maintenance(self, inum, simple_workload):
        affected = Configuration([Index("orders", ("o_status",))])
        assert (inum.workload_cost(simple_workload, affected)
                == per_query_workload_cost(inum, simple_workload, affected))

    def test_unevenly_preregistered_candidates(self, inum, simple_workload):
        """Regression: an index registered in only ONE query's matrix before
        the tensor is built must still get finite entries for the others.

        This is DtaAdvisor's access pattern — per-query candidate scoring
        registers each query's own candidates into that query's matrix only,
        and the tensor is stacked afterwards."""
        index = Index("orders", ("o_date",))
        point = simple_workload.statements[0].query
        inum.gamma_matrix(point).ensure_columns((index,))  # one matrix only
        configuration = Configuration([index])
        reference = InumCache(WhatIfOptimizer(inum.schema),
                              use_gamma_matrix=False)
        costs = inum.statement_costs(simple_workload, configuration)
        for statement, cost in zip(simple_workload, costs):
            assert float(cost) == reference.statement_cost(statement.query,
                                                           configuration)


class TestPrepareIncremental:
    def test_prepare_is_idempotent(self, inum, simple_schema, simple_workload):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        inum.prepare(simple_workload, candidates)
        builds = inum.template_build_calls
        matrices = {name: id(matrix) for name, matrix in inum._matrices.items()}
        tensor = inum.workload_tensor(simple_workload)
        columns = tensor.shape[3]
        inum.prepare(simple_workload, candidates)
        assert inum.template_build_calls == builds
        assert {name: id(m) for name, m in inum._matrices.items()} == matrices
        assert inum.workload_tensor(simple_workload) is tensor
        assert tensor.shape[3] == columns

    def test_prepare_extends_with_enlarged_candidate_set(
            self, inum, simple_schema, simple_workload):
        """Regression: a second prepare with more candidates must extend the
        existing matrices and tensor columns, not rebuild anything."""
        candidates = list(CandidateGenerator(simple_schema)
                          .generate(simple_workload))
        half = candidates[:len(candidates) // 2]
        inum.prepare(simple_workload, half)
        builds = inum.template_build_calls
        matrices = {name: id(matrix) for name, matrix in inum._matrices.items()}
        tensor = inum.workload_tensor(simple_workload)
        columns_before = tensor.shape[3]

        inum.prepare(simple_workload, candidates)
        assert inum.template_build_calls == builds  # no re-enumeration
        assert {name: id(m) for name, m in inum._matrices.items()} == matrices
        assert inum.workload_tensor(simple_workload) is tensor  # extended in place
        assert tensor.shape[3] > columns_before

        reference = InumCache(WhatIfOptimizer(simple_schema),
                              use_gamma_matrix=False)
        configuration = Configuration(candidates)
        assert (inum.workload_cost(simple_workload, configuration)
                == per_query_workload_cost(reference, simple_workload,
                                           configuration))

    def test_lazy_registration_without_prepare(self, inum, simple_schema,
                                               simple_workload):
        """Costing a configuration with unseen candidates must self-register."""
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        configuration = Configuration(list(candidates))
        reference = InumCache(WhatIfOptimizer(simple_schema),
                              use_gamma_matrix=False)
        assert (inum.workload_cost(simple_workload, configuration)
                == per_query_workload_cost(reference, simple_workload,
                                           configuration))


class TestParallelBuild:
    def test_parallel_build_matches_serial(self, simple_schema, simple_workload):
        candidates = tuple(CandidateGenerator(simple_schema)
                           .generate(simple_workload))
        serial = InumCache(WhatIfOptimizer(simple_schema), build_workers=1)
        parallel = InumCache(WhatIfOptimizer(simple_schema), build_workers=4)
        serial.prepare(simple_workload, candidates)
        parallel.prepare(simple_workload, candidates)
        assert (serial.cached_query_count == parallel.cached_query_count
                == len(simple_workload))
        assert serial.template_build_calls == parallel.template_build_calls
        for statement in simple_workload:
            shell = serial._shell(statement.query)
            serial_templates = serial.build(shell)
            parallel_templates = parallel.build(shell)
            assert ([t.signature() for t in serial_templates]
                    == [t.signature() for t in parallel_templates])
            assert np.array_equal(serial.gamma_matrix(shell).array,
                                  parallel.gamma_matrix(shell).array)
        for count in (0, len(candidates)):
            configuration = Configuration(candidates[:count])
            assert (serial.workload_cost(simple_workload, configuration)
                    == parallel.workload_cost(simple_workload, configuration))

    def test_build_workload_accepts_worker_override(self, inum, simple_workload):
        inum.build_workload(simple_workload, build_workers=2)
        assert inum.cached_query_count == len(simple_workload)

    def test_invalid_build_workers_rejected(self, optimizer):
        with pytest.raises(ValueError):
            InumCache(optimizer, build_workers=0)


class TestTensorViews:
    def test_view_matches_matrix_slot_costs(self, inum, simple_schema,
                                            simple_workload):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        inum.prepare(simple_workload, candidates)
        tensor = inum.workload_tensor(simple_workload)
        for statement in simple_workload:
            shell = inum._shell(statement.query)
            matrix = inum.gamma_matrix(shell)
            view = tensor.view(shell.name)
            accesses = [None, *candidates.for_table(shell.tables[0])]
            for position in range(len(matrix.templates)):
                assert (view.slot_costs(position, shell.tables[0], accesses)
                        == matrix.slot_costs(position, shell.tables[0], accesses))
                for access in accesses:
                    assert (view.value(position, shell.tables[0], access)
                            == matrix.value(position, shell.tables[0], access))

    def test_view_unknown_query_raises(self, inum, simple_workload):
        tensor = inum.workload_tensor(simple_workload)
        with pytest.raises(KeyError):
            tensor.view("no-such-query")
