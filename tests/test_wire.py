"""Tests for the request wire formats: exact round trips, versioning, errors.

The load-bearing guarantee is fingerprint-pinned round-tripping: tuning
``decode_request(encode_request(request))`` must be indistinguishable from
tuning ``request`` — same statement digests, same canonical-workload
fingerprints, same result fingerprints.
"""

from __future__ import annotations

import json

import pytest

from repro.api import CostingSpec, ScaleSpec, Tuner, TuningRequest
from repro.api.tuner import statement_digest, workload_fingerprint
from repro.catalog import tpch_schema
from repro.core.constraints import (
    ClusteredIndexConstraint,
    IndexCountConstraint,
    IndexWidthConstraint,
    QueryCostConstraint,
    QuerySpeedupGenerator,
    SoftConstraint,
    StorageBudgetConstraint,
    UpdateCostConstraint,
)
from repro.indexes.candidate_generation import CandidateSet
from repro.indexes.index import Index
from repro.server.wire import (
    WIRE_VERSION,
    SchemaCache,
    WireFormatError,
    decode_constraint,
    decode_request,
    decode_schema,
    decode_workload,
    encode_constraint,
    encode_request,
    encode_schema,
    encode_workload,
)
from repro.workload import (
    generate_heterogeneous_workload,
    generate_homogeneous_workload,
)


def _json_round_trip(payload):
    """Force the payload through real JSON text, like the HTTP layer does."""
    return json.loads(json.dumps(payload))


class TestSchemaCodec:
    @pytest.mark.parametrize("skew", [0.0, 1.0, 2.0])
    def test_tpch_schema_round_trips_exactly(self, skew):
        schema = tpch_schema(scale_factor=0.005, skew=skew)
        payload = _json_round_trip(encode_schema(schema))
        decoded = decode_schema(payload)
        assert decoded.name == schema.name
        assert decoded.table_names == schema.table_names
        # Exactness to the bit: re-encoding the decoded schema must produce
        # the identical payload (floats round-trip via shortest repr).
        assert encode_schema(decoded) == payload
        assert decoded.total_size_bytes == schema.total_size_bytes

    def test_simple_schema_statistics_round_trip(self, simple_schema):
        payload = _json_round_trip(encode_schema(simple_schema))
        decoded = decode_schema(payload)
        assert encode_schema(decoded) == payload
        table = decoded.table("orders")
        original = simple_schema.table("orders")
        assert table.row_count == original.row_count
        assert table.primary_key == original.primary_key
        stats = table.column_statistics("o_date")
        assert stats.equality_selectivity(100.0) == \
            original.column_statistics("o_date").equality_selectivity(100.0)

    def test_missing_field_is_loud(self):
        with pytest.raises(WireFormatError, match="tables"):
            decode_schema({"name": "broken"})

    def test_unknown_column_type_is_loud(self, simple_schema):
        payload = encode_schema(simple_schema)
        payload["tables"][0]["columns"][0]["type"] = "geometry"
        with pytest.raises(WireFormatError, match="column type"):
            decode_schema(payload)

    def test_unknown_histogram_fields_are_loud(self, simple_schema):
        payload = _json_round_trip(encode_schema(simple_schema))
        table = payload["tables"][0]
        stats = next(entry for entry in table["statistics"].values()
                     if entry["histogram"] is not None)
        stats["histogram"]["bucket_width"] = 5
        with pytest.raises(WireFormatError, match="bucket_width"):
            decode_schema(payload)

    def test_schema_cache_canonicalizes_equal_payloads(self, simple_schema):
        cache = SchemaCache(max_schemas=2)
        payload = _json_round_trip(encode_schema(simple_schema))
        first = cache.resolve(payload)
        second = cache.resolve(_json_round_trip(encode_schema(simple_schema)))
        assert first is second
        assert len(cache) == 1
        # LRU bound: two more distinct schemas evict the oldest entry.
        cache.resolve(encode_schema(tpch_schema(scale_factor=0.005)))
        cache.resolve(encode_schema(tpch_schema(scale_factor=0.004)))
        assert len(cache) == 2
        assert cache.resolve(payload) is not first


class TestWorkloadCodec:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_homogeneous_workloads_round_trip_fingerprint_exact(self, seed):
        workload = generate_homogeneous_workload(25, seed=seed)
        payload = _json_round_trip(encode_workload(workload))
        decoded = decode_workload(payload)
        assert workload_fingerprint(decoded) == workload_fingerprint(workload)
        assert encode_workload(decoded) == payload

    @pytest.mark.parametrize("seed,update_fraction",
                             [(1, 0.1), (11, 0.0), (42, 1.0)])
    def test_heterogeneous_workloads_round_trip_fingerprint_exact(
            self, seed, update_fraction):
        workload = generate_heterogeneous_workload(
            20, seed=seed, update_fraction=update_fraction)
        payload = _json_round_trip(encode_workload(workload))
        decoded = decode_workload(payload)
        assert workload_fingerprint(decoded) == workload_fingerprint(workload)
        assert encode_workload(decoded) == payload

    def test_statement_digests_survive_tuple_operands(self, simple_workload):
        """BETWEEN/IN operands arrive as JSON arrays; the decoder must restore
        tuples or the repr-based statement digests drift."""
        payload = _json_round_trip(encode_workload(simple_workload))
        decoded = decode_workload(payload)
        for original, restored in zip(simple_workload, decoded):
            assert statement_digest(restored.query) == \
                statement_digest(original.query)
            assert restored.weight == original.weight

    def test_unserializable_operand_is_rejected_at_encode_time(self):
        from repro.server.wire import encode_query
        from repro.workload.predicates import (ColumnRef, ComparisonOperator,
                                               SimplePredicate)
        from repro.workload.query import SelectQuery

        query = SelectQuery(
            tables=("orders",),
            predicates=(SimplePredicate(ColumnRef("orders", "o_orderdate"),
                                        ComparisonOperator.EQ, object()),),
            name="bad")
        with pytest.raises(WireFormatError, match="wire representation"):
            encode_query(query)


class TestConstraintCodec:
    def test_all_declarative_constraints_round_trip(self, simple_schema,
                                                    simple_workload):
        constraints = [
            StorageBudgetConstraint.from_fraction_of_data(simple_schema, 0.5),
            IndexCountConstraint(limit=3),
            IndexWidthConstraint(max_columns=2),
            ClusteredIndexConstraint(),
            QueryCostConstraint(simple_workload.statements[0].query,
                                reference_cost=123.5, factor=0.75),
            QuerySpeedupGenerator(reference_costs={"point#1": 10.0}),
            UpdateCostConstraint(limit=40.0),
            SoftConstraint(StorageBudgetConstraint(1000.0), target=900.0),
        ]
        for constraint in constraints:
            payload = _json_round_trip(encode_constraint(constraint))
            decoded = decode_constraint(payload, simple_workload)
            assert encode_constraint(decoded) == payload, constraint

    def test_callable_constraints_are_rejected(self, simple_workload):
        with pytest.raises(WireFormatError, match="selector"):
            encode_constraint(IndexCountConstraint(
                limit=2, selector=lambda index: index.table == "orders"))
        with pytest.raises(WireFormatError, match="statement_filter"):
            encode_constraint(QuerySpeedupGenerator(
                reference_costs={}, statement_filter=lambda q: True))

    def test_query_cost_resolves_by_statement_name(self, simple_workload):
        payload = {"type": "query_cost", "query": "range#1",
                   "reference_cost": 5.0}
        decoded = decode_constraint(payload, simple_workload)
        assert decoded.query is simple_workload.statements[1].query
        with pytest.raises(WireFormatError, match="unknown statement"):
            decode_constraint({**payload, "query": "no-such"},
                              simple_workload)

    def test_unknown_constraint_type_is_loud(self, simple_workload):
        with pytest.raises(WireFormatError, match="Unknown constraint"):
            decode_constraint({"type": "quantum_budget"}, simple_workload)

    def test_misspelled_constraint_field_is_loud(self, simple_workload):
        """A typo'd optional field must not silently fall back to a default
        with the opposite semantics ('sence' -> sense defaults to <=)."""
        with pytest.raises(WireFormatError, match="sence"):
            decode_constraint({"type": "index_count", "limit": 3,
                               "sence": ">="}, simple_workload)


class TestRequestCodec:
    def _request(self, schema, workload, **kwargs):
        kwargs.setdefault("constraints", [
            StorageBudgetConstraint.from_fraction_of_data(schema, 1.0)])
        return TuningRequest(workload=workload, schema=schema, **kwargs)

    def test_full_request_round_trips(self, simple_schema, simple_workload):
        candidates = CandidateSet(simple_schema, [
            Index("orders", ("o_customer",), include_columns=("o_total",)),
            Index("items", ("i_shipdate",)),
        ])
        request = self._request(
            simple_schema, simple_workload,
            candidates=candidates,
            dba_indexes=[Index("orders", ("o_date",))],
            advisor="cophy",
            costing=CostingSpec(max_orders_per_table=2),
            per_statement_costs=True,
            request_id="round-trip")
        payload = _json_round_trip(encode_request(request))
        decoded = decode_request(payload)
        assert decoded.request_id == "round-trip"
        assert decoded.costing == request.costing
        assert decoded.per_statement_costs is True
        assert tuple(decoded.candidates) == tuple(candidates)
        assert decoded.dba_indexes == request.dba_indexes
        assert workload_fingerprint(decoded.workload) == \
            workload_fingerprint(request.workload)
        # Round trip again: encode(decode(x)) == x.
        assert encode_request(decoded) == payload

    def test_scale_spec_round_trips(self, simple_schema, simple_workload):
        request = self._request(simple_schema, simple_workload,
                                scale=ScaleSpec(shard_count=2,
                                                shard_workers=1))
        decoded = decode_request(_json_round_trip(encode_request(request)))
        assert decoded.scale == request.scale
        assert decoded.resolved_advisor().name == "scaleout"

    def test_wrong_wire_version_is_rejected(self, simple_schema,
                                            simple_workload):
        payload = encode_request(self._request(simple_schema,
                                               simple_workload))
        payload["wire_version"] = WIRE_VERSION + 1
        with pytest.raises(WireFormatError, match="wire_version"):
            decode_request(payload)
        del payload["wire_version"]
        with pytest.raises(WireFormatError, match="wire_version"):
            decode_request(payload)

    def test_unknown_spec_fields_are_rejected(self, simple_schema,
                                              simple_workload):
        payload = encode_request(self._request(simple_schema,
                                               simple_workload))
        payload["costing"]["warp_drive"] = True
        with pytest.raises(WireFormatError, match="warp_drive"):
            decode_request(payload)

    def test_unknown_fields_are_rejected_at_every_level(self, simple_schema,
                                                        simple_workload):
        base = encode_request(self._request(simple_schema, simple_workload))

        def corrupted(mutate):
            payload = json.loads(json.dumps(base))
            mutate(payload)
            return payload

        mutations = [
            lambda p: p.update(reqest_id="typo"),
            lambda p: p["schema"].update(charset="utf8"),
            lambda p: p["schema"]["tables"][0].update(engine="innodb"),
            lambda p: p["schema"]["tables"][0]["columns"][0].update(pk=True),
            lambda p: p["workload"].update(priority=3),
            lambda p: p["workload"]["statements"][0].update(hint="x"),
            lambda p: p["workload"]["statements"][0]["query"].update(limit=5),
            lambda p: p["workload"]["statements"][0]["query"]["predicates"][0]
                       .update(negated=True),
        ]
        for mutate in mutations:
            with pytest.raises(WireFormatError, match="unknown fields"):
                decode_request(corrupted(mutate))

    def test_workload_must_match_schema(self, simple_schema, tpch):
        workload = generate_homogeneous_workload(4, seed=3)
        payload = encode_request(TuningRequest(workload=workload,
                                               schema=tpch))
        payload["schema"] = encode_schema(simple_schema)
        from repro.exceptions import CatalogError
        with pytest.raises(CatalogError):
            decode_request(payload)

    @pytest.mark.parametrize("advisor", ["cophy", "dta"])
    def test_decoded_request_tunes_to_identical_fingerprint(
            self, advisor, simple_schema, simple_workload):
        """The pinned guarantee: decode(encode(request)) is bit-identical to
        the original, all the way to the tuning result's fingerprint."""
        request = self._request(simple_schema, simple_workload,
                                advisor=advisor, request_id="parity")
        decoded = decode_request(_json_round_trip(encode_request(request)))
        local = Tuner().tune(request)
        remote_shaped = Tuner().tune(decoded)
        assert remote_shaped.fingerprint() == local.fingerprint()
