"""Fixture tests for the reprolint rules (PR 9).

Every rule is proven on a seeded violation (the rule fires) and on the fixed
tree (the rule stays quiet).  Fixtures are tiny source trees written into
``tmp_path`` and analyzed through the Python API via ``--root``-style loading;
rules that read repo configuration (``FAULT_SITES``, ``_TIMING_KEYS``) fall
back to built-in defaults when the config modules are absent from the tree.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_analysis, rule_by_name
from repro.analysis.rules import ALL_RULES


def run_tree(tmp_path: Path, files: dict[str, str], rule: str | None = None):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    rules = None
    if rule is not None:
        selected = rule_by_name(rule)
        assert selected is not None, rule
        rules = [selected]
    return run_analysis(tmp_path, rules=rules)


def test_rule_registry_is_complete():
    names = {rule.name for rule in ALL_RULES}
    assert {"fingerprint-purity", "fault-site-discipline", "lock-discipline",
            "metric-label-cardinality", "bounded-buffer",
            "wire-codec-completeness", "worker-pickle-safety",
            "runtime-assert", "unused-import"} <= names
    assert rule_by_name("no-such-rule") is None


# --------------------------------------------------------------- fingerprint
def test_fingerprint_purity_catches_undeclared_clock_key(tmp_path):
    findings = run_tree(tmp_path, {"pkg/record.py": """\
        import time

        def record(extras):
            started = time.perf_counter()
            extras["started_at"] = time.time() - started
        """}, rule="fingerprint-purity")
    assert [f.rule for f in findings] == ["fingerprint-purity"]
    assert "started_at" in findings[0].message


def test_fingerprint_purity_accepts_declared_timing_keys(tmp_path):
    findings = run_tree(tmp_path, {"pkg/record.py": """\
        import time

        def record(extras, timings):
            started = time.perf_counter()
            extras["elapsed_seconds"] = time.time() - started
            timings["prepare"] = time.perf_counter() - started
        """}, rule="fingerprint-purity")
    assert findings == []


def test_fingerprint_purity_catches_tainted_diagnostics_kwarg(tmp_path):
    findings = run_tree(tmp_path, {"pkg/diag.py": """\
        import time

        def build(TuningDiagnostics):
            stamp = time.time()
            return TuningDiagnostics(gap=0.0, started=stamp)
        """}, rule="fingerprint-purity")
    assert len(findings) == 1 and "started" in findings[0].message


# ---------------------------------------------------------------- fault sites
def test_fault_site_rule_requires_literal_known_site(tmp_path):
    findings = run_tree(tmp_path, {"pkg/solve.py": """\
        def solve(plan, site):
            maybe_check(plan, site)

        def solve2(plan):
            maybe_check(plan, "not_a_site")
        """}, rule="fault-site-discipline")
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert "string literal" in messages[1]
    assert "not a member of FAULT_SITES" in messages[0]


def test_fault_site_rule_requires_check_before_work(tmp_path):
    bad = run_tree(tmp_path / "bad", {"pkg/solve.py": """\
        def solve(plan, inum, workload, candidates):
            inum.prepare(workload, candidates)
            maybe_check(plan, "shard_solve")
        """}, rule="fault-site-discipline")
    assert len(bad) == 1 and "dominate" in bad[0].message

    good = run_tree(tmp_path / "good", {"pkg/solve.py": """\
        def solve(plan, inum, workload, candidates):
            maybe_check(plan, "shard_solve")
            inum.prepare(workload, candidates)
        """}, rule="fault-site-discipline")
    assert good == []


# ----------------------------------------------------------------- lock rule
def test_lock_rule_flags_unprotected_root(tmp_path):
    findings = run_tree(tmp_path, {"pkg/uses.py": """\
        def refresh(context, workload, candidates):
            context.inum.prepare(workload, candidates)
        """}, rule="lock-discipline")
    assert len(findings) == 1
    assert "prepare" in findings[0].message


def test_lock_rule_accepts_lexical_lock_and_annotation(tmp_path):
    findings = run_tree(tmp_path, {"pkg/uses.py": """\
        def locked(context, workload, candidates):
            with context.lock:
                context.inum.prepare(workload, candidates)

        # reprolint: requires-lock (caller serializes)
        def annotated(context, workload, candidates):
            context.inum.prepare(workload, candidates)
        """}, rule="lock-discipline")
    assert findings == []


def test_lock_rule_walks_callers(tmp_path):
    # The mutator sits in a helper; safety is decided by the caller edges.
    good = run_tree(tmp_path / "good", {"pkg/uses.py": """\
        def _refresh(context, workload, candidates):
            context.inum.prepare(workload, candidates)

        def entry(context, workload, candidates):
            with context.lock:
                _refresh(context, workload, candidates)
        """}, rule="lock-discipline")
    assert good == []

    bad = run_tree(tmp_path / "bad", {"pkg/uses.py": """\
        def _refresh(context, workload, candidates):
            context.inum.prepare(workload, candidates)

        def entry(context, workload, candidates):
            _refresh(context, workload, candidates)
        """}, rule="lock-discipline")
    assert len(bad) == 1


# -------------------------------------------------------------- metric labels
def test_metric_label_rule_flags_interpolated_label(tmp_path):
    findings = run_tree(tmp_path, {"pkg/obs.py": """\
        def record(registry, query_name):
            registry.counter("c", "d", ("q",)).inc(q=f"query-{query_name}")
        """}, rule="metric-label-cardinality")
    assert len(findings) == 1 and "bounded" in findings[0].message


def test_metric_label_rule_accepts_bounded_values(tmp_path):
    findings = run_tree(tmp_path, {"pkg/obs.py": """\
        def record(registry, site, outcome):
            registry.counter("c", "d", ("site",)).inc(site=site)
            registry.counter("c2", "d", ("s",)).inc(s="literal")
            registry.histogram("h", "d", ("o",)).observe(1.0, o=outcome)

        def enumish(registry, solution):
            registry.counter("c3", "d", ("s",)).inc(
                s=solution.status.name.lower())
        """}, rule="metric-label-cardinality")
    assert findings == []


def test_metric_label_rule_ignores_exemplar_kwarg(tmp_path):
    # ``exemplar=`` deliberately carries a per-request trace id; it is
    # snapshot metadata, not a label, so it must never be flagged.
    findings = run_tree(tmp_path, {"pkg/obs.py": """\
        def record(registry, trace_id):
            registry.histogram("h", "d").observe(1.0, exemplar=trace_id)
        """}, rule="metric-label-cardinality")
    assert findings == []


# -------------------------------------------------------------- bounded buffer
def test_bounded_buffer_flags_unbounded_deque_in_obs(tmp_path):
    findings = run_tree(tmp_path, {"repro/obs/ring.py": """\
        from collections import deque

        events = deque()
        """}, rule="bounded-buffer")
    assert len(findings) == 1 and "maxlen" in findings[0].message


def test_bounded_buffer_accepts_capped_deque_and_other_packages(tmp_path):
    findings = run_tree(tmp_path, {
        "repro/obs/ring.py": """\
            from collections import deque

            events = deque(maxlen=64)
            """,
        # outside obs/ the rule does not apply at all
        "repro/core/scratch.py": """\
            from collections import deque

            frontier = deque()
            """}, rule="bounded-buffer")
    assert findings == []


def test_bounded_buffer_flags_recorder_without_capacity(tmp_path):
    findings = run_tree(tmp_path, {"repro/obs/keeper.py": """\
        class Keeper:
            def __init__(self):
                self.entries = {}

            def record(self, entry):
                self.entries[entry["id"]] = entry
        """}, rule="bounded-buffer")
    assert len(findings) == 1 and "capacity" in findings[0].message


def test_bounded_buffer_accepts_recorder_with_bounded_capacity(tmp_path):
    findings = run_tree(tmp_path, {"repro/obs/keeper.py": """\
        class Keeper:
            def __init__(self, capacity=32):
                self.capacity = int(capacity)
                self.entries = {}

            def record(self, entry):
                self.entries[entry["id"]] = entry
        """}, rule="bounded-buffer")
    assert findings == []


# ----------------------------------------------------------------- wire codec
_WIRE_SPECS = """\
    from dataclasses import dataclass

    @dataclass
    class TuningRequest:
        workload: object
        shiny: int = 0
    """


def test_wire_rule_catches_dropped_field(tmp_path):
    findings = run_tree(tmp_path, {
        "repro/api/specs.py": _WIRE_SPECS,
        "repro/server/wire.py": """\
        _REQUEST_FIELDS = frozenset({"workload"})

        def encode_request(request):
            return {"workload": request.workload}

        def decode_request(payload):
            return payload.get("workload")
        """}, rule="wire-codec-completeness")
    assert len(findings) == 1
    assert "shiny" in findings[0].message and "_REQUEST_FIELDS" in findings[0].message


def test_wire_rule_passes_complete_codec(tmp_path):
    findings = run_tree(tmp_path, {
        "repro/api/specs.py": _WIRE_SPECS,
        "repro/server/wire.py": """\
        _REQUEST_FIELDS = frozenset({"workload", "shiny"})

        def encode_request(request):
            return {"workload": request.workload, "shiny": request.shiny}

        def decode_request(payload):
            return (payload.get("workload"), payload.get("shiny"))
        """}, rule="wire-codec-completeness")
    assert findings == []


def test_wire_rule_requires_version_gate_for_post_v1_fields(tmp_path):
    findings = run_tree(tmp_path, {
        "repro/api/specs.py": """\
        from dataclasses import dataclass

        @dataclass
        class AdvisorSpec:
            name: str = "cophy"
            time_budget_ms: int | None = None
        """,
        "repro/server/wire.py": """\
        _ADVISOR_FIELDS_V1 = frozenset({"name"})
        _ADVISOR_FIELDS = _ADVISOR_FIELDS_V1 | frozenset({"time_budget_ms"})

        def encode_request(request):
            return {"name": request.name,
                    "time_budget_ms": request.time_budget_ms}

        def decode_request(payload):
            return (payload.get("name"), payload.get("time_budget_ms"))
        """}, rule="wire-codec-completeness")
    messages = " ".join(f.message for f in findings)
    assert "unconditionally" in messages        # encoder lacks the version bump
    assert "selecting the field set" in messages  # decoder lacks the gate


# ------------------------------------------------------------- pickle safety
def test_pickle_rule_flags_cached_hash_without_setstate(tmp_path):
    findings = run_tree(tmp_path, {"pkg/thing.py": """\
        class Thing:
            def __init__(self, key):
                self.key = key
                self._hash = hash(key)
        """}, rule="worker-pickle-safety")
    assert len(findings) == 1 and "Thing" in findings[0].message


def test_pickle_rule_accepts_setstate_recompute(tmp_path):
    findings = run_tree(tmp_path, {"pkg/thing.py": """\
        class Thing:
            def __init__(self, key):
                self.key = key
                self._hash = hash(key)

            def __getstate__(self):
                state = dict(self.__dict__)
                state.pop("_hash", None)
                return state

            def __setstate__(self, state):
                self.__dict__.update(state)
                self._hash = hash(self.key)

        class Frozen:
            def __init__(self, key):
                object.__setattr__(self, "_hash", hash(key))

            def __setstate__(self, state):
                object.__setattr__(self, "_hash", hash(state["key"]))
        """}, rule="worker-pickle-safety")
    assert findings == []


# ------------------------------------------------------------------- hygiene
def test_runtime_assert_rule_and_suppression(tmp_path):
    bad = run_tree(tmp_path / "bad", {"pkg/mod.py": """\
        def check(x):
            assert x > 0
            return x
        """}, rule="runtime-assert")
    assert len(bad) == 1 and "python -O" in bad[0].message

    suppressed = run_tree(tmp_path / "ok", {"pkg/mod.py": """\
        def check(x):
            assert x > 0  # reprolint: disable=runtime-assert
            return x
        """}, rule="runtime-assert")
    assert suppressed == []


def test_unused_import_rule(tmp_path):
    bad = run_tree(tmp_path / "bad", {"pkg/mod.py": """\
        import os
        from typing import Mapping

        VALUE = 1
        """}, rule="unused-import")
    assert sorted(f.message for f in bad) == [
        "imported name 'Mapping' is unused",
        "imported name 'os' is unused",
    ]

    good = run_tree(tmp_path / "good", {"pkg/mod.py": """\
        import os
        from typing import Mapping

        def env() -> Mapping[str, str]:
            return dict(os.environ)
        """}, rule="unused-import")
    assert good == []


def test_unused_import_rule_respects_all_and_init(tmp_path):
    findings = run_tree(tmp_path, {
        "pkg/__init__.py": "from os import path\n",
        "pkg/mod.py": """\
        from os import path

        __all__ = ["path"]
        """}, rule="unused-import")
    assert findings == []


# ------------------------------------------------------------------- engine
def test_parse_errors_surface_as_findings(tmp_path):
    findings = run_tree(tmp_path, {"pkg/broken.py": "def broken(:\n"})
    assert [f.rule for f in findings] == ["parse-error"]


def test_docstring_pragma_examples_are_not_live(tmp_path):
    findings = run_tree(tmp_path, {"pkg/mod.py": '''\
        """Docs quoting ``# reprolint: disable=<rule>`` must not parse."""

        def check(x):
            assert x > 0
            return x
        '''}, rule="runtime-assert")
    assert len(findings) == 1  # the assert still fires; the docstring is inert


def test_repo_tree_is_clean_under_all_rules():
    src = Path(__file__).resolve().parents[1] / "src"
    findings = run_analysis(src)
    assert findings == [], [f.render() for f in findings]
