"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.catalog.column import Column, ColumnType
from repro.catalog.schema import Schema
from repro.catalog.statistics import ColumnStatistics
from repro.catalog.table import Table
from repro.catalog.tpch import tpch_schema
from repro.indexes.candidate_generation import CandidateGenerator
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.predicates import ColumnRef, ComparisonOperator, JoinPredicate, SimplePredicate
from repro.workload.query import Aggregate, AggregateFunction, SelectQuery, UpdateQuery
from repro.workload.workload import Workload, WorkloadStatement


def build_simple_schema() -> Schema:
    """A small two-table schema (orders/items style) used by fast unit tests."""
    orders = Table(
        "orders",
        columns=(
            Column("o_id", ColumnType.INTEGER),
            Column("o_customer", ColumnType.INTEGER),
            Column("o_date", ColumnType.DATE),
            Column("o_total", ColumnType.DECIMAL),
            Column("o_status", ColumnType.CHAR, width=1),
        ),
        row_count=50_000,
        statistics={
            "o_id": ColumnStatistics.for_key_column(50_000),
            "o_customer": ColumnStatistics.for_numeric_range(0, 5_000, 5_000),
            "o_date": ColumnStatistics.for_numeric_range(0, 2_000, 2_000),
            "o_total": ColumnStatistics.for_numeric_range(1, 10_000, 9_000),
            "o_status": ColumnStatistics.for_categorical(3),
        },
        primary_key=("o_id",),
    )
    items = Table(
        "items",
        columns=(
            Column("i_order", ColumnType.INTEGER),
            Column("i_product", ColumnType.INTEGER),
            Column("i_quantity", ColumnType.INTEGER),
            Column("i_price", ColumnType.DECIMAL),
            Column("i_shipdate", ColumnType.DATE),
        ),
        row_count=200_000,
        statistics={
            "i_order": ColumnStatistics.for_numeric_range(0, 50_000, 50_000,
                                                          correlation=1.0),
            "i_product": ColumnStatistics.for_numeric_range(0, 1_000, 1_000),
            "i_quantity": ColumnStatistics.for_numeric_range(1, 50, 50),
            "i_price": ColumnStatistics.for_numeric_range(1, 1_000, 900),
            "i_shipdate": ColumnStatistics.for_numeric_range(0, 2_000, 2_000),
        },
        primary_key=("i_order",),
    )
    return Schema([orders, items], name="simple")


def build_simple_workload() -> Workload:
    """A small mixed workload over the simple schema."""
    point_query = SelectQuery(
        tables=("orders",),
        projections=(ColumnRef("orders", "o_total"),),
        predicates=(SimplePredicate(ColumnRef("orders", "o_customer"),
                                    ComparisonOperator.EQ, 42),),
        name="point#1",
    )
    range_query = SelectQuery(
        tables=("items",),
        predicates=(SimplePredicate(ColumnRef("items", "i_shipdate"),
                                    ComparisonOperator.BETWEEN, (100, 200)),),
        aggregates=(Aggregate(AggregateFunction.SUM, ColumnRef("items", "i_price")),),
        name="range#1",
    )
    join_query = SelectQuery(
        tables=("orders", "items"),
        projections=(ColumnRef("orders", "o_date"),),
        predicates=(SimplePredicate(ColumnRef("orders", "o_status"),
                                    ComparisonOperator.EQ, 1,
                                    selectivity_hint=0.3),),
        joins=(JoinPredicate(ColumnRef("orders", "o_id"),
                             ColumnRef("items", "i_order")),),
        group_by=(ColumnRef("orders", "o_date"),),
        aggregates=(Aggregate(AggregateFunction.COUNT, None),),
        name="join#1",
    )
    update_query = UpdateQuery(
        table="orders",
        set_columns=(ColumnRef("orders", "o_status"),),
        predicates=(SimplePredicate(ColumnRef("orders", "o_date"),
                                    ComparisonOperator.BETWEEN, (1900, 1910),
                                    selectivity_hint=0.005),),
        name="upd#1",
    )
    return Workload(
        [WorkloadStatement(point_query, 2.0),
         WorkloadStatement(range_query, 1.0),
         WorkloadStatement(join_query, 1.0),
         WorkloadStatement(update_query, 1.0)],
        name="simple-workload",
    )


@pytest.fixture
def simple_schema() -> Schema:
    return build_simple_schema()


@pytest.fixture
def simple_workload() -> Workload:
    return build_simple_workload()


@pytest.fixture
def simple_optimizer(simple_schema) -> WhatIfOptimizer:
    return WhatIfOptimizer(simple_schema)


@pytest.fixture
def simple_candidates(simple_schema, simple_workload):
    return CandidateGenerator(simple_schema).generate(simple_workload)


@pytest.fixture(scope="session")
def tpch() -> Schema:
    """A small TPC-H catalog shared across integration tests."""
    return tpch_schema(scale_factor=0.005)


@pytest.fixture(scope="session")
def tpch_skewed() -> Schema:
    return tpch_schema(scale_factor=0.005, skew=2.0)
