"""End-to-end tests for the HTTP tuning server + client SDK.

The acceptance bar: for every registered advisor, ``TuningClient.tune``
against a live server returns a ``TuningResult`` whose ``fingerprint()``
equals the in-process ``Tuner.tune`` result for the same request (cold server
vs cold Tuner — call-count diagnostics legitimately differ once caches warm),
and concurrent clients with colliding statement names against a
``namespace_statements=True`` server get deterministic,
interleaving-independent recommendations.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Tuner, TuningRequest, TuningService
from repro.core.constraints import (
    IndexCountConstraint,
    StorageBudgetConstraint,
)
from repro.exceptions import WorkloadError
from repro.indexes.index import Index
from repro.reliability import FaultPlan
from repro.server import TuningClient, TuningServer, TuningServerError
from repro.workload import parse_workload


def _budget(schema, fraction=1.0):
    return StorageBudgetConstraint.from_fraction_of_data(schema, fraction)


def _request(schema, workload, **kwargs):
    kwargs.setdefault("constraints", [_budget(schema)])
    return TuningRequest(workload=workload, schema=schema, **kwargs)


#: Every registered (canonical) advisor; scale-out runs inline so the remote
#: and local runs share no process-pool state.
ADVISORS = [("cophy", {}), ("ilp", {}), ("dta", {}), ("relaxation", {}),
            ("scaleout", {"shard_workers": 1})]


class TestEndToEndParity:
    @pytest.mark.parametrize("name,options", ADVISORS)
    def test_remote_tune_fingerprint_equals_local(self, name, options,
                                                  simple_schema,
                                                  simple_workload):
        from repro.api import AdvisorSpec

        request = _request(simple_schema, simple_workload,
                           advisor=AdvisorSpec(name, options),
                           request_id=f"parity-{name}")
        local = Tuner().tune(request)
        with TuningServer() as server:
            remote = TuningClient(server.url).tune(request)
        assert remote.fingerprint() == local.fingerprint()
        assert remote.configuration == local.configuration
        assert remote.objective_estimate == local.objective_estimate

    def test_tune_batch_matches_sequential_decisions(self, simple_schema,
                                                     simple_workload):
        requests = [
            _request(simple_schema, simple_workload, advisor="cophy"),
            _request(simple_schema, simple_workload, advisor="dta"),
            _request(simple_schema, simple_workload,
                     constraints=[_budget(simple_schema, 0.25)]),
        ]
        sequential = [Tuner().tune(request) for request in requests]
        with TuningServer() as server:
            results = TuningClient(server.url).tune_many(requests)
        for expected, got in zip(sequential, results):
            assert got.configuration == expected.configuration
            assert got.objective_estimate == expected.objective_estimate

    def test_repeated_requests_share_one_context(self, simple_schema,
                                                 simple_workload):
        request = _request(simple_schema, simple_workload)
        with TuningServer() as server:
            client = TuningClient(server.url)
            first = client.tune(request)
            second = client.tune(request)
            stats = client.stats()
        assert second.configuration == first.configuration
        # Equal schema payloads canonicalize onto ONE schema context, and the
        # repeated workload hits the canonical-workload LRU.
        assert stats["service"]["context_count"] == 1
        assert stats["cached_schemas"] == 1
        assert stats["service"]["requests_served"] == 2
        context = stats["service"]["contexts"][0]
        assert context["canonical_workloads"] == 1


class TestNamespacing:
    def _colliding_workloads(self, tpch):
        first = parse_workload(
            ["SELECT o_totalprice FROM orders WHERE o_orderdate < 700"],
            schema=tpch)
        second = parse_workload(
            ["SELECT l_extendedprice FROM lineitem "
             "WHERE l_shipdate BETWEEN 2300 AND 2400"],
            schema=tpch)
        assert [s.query.name for s in first] == [s.query.name for s in second]
        return first, second

    def test_collision_rejected_by_default_as_workload_error(self, tpch):
        first, second = self._colliding_workloads(tpch)
        with TuningServer() as server:
            client = TuningClient(server.url)
            client.tune(TuningRequest(workload=first, schema=tpch))
            with pytest.raises(WorkloadError, match="structurally different"):
                client.tune(TuningRequest(workload=second, schema=tpch))

    def test_concurrent_colliding_clients_are_interleaving_independent(
            self, tpch):
        """With namespacing on, colliding traffic shares one context and each
        client's *decision* is independent of arrival order."""
        first, second = self._colliding_workloads(tpch)
        isolated = {
            "a": Tuner().tune(TuningRequest(workload=first, schema=tpch)),
            "b": Tuner().tune(TuningRequest(workload=second, schema=tpch)),
        }
        for _ in range(2):  # two interleavings against fresh servers
            with TuningServer(namespace_statements=True) as server:
                client = TuningClient(server.url)
                results: dict[str, object] = {}
                errors: list[BaseException] = []

                def tune(key, workload):
                    try:
                        results[key] = client.tune(
                            TuningRequest(workload=workload, schema=tpch))
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)

                threads = [
                    threading.Thread(target=tune, args=("a", first)),
                    threading.Thread(target=tune, args=("b", second)),
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
                stats = client.stats()
            assert not errors
            for key in ("a", "b"):
                assert results[key].configuration == \
                    isolated[key].configuration
                assert results[key].objective_estimate == \
                    isolated[key].objective_estimate
            # Both workloads were served by one shared schema context.
            assert stats["service"]["context_count"] == 1
            assert stats["service"]["namespaced_requests"] >= 1

    def test_namespaced_repeat_is_deterministic(self, tpch):
        first, second = self._colliding_workloads(tpch)
        with TuningServer(namespace_statements=True) as server:
            client = TuningClient(server.url)
            client.tune(TuningRequest(workload=first, schema=tpch))
            one = client.tune(TuningRequest(workload=second, schema=tpch))
            two = client.tune(TuningRequest(workload=second, schema=tpch))
        assert one.provenance["pipeline"]["namespaced"] is True
        assert one.configuration == two.configuration
        assert [c.statement for c in one.statement_costs] == \
            [c.statement for c in two.statement_costs]


class TestSessions:
    def test_remote_session_matches_local_service_session(self, simple_schema,
                                                          simple_workload):
        budget = _budget(simple_schema)
        local_service = TuningService()
        local = local_service.open_session(_request(simple_schema,
                                                    simple_workload))
        local_first = local.recommend()
        local_capped = local.update_constraints(
            [budget, IndexCountConstraint(limit=2)])

        with TuningServer() as server:
            client = TuningClient(server.url)
            with client.open_session(_request(simple_schema,
                                              simple_workload)) as session:
                first = session.recommend()
                capped = session.update_constraints(
                    [budget, IndexCountConstraint(limit=2)])
                extra = Index("items", ("i_shipdate",),
                              include_columns=("i_price",))
                grown = session.add_candidates([extra])
                shrunk = session.remove_candidates([extra])
                assert session.history == (first, capped, grown, shrunk)
                assert session.last_result is shrunk
            assert server.session_count == 0  # context exit closed it

        assert first.configuration == local_first.configuration
        assert first.objective_estimate == local_first.objective_estimate
        assert capped.configuration == local_capped.configuration
        assert extra not in shrunk.configuration

    def test_unknown_session_is_404(self, simple_schema, simple_workload):
        with TuningServer() as server:
            client = TuningClient(server.url)
            with pytest.raises(TuningServerError) as info:
                client._post("/v1/sessions/s999/tune",
                             {"operation": "recommend"})
            assert info.value.status == 404
            assert info.value.error_type == "UnknownSession"
            with pytest.raises(TuningServerError) as info:
                client._delete("/v1/sessions/s999")
            assert info.value.status == 404

    def test_session_constraints_follow_namespaced_renames(self, tpch):
        """A session opened over a renamed (namespaced) workload must accept
        constraint updates phrased in the client's ORIGINAL statement names."""
        from repro.workload import parse_workload
        from repro.core.constraints import QueryCostConstraint

        first = parse_workload(
            ["SELECT o_totalprice FROM orders WHERE o_orderdate < 700"],
            schema=tpch)
        second = parse_workload(
            ["SELECT l_extendedprice FROM lineitem "
             "WHERE l_shipdate BETWEEN 2300 AND 2400"],
            schema=tpch)
        target = second.statements[0].query
        with TuningServer(namespace_statements=True) as server:
            client = TuningClient(server.url)
            client.tune(TuningRequest(workload=first, schema=tpch,
                                      constraints=[_budget(tpch)]))
            with client.open_session(TuningRequest(
                    workload=second, schema=tpch,
                    constraints=[_budget(tpch)])) as session:
                session.recommend()
                # References 'stmt1' — renamed server-side to stmt1@<digest>.
                updated = session.update_constraints([
                    _budget(tpch),
                    QueryCostConstraint(target, reference_cost=1e12,
                                        factor=1.0)])
        assert updated.index_count >= 0  # applied, no ConstraintError


class TestErrorEnvelopes:
    def test_malformed_json_is_400(self, simple_schema):
        with TuningServer() as server:
            request = urllib.request.Request(
                f"{server.url}/v1/tune", data=b"{not json",
                headers={"Content-Type": "application/json"}, method="POST")
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=10)
            assert info.value.code == 400
            envelope = json.loads(info.value.read())
            assert envelope["error"]["type"] == "MalformedJSON"

    def test_unknown_advisor_is_400(self, simple_schema, simple_workload):
        request = _request(simple_schema, simple_workload,
                           advisor="no-such-advisor")
        with TuningServer() as server:
            with pytest.raises(TuningServerError) as info:
                TuningClient(server.url).tune(request)
        assert info.value.status == 400
        assert "No advisor registered" in str(info.value)

    def test_wrong_wire_version_is_400(self, simple_schema, simple_workload):
        from repro.server.wire import WireFormatError, encode_request

        payload = encode_request(_request(simple_schema, simple_workload))
        payload["wire_version"] = 99
        with TuningServer() as server:
            client = TuningClient(server.url)
            with pytest.raises(WireFormatError, match="wire_version"):
                client._post("/v1/tune", payload)

    def test_unknown_endpoint_is_404(self):
        with TuningServer() as server:
            with pytest.raises(TuningServerError) as info:
                TuningClient(server.url)._get("/v1/warp")
        assert info.value.status == 404
        assert info.value.error_type == "NotFound"

    def test_malformed_statistics_are_a_wire_error_not_a_500(
            self, simple_schema, simple_workload):
        from repro.server.wire import WireFormatError, encode_request

        payload = encode_request(_request(simple_schema, simple_workload))
        table = payload["schema"]["tables"][0]
        del table["statistics"][next(iter(table["statistics"]))][
            "distinct_values"]
        with TuningServer() as server:
            client = TuningClient(server.url)
            with pytest.raises(WireFormatError, match="Malformed statistics"):
                client._post("/v1/tune", payload)

    def test_builtin_exceptions_round_trip_like_the_embedded_api(
            self, simple_schema, simple_workload):
        """`except ValueError` handlers must work identically in-process and
        remotely (sessions require the cophy advisor in both worlds)."""
        request = _request(simple_schema, simple_workload, advisor="dta")
        with pytest.raises(ValueError, match="cophy"):
            TuningService().open_session(request)
        with TuningServer() as server:
            with pytest.raises(ValueError, match="cophy"):
                TuningClient(server.url).open_session(request)

    def test_negative_content_length_is_rejected_not_hung(self):
        import http.client

        with TuningServer() as server:
            connection = http.client.HTTPConnection(server.host, server.port,
                                                    timeout=10)
            try:
                connection.putrequest("POST", "/v1/tune")
                connection.putheader("Content-Length", "-1")
                connection.endheaders()
                response = connection.getresponse()
                envelope = json.loads(response.read())
            finally:
                connection.close()
        assert response.status == 400
        assert "non-negative" in envelope["error"]["message"]

    def test_connection_error_is_typed(self):
        from repro.server.protocol import TuningServerUnavailable

        # retry_policy=None: surface the first failure; an empty FaultPlan
        # masks any ambient REPRO_FAULT_PLAN (this test wants the real
        # socket error, not an injected one).
        client = TuningClient("http://127.0.0.1:9", timeout=2,
                              retry_policy=None, fault_plan=FaultPlan())
        with pytest.raises(TuningServerUnavailable) as info:
            client.health()
        assert info.value.error_type == "ServerUnavailable"
        assert info.value.status == 0
        # Still catchable as the generic server error (subclass contract).
        assert isinstance(info.value, TuningServerError)

    def test_truncated_body_is_a_400_envelope(self):
        """A client that dies mid-upload gets MalformedJSON, not a reset."""
        import socket

        with TuningServer() as server:
            with socket.create_connection((server.host, server.port),
                                          timeout=10) as conn:
                conn.sendall(
                    b"POST /v1/tune HTTP/1.1\r\n"
                    b"Host: test\r\nContent-Type: application/json\r\n"
                    b"Content-Length: 1000\r\n\r\n"
                    b'{"wire_version": 2, "truncat')
                conn.shutdown(socket.SHUT_WR)  # body ends 972 bytes early
                response = b""
                while True:
                    chunk = conn.recv(65536)
                    if not chunk:
                        break
                    response += chunk
        head, _, body = response.partition(b"\r\n\r\n")
        assert b"400" in head.split(b"\r\n", 1)[0]
        envelope = json.loads(body)
        assert envelope["error"]["type"] == "MalformedJSON"

    def test_oversized_body_is_rejected_with_413(self):
        from repro.server.app import MAX_BODY_BYTES

        with TuningServer() as server:
            request = urllib.request.Request(
                f"{server.url}/v1/tune", data=b"{}",
                headers={"Content-Type": "application/json",
                         "Content-Length": str(MAX_BODY_BYTES + 1)},
                method="POST")
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=10)
            assert info.value.code == 413
            envelope = json.loads(info.value.read())
            assert envelope["error"]["type"] == "PayloadTooLarge"

    def test_garbage_bytes_with_valid_length_are_400(self):
        with TuningServer() as server:
            request = urllib.request.Request(
                f"{server.url}/v1/tune", data=b"\x00\xff\xfe not json at all",
                headers={"Content-Type": "application/json"}, method="POST")
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=10)
            assert info.value.code == 400
            envelope = json.loads(info.value.read())
            assert envelope["error"]["type"] == "MalformedJSON"

    def test_unencodable_handler_payload_is_a_500_envelope(self):
        """A handler returning non-JSON data still yields an envelope."""
        with TuningServer() as server:
            server.handle_health = (  # type: ignore[method-assign]
                lambda: {"bad": {1, 2}})  # sets are not JSON-encodable
            with pytest.raises(TuningServerError) as info:
                TuningClient(server.url, retry_policy=None,
                             fault_plan=FaultPlan()).health()
        assert info.value.status == 500
        assert info.value.error_type == "ResponseEncodingError"
        assert "encoding failed" in str(info.value)


class TestHealthAndStats:
    def test_health_reports_registry(self):
        with TuningServer() as server:
            health = TuningClient(server.url).health()
        assert health["status"] == "ok"
        assert "cophy" in health["advisors"]
        assert health["wire_version"] == 2

    def test_close_without_start_returns(self):
        """close() on a never-started server must not block on shutdown()."""
        import threading

        server = TuningServer()
        closer = threading.Thread(target=server.close)
        closer.start()
        closer.join(timeout=5)
        assert not closer.is_alive()

    def test_server_defaults_bound_context_growth(self):
        """A server's contexts come from decoded payloads; without a default
        cap, schemas rotating past the schema cache would orphan contexts
        forever."""
        with TuningServer() as server:
            stats = TuningClient(server.url).stats()
        assert stats["service"]["max_contexts"] == 64

    def test_health_ignores_query_strings(self):
        """Load balancers probe with query parameters; routing must not 404."""
        with TuningServer() as server:
            health = TuningClient(server.url)._get("/v1/health?probe=1")
        assert health["status"] == "ok"

    def test_stats_polling_reaps_expired_contexts(self, simple_schema,
                                                  simple_workload):
        import time

        with TuningServer(context_ttl_s=0.05) as server:
            client = TuningClient(server.url)
            client.tune(_request(simple_schema, simple_workload))
            assert client.stats()["service"]["context_count"] == 1
            time.sleep(0.1)
            # No tuning traffic: the stats poll itself must reap and report.
            service = client.stats()["service"]
        assert service["context_count"] == 0
        assert service["expired_contexts"] == 1

    def test_stats_report_context_eviction(self, simple_workload):
        from repro.catalog import tpch_schema

        with TuningServer(max_contexts=1) as server:
            client = TuningClient(server.url)
            client.tune(_request(
                tpch_schema(scale_factor=0.004),
                parse_workload(
                    ["SELECT o_totalprice FROM orders WHERE o_orderdate < 7"],
                    schema=tpch_schema(scale_factor=0.004))))
            schema2 = tpch_schema(scale_factor=0.003)
            client.tune(_request(
                schema2,
                parse_workload(
                    ["SELECT o_totalprice FROM orders WHERE o_orderdate < 7"],
                    schema=schema2)))
            stats = client.stats()
        service = stats["service"]
        assert service["context_count"] == 1
        assert service["evicted_contexts"] == 1
        assert service["max_contexts"] == 1
