"""Tests for the evaluation harness: metrics, runner and reporting."""

from __future__ import annotations

import math

import pytest

from repro.api import make_advisor
from repro.bench.harness import AdvisorRun, ExperimentResult, compare_advisors, run_advisor
from repro.bench.metrics import (
    baseline_configuration,
    perf_improvement,
    speedup_percent,
    workload_cost,
)
from repro.bench.reporting import format_series, format_table
from repro.core.constraints import StorageBudgetConstraint
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.optimizer.whatif import WhatIfOptimizer


class TestMetrics:
    def test_workload_cost_is_weighted(self, simple_schema, simple_workload):
        optimizer = WhatIfOptimizer(simple_schema)
        total = workload_cost(optimizer, simple_workload, Configuration())
        manual = sum(s.weight * optimizer.statement_cost(s.query, Configuration())
                     for s in simple_workload)
        assert total == pytest.approx(manual)

    def test_perf_improvement_for_obviously_good_index(self, simple_schema,
                                                       simple_workload):
        optimizer = WhatIfOptimizer(simple_schema)
        good = Configuration([
            Index("orders", ("o_customer",), include_columns=("o_total",)),
            Index("items", ("i_shipdate",), include_columns=("i_price",)),
        ])
        assert perf_improvement(optimizer, simple_workload, good) > 0.0
        assert speedup_percent(optimizer, simple_workload, good) == pytest.approx(
            100 * perf_improvement(optimizer, simple_workload, good))

    def test_custom_baseline(self, simple_schema, simple_workload):
        optimizer = WhatIfOptimizer(simple_schema)
        baseline = baseline_configuration(simple_schema)
        assert perf_improvement(optimizer, simple_workload, Configuration(),
                                baseline) == pytest.approx(0.0, abs=1e-9)


class TestHarness:
    def test_run_advisor_produces_row(self, simple_schema, simple_workload):
        evaluation = WhatIfOptimizer(simple_schema)
        run = run_advisor(make_advisor("cophy", simple_schema), evaluation, simple_workload,
                          [StorageBudgetConstraint.from_fraction_of_data(
                              simple_schema, 1.0)])
        row = run.row()
        assert row["advisor"] == "cophy"
        assert 0 <= row["perf"] <= 1
        assert row["seconds"] > 0
        assert run.speedup_percent == pytest.approx(100 * run.perf)

    def test_run_advisor_with_inum_evaluator(self, simple_schema,
                                             simple_workload):
        """An INUM evaluator must yield a perf close to the what-if ground
        truth (INUM approximates the optimizer by construction)."""
        evaluation = WhatIfOptimizer(simple_schema)
        constraints = [StorageBudgetConstraint.from_fraction_of_data(
            simple_schema, 1.0)]
        exact = run_advisor(make_advisor("cophy", simple_schema), evaluation,
                            simple_workload, constraints)
        inum_eval = InumCache(WhatIfOptimizer(simple_schema))
        approx = run_advisor(make_advisor("cophy", simple_schema), evaluation,
                             simple_workload, constraints,
                             evaluation_inum=inum_eval)
        assert 0 <= approx.perf <= 1
        assert approx.perf == pytest.approx(exact.perf, abs=0.1)

    def test_compare_advisors_collects_all_runs(self, simple_schema,
                                                simple_workload):
        evaluation = WhatIfOptimizer(simple_schema)
        result = compare_advisors(
            [make_advisor("cophy", simple_schema), make_advisor("dta", simple_schema)],
            evaluation, simple_workload, name="unit")
        assert {run.advisor_name for run in result.runs} == {"cophy", "tool-b"}
        assert result.metadata["statements"] == len(simple_workload)
        assert result.perf_ratio("cophy", "tool-b") > 0
        assert result.time_ratio("tool-b", "cophy") > 0
        with pytest.raises(KeyError):
            result.run_for("missing")

    def test_perf_ratio_handles_zero_denominator(self, simple_schema,
                                                 simple_workload):
        recommendation = make_advisor("cophy", simple_schema).tune(simple_workload)
        zero_run = AdvisorRun("zero", recommendation, perf=0.0, wall_seconds=0.0)
        good_run = AdvisorRun("good", recommendation, perf=0.5, wall_seconds=1.0)
        result = ExperimentResult("x", runs=[zero_run, good_run])
        assert result.perf_ratio("good", "zero") == float("inf")
        assert result.time_ratio("good", "zero") == float("inf")

    def test_degenerate_ratios_never_raise(self, simple_schema,
                                           simple_workload):
        """0/0, inf denominators and nan operands degrade into inf/nan/0."""
        recommendation = make_advisor("cophy", simple_schema).tune(simple_workload)

        def run(name, perf, seconds):
            return AdvisorRun(name, recommendation, perf=perf,
                              wall_seconds=seconds)

        result = ExperimentResult("degenerate", runs=[
            run("zero", 0.0, 0.0),
            run("good", 0.5, 1.0),
            run("timeout", float("inf"), float("inf")),
            run("broken", float("nan"), float("nan")),
        ])
        # 0 / 0 is undefined, not an error.
        assert math.isnan(result.perf_ratio("zero", "zero"))
        assert math.isnan(result.time_ratio("zero", "zero"))
        # Finite / inf vanishes; inf / inf is undefined.
        assert result.time_ratio("good", "timeout") == 0.0
        assert math.isnan(result.time_ratio("timeout", "timeout"))
        # Inf / finite and inf / zero stay inf.
        assert result.time_ratio("timeout", "good") == float("inf")
        assert result.time_ratio("timeout", "zero") == float("inf")
        # NaN operands propagate instead of raising.
        assert math.isnan(result.perf_ratio("broken", "good"))
        assert math.isnan(result.perf_ratio("good", "broken"))
        # The healthy case still divides normally.
        assert result.perf_ratio("good", "good") == pytest.approx(1.0)


class TestRequestHarness:
    def test_compare_requests_matches_compare_advisors(self, simple_schema,
                                                       simple_workload):
        """The declarative sweep must reproduce the legacy sweep's decisions."""
        from repro.api import Tuner, TuningRequest
        from repro.bench.harness import compare_requests

        constraints = [StorageBudgetConstraint.from_fraction_of_data(
            simple_schema, 1.0)]
        legacy = compare_advisors(
            [make_advisor("cophy", simple_schema),
             make_advisor("dta", simple_schema)],
            WhatIfOptimizer(simple_schema), simple_workload, constraints,
            name="legacy")
        declarative = compare_requests(
            Tuner(),
            [TuningRequest(workload=simple_workload, schema=simple_schema,
                           constraints=constraints, advisor=name)
             for name in ("cophy", "dta")],
            WhatIfOptimizer(simple_schema), name="declarative")
        assert declarative.metadata["statements"] == len(simple_workload)
        for name in ("cophy", "tool-b"):
            old = legacy.run_for(name)
            new = declarative.run_for(name)
            assert new.recommendation.configuration \
                == old.recommendation.configuration
            assert new.perf == old.perf
            assert new.result is not None
            assert new.result.advisor_name == name
            assert new.row()["advisor"] == name


class TestReporting:
    def test_format_table_aligns_columns(self):
        rows = [{"advisor": "cophy", "perf": 0.61, "seconds": 8.3},
                {"advisor": "tool-a", "perf": 0.35, "seconds": 419.0}]
        text = format_table(rows, title="Figure 7")
        lines = text.splitlines()
        assert lines[0] == "Figure 7"
        assert "advisor" in lines[1] and "perf" in lines[1]
        assert len(lines) == 5

    def test_format_table_handles_missing_keys_and_empty_rows(self):
        assert "(no rows)" in format_table([], title="empty")
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_format_series(self):
        text = format_series([(250, 35.0), (500, 32.0)], "workload", "speedup")
        assert "workload" in text and "speedup" in text
        assert "250" in text and "500" in text
