"""Tests for INUM: template plans, linear composability and cost accuracy."""

from __future__ import annotations

import pytest

from repro.exceptions import OptimizerError
from repro.indexes.candidate_generation import CandidateGenerator
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.inum.template_plan import INFEASIBLE_COST, TemplatePlan
from repro.optimizer.plan import ScanNode
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.predicates import ColumnRef
from repro.workload.query import UpdateQuery


@pytest.fixture
def optimizer(simple_schema) -> WhatIfOptimizer:
    return WhatIfOptimizer(simple_schema)


@pytest.fixture
def inum(optimizer) -> InumCache:
    return InumCache(optimizer)


class TestTemplatePlan:
    def test_accepts_checks_order_requirement(self):
        template = TemplatePlan(
            query_name="q",
            order_requirements={"orders": ColumnRef("orders", "o_id"), "items": None},
            internal_cost=10.0,
        )
        ordered = ScanNode(cost=1, rows=1, table="orders",
                           output_order=ColumnRef("orders", "o_id"))
        unordered = ScanNode(cost=1, rows=1, table="orders", output_order=None)
        anything = ScanNode(cost=1, rows=1, table="items", output_order=None)
        assert template.accepts("orders", ordered)
        assert not template.accepts("orders", unordered)
        assert template.accepts("items", anything)

    def test_accepts_index_uses_leading_column_and_heap_order(self):
        template = TemplatePlan(
            query_name="q",
            order_requirements={"orders": ColumnRef("orders", "o_id")},
            internal_cost=10.0,
        )
        good = Index("orders", ("o_id", "o_date"))
        bad = Index("orders", ("o_date", "o_id"))
        assert template.accepts_index("orders", good, heap_order=None)
        assert not template.accepts_index("orders", bad, heap_order=None)
        assert template.accepts_index("orders", None,
                                      heap_order=ColumnRef("orders", "o_id"))
        assert not template.accepts_index("orders", None, heap_order=None)

    def test_signature_and_equality(self):
        a = TemplatePlan("q", {"orders": None}, 5.0)
        b = TemplatePlan("q", {"orders": None}, 5.0)
        c = TemplatePlan("q", {"orders": ColumnRef("orders", "o_id")}, 5.0)
        assert a == b
        assert a != c
        assert a.signature() != c.signature()


class TestInumCacheConstruction:
    def test_builds_at_least_one_template_per_statement(self, inum, simple_workload):
        for statement in simple_workload:
            templates = inum.build(statement.query)
            assert len(templates) >= 1

    def test_build_is_cached_by_statement_name(self, inum, simple_workload):
        query = simple_workload.statements[0].query
        first = inum.build(query)
        calls_after_first = inum.template_build_calls
        second = inum.build(query)
        assert first is second
        assert inum.template_build_calls == calls_after_first

    def test_join_query_gets_order_aware_templates(self, inum, simple_workload):
        join_query = simple_workload.statements[2].query
        templates = inum.build(join_query)
        requirements = {order for template in templates
                        for order in template.order_requirements.values()
                        if order is not None}
        assert requirements, "expected at least one interesting-order template"

    def test_update_statements_use_their_query_shell(self, inum, simple_workload):
        update = simple_workload.statements[3].query
        assert isinstance(update, UpdateQuery)
        templates = inum.build(update)
        assert all(t.query_name == update.query_shell().name for t in templates)

    def test_template_cap_is_respected(self, optimizer, simple_workload):
        capped = InumCache(optimizer, max_templates_per_query=2)
        for statement in simple_workload:
            assert len(capped.build(statement.query)) <= 2

    def test_workload_build_populates_cache(self, inum, simple_workload):
        inum.build_workload(simple_workload)
        assert inum.cached_query_count == len(simple_workload)
        assert inum.total_template_count() >= len(simple_workload)

    def test_invalid_parameters_rejected(self, optimizer):
        with pytest.raises(ValueError):
            InumCache(optimizer, max_orders_per_table=-1)
        with pytest.raises(ValueError):
            InumCache(optimizer, max_templates_per_query=0)


class TestGamma:
    def test_incompatible_access_method_is_infeasible(self, inum, simple_workload):
        join_query = simple_workload.statements[2].query
        templates = inum.build(join_query)
        ordered_templates = [
            t for t in templates
            if t.required_order("items") == ColumnRef("items", "i_order")]
        if not ordered_templates:
            pytest.skip("no template requires an items order for this plan shape")
        template = ordered_templates[0]
        incompatible = Index("items", ("i_shipdate",))
        compatible = Index("items", ("i_order",))
        assert inum.gamma(join_query, template, "items", incompatible) == INFEASIBLE_COST
        assert inum.gamma(join_query, template, "items", compatible) < INFEASIBLE_COST

    def test_gamma_matches_access_cost_when_compatible(self, inum, simple_workload):
        query = simple_workload.statements[0].query
        template = inum.build(query)[0]
        index = Index("orders", ("o_customer",))
        gamma = inum.gamma(query, template, "orders", index)
        assert gamma == pytest.approx(inum.access_cost(query, "orders", index))


class TestInumCost:
    def test_matches_optimizer_for_empty_configuration(self, inum, optimizer,
                                                       simple_workload):
        """INUM should approximate the optimizer closely (the paper's premise)."""
        for statement in simple_workload:
            inum_cost = inum.statement_cost(statement.query, Configuration())
            optimizer_cost = optimizer.statement_cost(statement.query, Configuration())
            assert inum_cost == pytest.approx(optimizer_cost, rel=0.25)

    def test_tracks_optimizer_across_configurations(self, inum, optimizer,
                                                    simple_schema, simple_workload):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        interesting = list(candidates)[:8]
        configuration = Configuration(interesting)
        for statement in simple_workload:
            inum_cost = inum.statement_cost(statement.query, configuration)
            optimizer_cost = optimizer.statement_cost(statement.query, configuration)
            assert inum_cost == pytest.approx(optimizer_cost, rel=0.35)

    def test_cost_is_monotone_in_configuration(self, inum, simple_workload):
        query = simple_workload.statements[2].query
        indexes = [Index("items", ("i_order",)),
                   Index("orders", ("o_status", "o_id")),
                   Index("orders", ("o_id",), include_columns=("o_date",))]
        previous = inum.cost(query, Configuration())
        for count in range(1, len(indexes) + 1):
            current = inum.cost(query, Configuration(indexes[:count]))
            assert current <= previous + 1e-6
            previous = current

    def test_good_index_reduces_inum_cost(self, inum, simple_workload):
        point = simple_workload.statements[0].query
        index = Index("orders", ("o_customer",), include_columns=("o_total",))
        assert inum.cost(point, Configuration([index])) < inum.cost(point,
                                                                    Configuration())

    def test_workload_cost_is_weighted_sum(self, inum, simple_workload):
        total = inum.workload_cost(simple_workload, Configuration())
        manual = sum(s.weight * inum.statement_cost(s.query, Configuration())
                     for s in simple_workload)
        assert total == pytest.approx(manual)

    def test_update_cost_adds_maintenance(self, inum, simple_workload):
        update = simple_workload.statements[3].query
        affected = Index("orders", ("o_status",))
        base = inum.statement_cost(update, Configuration())
        with_index = inum.statement_cost(update, Configuration([affected]))
        assert with_index > base

    def test_matrix_and_loop_paths_are_bit_identical(self, optimizer, simple_schema,
                                                     simple_workload):
        """The vectorized gamma-matrix path must reproduce the loop path exactly."""
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        fast = InumCache(optimizer)
        slow = InumCache(optimizer, use_gamma_matrix=False)
        assert fast.uses_gamma_matrix and not slow.uses_gamma_matrix
        for count in (0, 1, 5, len(candidates)):
            configuration = Configuration(list(candidates)[:count])
            for statement in simple_workload:
                assert (fast.statement_cost(statement.query, configuration)
                        == slow.statement_cost(statement.query, configuration))
            assert (fast.workload_cost(simple_workload, configuration)
                    == slow.workload_cost(simple_workload, configuration))

    def test_matrix_gamma_matches_loop_gamma(self, optimizer, simple_schema,
                                             simple_workload):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        fast = InumCache(optimizer)
        slow = InumCache(optimizer, use_gamma_matrix=False)
        for statement in simple_workload:
            shell = fast._shell(statement.query)
            for f_template, s_template in zip(fast.build(shell), slow.build(shell)):
                for table in shell.tables:
                    for index in (None, *candidates.for_table(table)):
                        assert (fast.gamma(shell, f_template, table, index)
                                == slow.gamma(shell, s_template, table, index))

    def test_prepare_registers_query_relevant_candidate_columns(
            self, inum, simple_schema, simple_workload):
        candidates = CandidateGenerator(simple_schema).generate(simple_workload)
        inum.prepare(simple_workload, candidates)
        for statement in simple_workload:
            shell = inum._shell(statement.query)
            matrix = inum.gamma_matrix(statement.query)
            relevant = {index for index in candidates
                        if index.table in shell.tables}
            # One column per candidate on the query's own tables plus I_0;
            # indexes on untouched tables must not widen the matrix.
            assert matrix.column_count == len(relevant) + 1
            assert set(matrix.registered_indexes) == relevant

    def test_infeasible_matrix_cost_raises(self, inum, simple_workload):
        """A query with no feasible template must still raise OptimizerError."""
        query = simple_workload.statements[0].query
        inum.build(query)
        matrix = inum.gamma_matrix(query)
        matrix._matrix[:, :, 0] = INFEASIBLE_COST  # force every template infeasible
        matrix._slot_min_by_id.clear()
        matrix._slot_min_by_key.clear()
        with pytest.raises(OptimizerError):
            inum.cost(query, Configuration())

    def test_linear_composability_identity(self, inum, simple_workload):
        """cost(q, X) must equal min_k (beta_k + sum_i min_a gamma_kia)."""
        query = simple_workload.statements[2].query
        configuration = Configuration([Index("items", ("i_order",)),
                                       Index("orders", ("o_date",))])
        templates = inum.build(query)
        expected = min(
            template.internal_cost + sum(
                min([inum.gamma(query, template, table, None)]
                    + [inum.gamma(query, template, table, index)
                       for index in configuration.indexes_on(table)])
                for table in query.tables)
            for template in templates)
        assert inum.cost(query, configuration) == pytest.approx(expected)
