"""Tests for the LP/BIP modelling layer (variables, expressions, constraints, model)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError
from repro.lp.constraint import Constraint, ConstraintSense
from repro.lp.expression import LinearExpression
from repro.lp.model import Model, ObjectiveSense
from repro.lp.variable import VariableKind


class TestExpressions:
    def setup_method(self):
        self.model = Model("m")
        self.x = self.model.add_binary("x")
        self.y = self.model.add_binary("y")
        self.z = self.model.add_continuous("z", 0.0, 10.0)

    def test_variable_arithmetic_builds_expressions(self):
        expression = 2 * self.x + self.y - 3
        assert expression.coefficient(self.x) == 2.0
        assert expression.coefficient(self.y) == 1.0
        assert expression.constant == -3.0

    def test_subtraction_and_negation(self):
        expression = -(self.x - self.y)
        assert expression.coefficient(self.x) == -1.0
        assert expression.coefficient(self.y) == 1.0

    def test_sum_of_merges_duplicates(self):
        expression = LinearExpression.sum_of([self.x, self.x, self.y], [1, 2, 5])
        assert expression.coefficient(self.x) == 3.0
        assert expression.coefficient(self.y) == 5.0

    def test_sum_of_rejects_mismatched_lengths(self):
        with pytest.raises(SolverError):
            LinearExpression.sum_of([self.x], [1.0, 2.0])

    def test_evaluate(self):
        expression = 2 * self.x + 3 * self.y + 1
        assert expression.evaluate({self.x: 1.0, self.y: 0.0}) == pytest.approx(3.0)
        assert expression.evaluate({self.x: 1.0, self.y: 1.0}) == pytest.approx(6.0)

    def test_scaling_by_non_number_rejected(self):
        with pytest.raises(SolverError):
            (1 * self.x) * self.y  # type: ignore[operator]

    def test_incompatible_operand_rejected(self):
        with pytest.raises(SolverError):
            (1 * self.x) + "nope"  # type: ignore[operator]

    def test_comparisons_produce_constraints(self):
        le = (self.x + self.y) <= 1
        ge = (self.x + self.y) >= 1
        eq = (self.x + self.y) == 1
        assert isinstance(le, Constraint) and le.sense is ConstraintSense.LESS_EQUAL
        assert isinstance(ge, Constraint) and ge.sense is ConstraintSense.LESS_EQUAL
        assert isinstance(eq, Constraint) and eq.sense is ConstraintSense.EQUAL

    def test_constraint_row_moves_constant_to_rhs(self):
        constraint = (2 * self.x + 3) <= 7
        coefficients, rhs = constraint.row()
        assert coefficients[self.x] == 2.0
        assert rhs == pytest.approx(4.0)

    def test_constraint_satisfaction_and_violation(self):
        constraint = (self.x + self.y) <= 1
        assert constraint.is_satisfied({self.x: 1.0, self.y: 0.0})
        assert not constraint.is_satisfied({self.x: 1.0, self.y: 1.0})
        assert constraint.violation({self.x: 1.0, self.y: 1.0}) == pytest.approx(1.0)
        equality = (self.x + self.y) == 1
        assert equality.is_satisfied({self.x: 0.0, self.y: 1.0})
        assert not equality.is_satisfied({self.x: 0.0, self.y: 0.0})

    @given(a=st.floats(-5, 5, allow_nan=False), b=st.floats(-5, 5, allow_nan=False),
           vx=st.floats(0, 1), vy=st.floats(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_property_evaluation_is_linear(self, a, b, vx, vy):
        expression = a * self.x + b * self.y
        values = {self.x: vx, self.y: vy}
        assert expression.evaluate(values) == pytest.approx(a * vx + b * vy, abs=1e-9)


class TestModel:
    def test_variable_registration(self):
        model = Model("m")
        x = model.add_binary("x")
        z = model.add_continuous("z", 1.0, 2.0)
        assert model.variable_count == 2
        assert x.kind is VariableKind.BINARY
        assert z.kind is VariableKind.CONTINUOUS
        assert model.binary_variables() == (x,)

    def test_invalid_continuous_bounds_rejected(self):
        with pytest.raises(SolverError):
            Model("m").add_continuous("z", 5.0, 1.0)

    def test_foreign_variables_rejected(self):
        first = Model("a")
        second = Model("b")
        x = first.add_binary("x")
        with pytest.raises(SolverError):
            second.add_constraint((1 * x) <= 1)
        with pytest.raises(SolverError):
            second.set_objective(1 * x)

    def test_add_constraint_requires_constraint_object(self):
        model = Model("m")
        model.add_binary("x")
        with pytest.raises(SolverError):
            model.add_constraint("x <= 1")  # type: ignore[arg-type]

    def test_objective_and_feasibility_checks(self):
        model = Model("m")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.set_objective(x + 2 * y)
        model.add_constraint((x + y) <= 1, name="cap")
        feasible = {x: 1.0, y: 0.0}
        infeasible = {x: 1.0, y: 1.0}
        fractional = {x: 0.5, y: 0.0}
        assert model.is_feasible_assignment(feasible)
        assert not model.is_feasible_assignment(infeasible)
        assert not model.is_feasible_assignment(fractional)
        assert model.objective_value(feasible) == pytest.approx(1.0)
        assert [c.name for c in model.violated_constraints(infeasible)] == ["cap"]

    def test_remove_constraints(self):
        model = Model("m")
        x = model.add_binary("x")
        kept = model.add_constraint((1 * x) <= 1)
        removed = model.add_constraint((1 * x) <= 0)
        assert model.constraint_count == 2
        assert model.remove_constraints([removed]) == 1
        assert model.constraints == (kept,)
        assert model.remove_constraints([removed]) == 0

    def test_matrix_export_shapes(self):
        model = Model("m")
        x = model.add_binary("x")
        y = model.add_continuous("y", 0.0, 4.0)
        model.add_constraint((x + y) <= 3)
        model.add_constraint((2 * x + y) == 2)
        model.set_objective(x + y)
        matrices = model.to_matrices()
        assert matrices["c"].shape == (2,)
        assert matrices["A_ub"].shape == (1, 2)
        assert matrices["A_eq"].shape == (1, 2)
        assert matrices["bounds"].shape == (2, 2)
        assert list(matrices["integrality"]) == [1, 0]

    def test_matrix_cache_invalidation(self):
        model = Model("m")
        x = model.add_binary("x")
        model.set_objective(1 * x)
        first = model.to_matrices()
        assert model.to_matrices() is first
        model.add_constraint((1 * x) <= 1)
        assert model.to_matrices() is not first

    def test_maximisation_negates_cost_vector(self):
        model = Model("m", sense=ObjectiveSense.MAXIMIZE)
        x = model.add_binary("x")
        model.set_objective(5 * x)
        assert model.to_matrices()["c"][0] == pytest.approx(-5.0)
