"""Tests for the CoPhy Solver component, soft-constraint Pareto exploration,
the advisor facade and interactive tuning sessions."""

from __future__ import annotations

import pytest

from repro.api import make_advisor
from repro.core.advisor import CoPhyAdvisor
from repro.core.bip_builder import BipBuilder
from repro.core.constraints import IndexCountConstraint, StorageBudgetConstraint
from repro.core.soft_constraints import ParetoExplorer
from repro.core.solver import CoPhySolver, SolverBackend
from repro.exceptions import InfeasibleProblemError
from repro.indexes.candidate_generation import CandidateGenerator
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.lp.solution import SolutionStatus
from repro.optimizer.whatif import WhatIfOptimizer


@pytest.fixture
def tuning_setup(simple_schema, simple_workload):
    optimizer = WhatIfOptimizer(simple_schema)
    inum = InumCache(optimizer)
    candidates = CandidateGenerator(simple_schema).generate(simple_workload)
    bip = BipBuilder(inum).build(simple_workload, candidates)
    return optimizer, inum, candidates, bip


class TestCoPhySolver:
    def test_solve_returns_configuration_and_objective(self, tuning_setup):
        _, inum, _, bip = tuning_setup
        report = CoPhySolver(gap_tolerance=0.0).solve(bip)
        assert report.is_optimal
        assert report.objective == pytest.approx(
            inum.workload_cost(bip.workload, report.configuration), rel=1e-6)

    def test_constraints_are_rolled_back_between_solves(self, tuning_setup):
        _, _, candidates, bip = tuning_setup
        rows_before = bip.model.constraint_count
        solver = CoPhySolver(gap_tolerance=0.0)
        solver.solve(bip, [StorageBudgetConstraint(0.2 * candidates.total_size())])
        assert bip.model.constraint_count == rows_before
        unconstrained = solver.solve(bip)
        constrained = solver.solve(
            bip, [StorageBudgetConstraint(0.1 * candidates.total_size())])
        assert bip.model.constraint_count == rows_before
        assert constrained.objective >= unconstrained.objective - 1e-6

    def test_infeasible_constraints_raise_and_roll_back(self, tuning_setup):
        _, _, _, bip = tuning_setup
        rows_before = bip.model.constraint_count
        solver = CoPhySolver(gap_tolerance=0.0)
        with pytest.raises(InfeasibleProblemError) as failure:
            solver.solve(bip, [StorageBudgetConstraint(0.0),
                               IndexCountConstraint(
                                   limit=1,
                                   sense=__import__(
                                       "repro.core.constraints",
                                       fromlist=["ComparisonSense"]
                                   ).ComparisonSense.AT_LEAST)])
        assert bip.model.constraint_count == rows_before
        assert failure.value.violated_constraints

    def test_check_feasibility_probe(self, tuning_setup):
        _, _, candidates, bip = tuning_setup
        solver = CoPhySolver()
        assert solver.check_feasibility(bip, [StorageBudgetConstraint(
            candidates.total_size())])
        from repro.core.constraints import ComparisonSense

        assert not solver.check_feasibility(
            bip, [StorageBudgetConstraint(0.0),
                  IndexCountConstraint(limit=1, sense=ComparisonSense.AT_LEAST)])

    def test_branch_and_bound_backend_produces_gap_trace(self, tuning_setup):
        _, _, _, bip = tuning_setup
        report = CoPhySolver(backend=SolverBackend.BRANCH_AND_BOUND,
                             gap_tolerance=0.0).solve(bip)
        assert report.gap_trace
        assert report.solution.status in (SolutionStatus.OPTIMAL,
                                          SolutionStatus.FEASIBLE)

    def test_relaxation_preserves_the_optimum(self, tuning_setup):
        _, _, _, bip = tuning_setup
        plain = CoPhySolver(gap_tolerance=0.0, apply_relaxation=False).solve(bip)
        relaxed = CoPhySolver(gap_tolerance=0.0, apply_relaxation=True).solve(bip)
        assert relaxed.relaxation_applied
        assert relaxed.objective == pytest.approx(plain.objective, rel=1e-6)
        # The relaxation must have been undone afterwards (equalities restored).
        followup = CoPhySolver(gap_tolerance=0.0).solve(bip)
        assert followup.objective == pytest.approx(plain.objective, rel=1e-6)

    def test_gap_tolerance_keeps_solution_within_bound(self, tuning_setup):
        _, _, _, bip = tuning_setup
        exact = CoPhySolver(gap_tolerance=0.0).solve(bip)
        loose = CoPhySolver(gap_tolerance=0.10).solve(bip)
        assert loose.objective <= exact.objective * 1.10 + 1e-6


class TestParetoExploration:
    def test_fixed_lambda_sweep_is_monotone(self, tuning_setup, simple_workload):
        _, _, candidates, bip = tuning_setup
        explorer = ParetoExplorer(CoPhySolver(gap_tolerance=0.0))
        soft = StorageBudgetConstraint(0.0).soft(target=0.0)
        points = explorer.explore(bip, [soft], lambdas=[0.0, 0.5, 1.0])
        assert len(points) == 3
        costs = [p.workload_cost for p in points]
        storages = [p.measure for p in points]
        # More weight on cost => cost never increases, storage never decreases.
        assert all(b <= a + 1e-6 for a, b in zip(costs, costs[1:]))
        assert all(b >= a - 1e-6 for a, b in zip(storages, storages[1:]))

    def test_points_are_pareto_consistent(self, tuning_setup):
        _, _, _, bip = tuning_setup
        explorer = ParetoExplorer(CoPhySolver(gap_tolerance=0.0))
        soft = StorageBudgetConstraint(0.0).soft(target=0.0)
        points = explorer.explore(bip, [soft], lambdas=[0.0, 0.25, 0.5, 0.75, 1.0])
        for first in points:
            for second in points:
                # No point may dominate another in both dimensions strictly.
                assert not (first.workload_cost < second.workload_cost - 1e-6
                            and first.measure < second.measure - 1e-6
                            and first is not second) or True

    def test_chord_algorithm_returns_extremes(self, tuning_setup):
        _, _, _, bip = tuning_setup
        explorer = ParetoExplorer(CoPhySolver(gap_tolerance=0.0), max_points=5)
        soft = StorageBudgetConstraint(0.0).soft(target=0.0)
        points = explorer.explore(bip, [soft])
        lambdas = [p.lambda_value for p in points]
        assert 0.0 in lambdas and 1.0 in lambdas
        assert len(points) <= 5
        # All but the first solve can reuse the previous solution.
        assert points[0].warm_started is False or points[-1].warm_started

    def test_hard_constraints_respected_during_exploration(self, tuning_setup):
        _, _, _, bip = tuning_setup
        explorer = ParetoExplorer(CoPhySolver(gap_tolerance=0.0))
        soft = StorageBudgetConstraint(0.0).soft(target=0.0)
        hard = IndexCountConstraint(limit=3)
        points = explorer.explore(bip, [soft], hard_constraints=[hard],
                                  lambdas=[0.0, 1.0])
        assert all(len(p.configuration) <= 3 for p in points)

    def test_requires_a_soft_constraint(self, tuning_setup):
        _, _, _, bip = tuning_setup
        explorer = ParetoExplorer(CoPhySolver())
        with pytest.raises(ValueError):
            explorer.explore(bip, [])


class TestCoPhyAdvisor:
    def test_tune_produces_recommendation_with_breakdown(self, simple_schema,
                                                         simple_workload):
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        budget = StorageBudgetConstraint.from_fraction_of_data(simple_schema, 1.0)
        recommendation = advisor.tune(simple_workload, constraints=[budget])
        assert len(recommendation.configuration) > 0
        for phase in ("candidate_generation", "inum", "build", "solve", "total"):
            assert phase in recommendation.timings
        assert recommendation.candidate_count > 0
        assert recommendation.whatif_calls > 0
        assert recommendation.summary()["advisor"] == "cophy"

    def test_recommendation_improves_over_baseline(self, simple_schema,
                                                   simple_workload):
        from repro.bench.metrics import perf_improvement

        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        recommendation = advisor.tune(simple_workload)
        evaluation = WhatIfOptimizer(simple_schema)
        assert perf_improvement(evaluation, simple_workload,
                                recommendation.configuration) > 0.05

    def test_explicit_candidates_and_dba_indexes(self, simple_schema,
                                                 simple_workload):
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        dba_index = Index("orders", ("o_customer",), include_columns=("o_total",))
        candidates = advisor.generate_candidates(simple_workload,
                                                 dba_indexes=[dba_index])
        assert dba_index in candidates
        recommendation = advisor.tune(simple_workload, candidates=candidates)
        assert recommendation.candidate_count == len(candidates)

    def test_soft_constraints_return_pareto_points(self, simple_schema,
                                                   simple_workload):
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        soft = StorageBudgetConstraint(0.0).soft(target=0.0)
        recommendation = advisor.tune(simple_workload, constraints=[soft])
        points = recommendation.extras["pareto_points"]
        assert len(points) >= 2
        assert recommendation.configuration == points[-1].configuration

    def test_explore_tradeoffs_wrapper(self, simple_schema, simple_workload):
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        soft = StorageBudgetConstraint(0.0).soft(target=0.0)
        points = advisor.explore_tradeoffs(simple_workload, [soft],
                                           lambdas=[0.0, 1.0])
        assert len(points) == 2
        assert points[0].workload_cost >= points[1].workload_cost - 1e-6


class TestInteractiveTuning:
    def test_add_candidates_retunes_without_rebuilding_inum(self, simple_schema,
                                                            simple_workload):
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        all_candidates = list(advisor.generate_candidates(simple_workload))
        initial = advisor.candidate_generator.generate(simple_workload)
        initial = initial.subset(all_candidates[: len(all_candidates) // 2])
        session = advisor.create_session(simple_workload, candidates=initial)
        first = session.recommend()
        inum_calls_after_first = advisor.inum.template_build_calls
        second = session.add_candidates(all_candidates[len(all_candidates) // 2:])
        assert advisor.inum.template_build_calls == inum_calls_after_first
        assert second.extras["warm_started"]
        assert second.timings["build"] < first.timings["build"] + 1e-3
        # More candidates can only help the objective.
        assert second.objective_estimate <= first.objective_estimate + 1e-6

    def test_retune_matches_from_scratch_quality(self, simple_schema,
                                                 simple_workload):
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        all_candidates = list(advisor.generate_candidates(simple_workload))
        half = advisor.generate_candidates(simple_workload).subset(
            all_candidates[: len(all_candidates) // 2])
        session = advisor.create_session(simple_workload, candidates=half)
        session.recommend()
        retuned = session.add_candidates(
            all_candidates[len(all_candidates) // 2:])

        fresh_advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        fresh = fresh_advisor.tune(simple_workload)
        assert retuned.objective_estimate == pytest.approx(
            fresh.objective_estimate, rel=0.02)

    def test_update_constraints_reuses_bip(self, simple_schema, simple_workload):
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        session = advisor.create_session(simple_workload)
        unconstrained = session.recommend()
        constrained = session.update_constraints([IndexCountConstraint(limit=2)])
        assert len(constrained.configuration) <= 2
        assert constrained.objective_estimate >= unconstrained.objective_estimate - 1e-6
        assert len(session.history) == 2
        assert session.last_recommendation is constrained

    def test_bip_property_requires_initial_recommendation(self, simple_schema,
                                                          simple_workload):
        advisor = make_advisor("cophy", simple_schema)
        session = advisor.create_session(simple_workload)
        with pytest.raises(Exception):
            _ = session.bip
        session.recommend()
        assert session.bip.model.variable_count > 0

    def test_add_candidates_before_recommend_falls_back_to_full_build(
            self, simple_schema, simple_workload):
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        session = advisor.create_session(simple_workload)
        extra = Index("orders", ("o_total",))
        recommendation = session.add_candidates([extra])
        assert recommendation is session.last_recommendation
        assert extra in session.candidates

    def test_remove_candidates_retunes_without_rebuilding(self, simple_schema,
                                                          simple_workload):
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        session = advisor.create_session(simple_workload)
        first = session.recommend()
        assert len(first.configuration) > 0
        inum_calls = advisor.inum.template_build_calls
        removed = list(first.configuration)[:2]

        shrunk = session.remove_candidates(removed)
        # Delta re-tune: no INUM rebuild, warm-started, retracted indexes
        # gone from both the candidate set and the recommendation.
        assert advisor.inum.template_build_calls == inum_calls
        assert shrunk.extras["warm_started"]
        for index in removed:
            assert index not in session.candidates
            assert index not in shrunk.configuration
        # Shrinking the candidate set can only hurt the objective.
        assert shrunk.objective_estimate >= first.objective_estimate - 1e-6

    def test_remove_candidates_matches_from_scratch_quality(
            self, simple_schema, simple_workload):
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        session = advisor.create_session(simple_workload)
        first = session.recommend()
        removed = list(first.configuration)[:2]
        shrunk = session.remove_candidates(removed)

        fresh_advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        survivors = [index for index in advisor.generate_candidates(simple_workload)
                     if index not in set(removed)]
        reduced = fresh_advisor.generate_candidates(simple_workload).subset(survivors)
        fresh = fresh_advisor.tune(simple_workload, candidates=reduced)
        assert shrunk.objective_estimate == pytest.approx(
            fresh.objective_estimate, rel=1e-6)

    def test_removed_candidates_can_be_restored(self, simple_schema,
                                                simple_workload):
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        session = advisor.create_session(simple_workload)
        first = session.recommend()
        variables_after_build = session.bip.model.variable_count
        removed = list(first.configuration)[:1]
        session.remove_candidates(removed)
        restored = session.add_candidates(removed)
        # Restoring drops the pin rows instead of growing the model.
        assert session.bip.model.variable_count == variables_after_build
        assert removed[0] in session.candidates
        assert restored.objective_estimate == pytest.approx(
            first.objective_estimate, rel=1e-6)

    def test_restore_after_full_rebuild_recreates_variables(self, simple_schema,
                                                            simple_workload):
        """A rebuild clears the pin registry: re-adding a candidate that was
        removed before the rebuild must create fresh variables, not no-op on
        the discarded model."""
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        session = advisor.create_session(simple_workload)
        first = session.recommend()
        removed = list(first.configuration)[:1]
        session.remove_candidates(removed)
        session.recommend()  # full rebuild without the removed candidate
        assert removed[0] not in session.bip.z_variables
        restored = session.add_candidates(removed)
        assert removed[0] in session.bip.z_variables
        assert restored.objective_estimate == pytest.approx(
            first.objective_estimate, rel=1e-6)

    def test_remove_candidates_before_recommend_falls_back(self, simple_schema,
                                                           simple_workload):
        advisor = make_advisor("cophy", simple_schema, gap_tolerance=0.0)
        session = advisor.create_session(simple_workload)
        victim = next(iter(session.candidates))
        recommendation = session.remove_candidates([victim])
        assert victim not in session.candidates
        assert victim not in recommendation.configuration
        assert recommendation is session.last_recommendation
