"""Unit tests for columns, tables, schemas and the TPC-H catalog."""

from __future__ import annotations

import pytest

from repro.catalog.column import Column, ColumnType
from repro.catalog.schema import Schema
from repro.catalog.statistics import ColumnStatistics
from repro.catalog.table import Table
from repro.catalog.tpch import TPCH_TABLE_NAMES, tpch_schema
from repro.exceptions import CatalogError


class TestColumn:
    def test_default_width_from_type(self):
        assert Column("a", ColumnType.INTEGER).width == 4
        assert Column("b", ColumnType.BIGINT).width == 8
        assert Column("c", ColumnType.VARCHAR).width == 32

    def test_explicit_width_overrides_default(self):
        assert Column("a", ColumnType.CHAR, width=1).width == 1

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Column("")

    def test_is_hashable_and_frozen(self):
        column = Column("a")
        assert column in {column}
        with pytest.raises(AttributeError):
            column.name = "b"  # type: ignore[misc]


class TestTable:
    def _table(self, **kwargs) -> Table:
        defaults = dict(
            name="t",
            columns=(Column("a"), Column("b", ColumnType.VARCHAR)),
            row_count=1_000,
        )
        defaults.update(kwargs)
        return Table(**defaults)

    def test_basic_accessors(self):
        table = self._table()
        assert table.column_names == ("a", "b")
        assert table.has_column("a")
        assert not table.has_column("missing")
        assert table.column("a").column_type is ColumnType.INTEGER

    def test_unknown_column_raises(self):
        with pytest.raises(CatalogError):
            self._table().column("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", (Column("a"), Column("a")), 10)

    def test_empty_tables_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", (), 10)
        with pytest.raises(CatalogError):
            Table("", (Column("a"),), 10)

    def test_negative_row_count_rejected(self):
        with pytest.raises(CatalogError):
            self._table(row_count=-1)

    def test_primary_key_must_exist(self):
        with pytest.raises(CatalogError):
            self._table(primary_key=("missing",))

    def test_statistics_must_reference_existing_columns(self):
        with pytest.raises(CatalogError):
            self._table(statistics={"missing": ColumnStatistics(distinct_values=3)})

    def test_default_statistics_are_synthesised(self):
        table = self._table()
        stats = table.column_statistics("a")
        assert stats.distinct_values > 0
        # The synthesised statistics are cached for later calls.
        assert table.column_statistics("a") is stats

    def test_page_count_grows_with_rows(self):
        small = self._table(row_count=1_000)
        large = self._table(row_count=100_000)
        assert large.page_count > small.page_count
        assert large.size_bytes > small.size_bytes

    def test_tuple_width_includes_overhead(self):
        table = self._table()
        assert table.tuple_width > sum(c.width for c in table.columns)


class TestSchema:
    def test_lookup_and_iteration(self, simple_schema):
        assert len(simple_schema) == 2
        assert "orders" in simple_schema
        assert "missing" not in simple_schema
        assert {t.name for t in simple_schema} == {"orders", "items"}

    def test_unknown_table_raises(self, simple_schema):
        with pytest.raises(CatalogError):
            simple_schema.table("missing")

    def test_resolve_column(self, simple_schema):
        column = simple_schema.resolve_column("orders", "o_id")
        assert column.name == "o_id"
        with pytest.raises(CatalogError):
            simple_schema.resolve_column("orders", "missing")

    def test_duplicate_tables_rejected(self, simple_schema):
        with pytest.raises(CatalogError):
            Schema(list(simple_schema.tables) + [simple_schema.table("orders")])

    def test_add_table(self, simple_schema):
        extra = Table("extra", (Column("x"),), 10)
        simple_schema.add_table(extra)
        assert "extra" in simple_schema
        with pytest.raises(CatalogError):
            simple_schema.add_table(extra)

    def test_total_size_is_sum_of_tables(self, simple_schema):
        assert simple_schema.total_size_bytes == pytest.approx(
            sum(t.size_bytes for t in simple_schema))


class TestTpchSchema:
    def test_has_all_eight_tables(self, tpch):
        assert set(tpch.table_names) == set(TPCH_TABLE_NAMES)

    def test_scale_factor_scales_fact_tables(self):
        small = tpch_schema(scale_factor=0.01)
        large = tpch_schema(scale_factor=0.1)
        assert large.table("lineitem").row_count == pytest.approx(
            10 * small.table("lineitem").row_count)
        # Tiny dimension tables are not scaled.
        assert large.table("nation").row_count == small.table("nation").row_count

    def test_cardinality_ratios_match_tpch(self, tpch):
        assert tpch.table("lineitem").row_count == pytest.approx(
            4 * tpch.table("orders").row_count)
        assert tpch.table("orders").row_count == pytest.approx(
            10 * tpch.table("customer").row_count)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            tpch_schema(scale_factor=0.0)
        with pytest.raises(ValueError):
            tpch_schema(scale_factor=1.0, skew=-1.0)

    def test_skew_changes_statistics(self, tpch, tpch_skewed):
        uniform_stats = tpch.table("lineitem").column_statistics("l_shipdate")
        skewed_stats = tpch_skewed.table("lineitem").column_statistics("l_shipdate")
        assert skewed_stats.skew_factor() > uniform_stats.skew_factor()

    def test_primary_keys_declared(self, tpch):
        assert tpch.table("orders").primary_key == ("o_orderkey",)
        assert tpch.table("lineitem").primary_key == ("l_orderkey", "l_linenumber")

    def test_every_statistic_refers_to_real_column(self, tpch):
        for table in tpch:
            for column_name in table.statistics:
                assert table.has_column(column_name)
