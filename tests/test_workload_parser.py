"""Tests for the SQL-subset parser."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError
from repro.workload.parser import parse_statement, parse_workload
from repro.workload.predicates import ColumnRef, ComparisonOperator
from repro.workload.query import AggregateFunction, SelectQuery, UpdateQuery


class TestSelectParsing:
    def test_simple_select(self):
        query = parse_statement(
            "SELECT orders.o_total FROM orders WHERE orders.o_customer = 42")
        assert isinstance(query, SelectQuery)
        assert query.tables == ("orders",)
        assert query.projections == (ColumnRef("orders", "o_total"),)
        predicate = query.predicates[0]
        assert predicate.operator is ComparisonOperator.EQ
        assert predicate.value == 42

    def test_join_and_group_order(self):
        query = parse_statement(
            "SELECT orders.o_date, sum(items.i_price) "
            "FROM orders, items "
            "WHERE orders.o_id = items.i_order AND items.i_quantity > 10 "
            "GROUP BY orders.o_date ORDER BY orders.o_date")
        assert set(query.tables) == {"orders", "items"}
        assert len(query.joins) == 1
        assert query.joins[0].left.table != query.joins[0].right.table
        assert query.group_by == (ColumnRef("orders", "o_date"),)
        assert query.order_by == (ColumnRef("orders", "o_date"),)
        assert query.aggregates[0].function is AggregateFunction.SUM
        assert query.predicates[0].operator is ComparisonOperator.GT

    def test_between_in_like_isnull(self):
        query = parse_statement(
            "SELECT t.a FROM t WHERE t.a BETWEEN 1 AND 5 AND t.b IN (1, 2, 3) "
            "AND t.c LIKE 'x%' AND t.d IS NULL")
        operators = [p.operator for p in query.predicates]
        assert operators == [ComparisonOperator.BETWEEN, ComparisonOperator.IN,
                             ComparisonOperator.LIKE, ComparisonOperator.IS_NULL]
        assert query.predicates[0].value == (1, 5)
        assert query.predicates[1].value == (1, 2, 3)

    def test_count_star_and_float_literals(self):
        query = parse_statement(
            "SELECT count(*) FROM t WHERE t.x <= 3.5")
        assert query.aggregates[0].function is AggregateFunction.COUNT
        assert query.aggregates[0].column is None
        assert query.predicates[0].value == pytest.approx(3.5)

    def test_string_literal_with_escaped_quote(self):
        query = parse_statement("SELECT t.a FROM t WHERE t.b = 'O''Brien'")
        assert query.predicates[0].value == "O'Brien"

    def test_unqualified_columns_resolved_against_schema(self, simple_schema):
        query = parse_statement(
            "SELECT o_total FROM orders WHERE o_customer = 7", schema=simple_schema)
        assert query.projections == (ColumnRef("orders", "o_total"),)
        assert query.predicates[0].column == ColumnRef("orders", "o_customer")

    def test_unqualified_columns_without_schema_fail(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT o_total FROM orders")

    def test_unknown_column_with_schema_fails(self, simple_schema):
        with pytest.raises(ParseError):
            parse_statement("SELECT nope FROM orders", schema=simple_schema)

    def test_join_detection_with_schema_resolution(self, simple_schema):
        query = parse_statement(
            "SELECT o_date FROM orders, items WHERE o_id = i_order",
            schema=simple_schema)
        assert len(query.joins) == 1
        assert query.joins[0].left == ColumnRef("orders", "o_id")
        assert query.joins[0].right == ColumnRef("items", "i_order")

    def test_statement_name_is_carried(self):
        query = parse_statement("SELECT t.a FROM t", name="Q1#7")
        assert query.name == "Q1#7"


class TestUpdateParsing:
    def test_simple_update(self):
        query = parse_statement(
            "UPDATE orders SET orders.o_status = 3 WHERE orders.o_date < 100")
        assert isinstance(query, UpdateQuery)
        assert query.table == "orders"
        assert query.set_columns == (ColumnRef("orders", "o_status"),)
        assert query.predicates[0].operator is ComparisonOperator.LT

    def test_update_with_schema_resolution(self, simple_schema):
        query = parse_statement(
            "UPDATE orders SET o_status = 1 WHERE o_total >= 500",
            schema=simple_schema)
        assert isinstance(query, UpdateQuery)
        assert query.set_columns == (ColumnRef("orders", "o_status"),)

    def test_update_with_join_rejected(self):
        with pytest.raises(ParseError):
            parse_statement(
                "UPDATE orders SET orders.o_status = 1 "
                "WHERE orders.o_id = items.i_order")


class TestParserErrors:
    @pytest.mark.parametrize("sql", [
        "DELETE FROM t",
        "SELECT FROM t",
        "SELECT t.a FROM",
        "SELECT t.a FROM t WHERE",
        "SELECT t.a FROM t WHERE t.a ><= 3",
        "SELECT t.a FROM t WHERE t.a BETWEEN 1",
        "SELECT t.a FROM t WHERE t.a IN ()",
        "UPDATE t SET WHERE t.a = 1",
    ])
    def test_rejects_malformed_statements(self, sql):
        with pytest.raises(ParseError):
            parse_statement(sql)

    def test_rejects_garbage_tokens(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT t.a FROM t WHERE t.a = @@@")


class TestParseWorkload:
    def test_builds_weighted_workload(self, simple_schema):
        workload = parse_workload(
            ["SELECT o_total FROM orders WHERE o_customer = 1",
             "UPDATE orders SET o_status = 2 WHERE o_id = 5"],
            schema=simple_schema, weights=[3.0, 1.0])
        assert len(workload) == 2
        assert workload.statements[0].weight == 3.0
        assert len(workload.update_statements()) == 1

    def test_weight_mismatch_rejected(self, simple_schema):
        with pytest.raises(ParseError):
            parse_workload(["SELECT o_total FROM orders"], schema=simple_schema,
                           weights=[1.0, 2.0])
