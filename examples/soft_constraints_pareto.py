"""Soft constraints and the storage/cost Pareto curve (section 4.1, Figure 6(c)).

Instead of a hard storage budget the DBA declares storage a *soft* constraint:
the advisor then produces a set of Pareto-optimal recommendations trading
total index storage against workload cost, computed with the Chord algorithm
so that only a handful of BIP solves are needed.  Through the unified API the
soft constraint simply rides in ``TuningRequest.constraints``; the primary
recommendation comes back as the ``TuningResult`` and the full curve under
``result.extras["pareto_points"]``.

Run with:  python examples/soft_constraints_pareto.py
"""

from __future__ import annotations

from repro import StorageBudgetConstraint, Tuner, TuningRequest, WhatIfOptimizer
from repro.bench import speedup_percent
from repro.catalog import tpch_schema
from repro.workload import generate_homogeneous_workload


def main() -> None:
    schema = tpch_schema(scale_factor=0.01)
    workload = generate_homogeneous_workload(30, seed=19)
    evaluation = WhatIfOptimizer(schema)

    # "Total index storage should ideally be zero" — i.e. every byte of index
    # storage has to pay for itself in workload-cost reduction.
    soft_storage = StorageBudgetConstraint(0.0).soft(target=0.0)

    # One declarative request; the Chord algorithm picks the lambda values.
    result = Tuner().tune(TuningRequest(
        workload=workload, schema=schema, constraints=[soft_storage],
        request_id="pareto"))
    points = result.extras["pareto_points"]

    print("Pareto-optimal trade-off between index storage and workload cost:")
    print(f"{'lambda':>8} {'storage MB':>12} {'workload cost':>15} "
          f"{'speedup %':>10} {'indexes':>8} {'solve s':>8}")
    for point in points:
        speedup = speedup_percent(evaluation, workload, point.configuration)
        print(f"{point.lambda_value:8.3f} {point.measure / 1e6:12.2f} "
              f"{point.workload_cost:15.1f} {speedup:10.1f} "
              f"{len(point.configuration):8d} {point.solve_seconds:8.3f}")

    print(f"\nPrimary recommendation (cost-optimal end of the curve): "
          f"{result.index_count} indexes, objective "
          f"{result.objective_estimate:.1f}")
    print("Reading the curve: small lambda favours a tiny design (few or no "
          "indexes), large lambda favours raw workload cost; the DBA picks the "
          "knee that matches the storage they are willing to spend.")


if __name__ == "__main__":
    main()
