"""Fault-tolerant tuning: injected crashes, retries, overload and recovery.

PR 7 threads one reliability layer through the stack:

* a deterministic, seeded **fault-injection harness** (``FaultPlan``) that
  can crash, stall or kill the process at named fault sites — the same
  schedule replays exactly, so a failing chaos run is debuggable;
* one reusable **retry policy** (exponential backoff + jitter, deadline
  aware) shared by the shard executor, the matrix builders and the HTTP
  client;
* **admission control** (``max_pending`` → 429 + ``Retry-After``) and
  **graceful degradation** (a shard that fails every retry is dropped and
  the recommendation is merged over the survivors, flagged ``degraded``).

The contract this example demonstrates: *a survived fault never changes the
recommendation, only the timing.*

Run with:  python examples/resilient_tuning.py
"""

from __future__ import annotations

import threading

from repro import StorageBudgetConstraint, Tuner, TuningRequest
from repro.api import AdvisorSpec, TuningService
from repro.catalog import tpch_schema
from repro.exceptions import ServerOverloaded
from repro.reliability import FaultPlan, FaultRule, RetryPolicy
from repro.server import TuningClient, TuningServer
from repro.server.protocol import TuningServerUnavailable
from repro.workload import generate_homogeneous_workload

#: Fast backoff so the demo's recoveries take milliseconds, not seconds.
FAST_RETRIES = RetryPolicy(max_attempts=3, base_delay_s=0.01,
                           cap_delay_s=0.1, seed=0)


def main() -> None:
    schema = tpch_schema(scale_factor=0.005)
    workload = generate_homogeneous_workload(16, seed=3)
    constraints = [StorageBudgetConstraint.from_fraction_of_data(
        schema, fraction=0.5)]

    def request(request_id: str, remote: bool = False) -> TuningRequest:
        # The executor's RetryPolicy is a live object with no wire form —
        # retry schedules are a server-side deployment concern, so remote
        # requests simply omit the option and get the server's default.
        options = {"shard_count": 2, "shard_workers": 1,
                   "gap_tolerance": 0.0}
        if not remote:
            options["retry_policy"] = FAST_RETRIES
        return TuningRequest(
            workload=workload, schema=schema, constraints=constraints,
            advisor=AdvisorSpec("scaleout", options), request_id=request_id)

    # 1. A crash the retry layer absorbs: shard 0's first solve attempt
    #    raises an injected fault; the retry reruns it and — because fault
    #    checks fire before any optimizer work — the recovered run is
    #    *bit-identical* to a fault-free one.
    # Identical request ids: the fingerprint covers provenance, and the
    # point is that the *same* request recovers to the *same* result.
    clean = Tuner().tune(request("resilient-parity"))
    crash_once = FaultPlan([FaultRule(site="shard_solve", key="0",
                                      attempts=(1,))])
    recovered = Tuner(fault_plan=crash_once).tune(request("resilient-parity"))
    assert recovered.fingerprint() == clean.fingerprint()
    print(f"crash+retry: fingerprints identical "
          f"({recovered.fingerprint()[:12]}…), "
          f"retries={recovered.diagnostics.retries}, "
          f"faults survived={recovered.diagnostics.faults_survived}")

    # 2. A shard that fails *every* attempt: instead of raising, the advisor
    #    merges over the surviving shards and flags the result degraded —
    #    a partial recommendation beats none at all.
    crash_always = FaultPlan([FaultRule(site="shard_solve", key="1",
                                        attempts=None)])
    degraded = Tuner(fault_plan=crash_always).tune(request("resilient-lost"))
    assert degraded.diagnostics.degraded
    assert degraded.extras["faults"]["failed_shards"] == [1]
    print(f"degradation: shard 1 lost after "
          f"{degraded.diagnostics.retries} retries, merged "
          f"{degraded.index_count} indexes from the surviving shard "
          f"(degraded={degraded.diagnostics.degraded})")

    # 3. Admission control over the wire: a full server answers 429 with a
    #    Retry-After hint.  A client without retries sees the typed error;
    #    a client with the default policy backs off, honours the hint and
    #    succeeds once the overload clears.
    with TuningServer(service=TuningService(max_pending=0,
                                            retry_after_s=0.2)) as server:
        impatient = TuningClient(server.url, retry_policy=None,
                                 fault_plan=FaultPlan())
        try:
            impatient.tune(request("resilient-rejected", remote=True))
        except ServerOverloaded as exc:
            print(f"overload: rejected with 429, "
                  f"retry after {exc.retry_after_s} s")

        # The overload clears while the patient client is backing off.
        threading.Timer(0.3, lambda: setattr(
            server.service, "max_pending", None)).start()
        patient = TuningClient(
            server.url, fault_plan=FaultPlan(),
            retry_policy=RetryPolicy(max_attempts=5, base_delay_s=0.05,
                                     seed=1))
        remote = patient.tune(request("resilient-backoff", remote=True))
        stats = server.service.stats()
        print(f"backoff:  succeeded after "
              f"{stats['rejected_overload']} rejection(s); "
              f"served={stats['requests_served']}")
        assert remote.configuration == clean.configuration

    # 4. Transport failures are typed: an unreachable server raises
    #    TuningServerUnavailable (status 0), not a generic error buried in
    #    a urllib traceback.
    try:
        TuningClient("http://127.0.0.1:9", timeout=2,
                     retry_policy=None).health()
    except TuningServerUnavailable as exc:
        print(f"transport: typed {type(exc).__name__} "
              f"(status={exc.status}) for an unreachable server")


if __name__ == "__main__":
    main()
