"""Quickstart: tune a TPC-H workload through the unified tuning API.

Builds the synthetic TPC-H catalog, generates a homogeneous workload (the
paper's ``W_hom``), describes the tuning problem as one declarative
``TuningRequest``, serves it through ``Tuner.tune()`` and inspects the
uniform ``TuningResult`` — recommendation, per-statement costs, solver
diagnostics and the machine-readable provenance of the resolved pipeline —
before evaluating the recommendation against the clustered-primary-key
baseline with the ground-truth what-if optimizer.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import StorageBudgetConstraint, Tuner, TuningRequest, WhatIfOptimizer
from repro.bench import perf_improvement, speedup_percent
from repro.catalog import tpch_schema
from repro.workload import generate_homogeneous_workload


def main() -> None:
    # 1. The database: a TPC-H catalog (statistics only, no tuples needed).
    schema = tpch_schema(scale_factor=0.01)
    print(f"Catalog: {schema.name} with {len(schema)} tables, "
          f"{schema.total_size_bytes / 1e6:.1f} MB of data")

    # 2. The workload: 40 statements drawn from 15 TPC-H-like templates,
    #    with ~10% UPDATE statements mixed in.
    workload = generate_homogeneous_workload(40, seed=7)
    print(f"Workload: {workload.summary()}")

    # 3. The request: everything the tune needs, declaratively.  The advisor
    #    defaults to CoPhy (CGen -> INUM -> BIPGen -> BIP solver, Figure 2 of
    #    the paper); swap in advisor="dta" / "tool-a" / "ilp" / "scaleout" to
    #    run any other registered strategy through the same call.
    request = TuningRequest(
        workload=workload,
        schema=schema,
        constraints=[StorageBudgetConstraint.from_fraction_of_data(
            schema, fraction=1.0)],
        request_id="quickstart",
    )
    result = Tuner().tune(request)

    diagnostics = result.diagnostics
    print(f"\nCoPhy examined {diagnostics.candidate_count} candidate indexes "
          f"using {diagnostics.whatif_calls} optimizer calls and recommended "
          f"{result.index_count} of them:")
    for index in sorted(result.configuration, key=lambda i: i.name):
        print(f"  {index}")

    timings = diagnostics.timings
    print(f"\nTime breakdown: INUM {timings['inum']:.2f}s, "
          f"BIP build {timings['build']:.2f}s, solve {timings['solve']:.2f}s "
          f"(total {timings['total']:.2f}s; facade overhead "
          f"{timings['facade.total'] - timings['total']:.3f}s)")

    # 4. The uniform result: per-statement INUM costs under the chosen
    #    configuration, and a provenance record of the resolved pipeline.
    costly = sorted(result.statement_costs, key=lambda s: -s.weight * s.cost)
    print("\nMost expensive statements under the recommendation:")
    for entry in costly[:3]:
        print(f"  {entry.statement:<14} weight={entry.weight:g} "
              f"cost={entry.cost:.1f}")
    advisor = result.provenance["advisor"]
    print(f"\nProvenance: advisor={advisor['name']} ({advisor['class']}), "
          f"gap={diagnostics.gap:.3f}, "
          f"serialized payload={len(result.to_json())} JSON bytes, "
          f"fingerprint={result.fingerprint()[:16]}…")

    # 5. Evaluation: how much cheaper is the workload under the recommendation,
    #    measured with a fresh what-if optimizer (the ground truth)?
    evaluation = WhatIfOptimizer(schema)
    perf = perf_improvement(evaluation, workload, result.configuration)
    print(f"\nWorkload cost reduction vs the clustered-PK baseline: "
          f"{speedup_percent(evaluation, workload, result.configuration):.1f}% "
          f"(perf = {perf:.3f})")


if __name__ == "__main__":
    main()
