"""Quickstart: tune a TPC-H workload with CoPhy.

Builds the synthetic TPC-H catalog, generates a homogeneous workload (the
paper's ``W_hom``), runs the CoPhy advisor under a storage budget of 1x the
data size, and evaluates the recommendation against the clustered-primary-key
baseline with the ground-truth what-if optimizer.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CoPhyAdvisor, StorageBudgetConstraint, WhatIfOptimizer
from repro.bench import perf_improvement, speedup_percent
from repro.catalog import tpch_schema
from repro.workload import generate_homogeneous_workload


def main() -> None:
    # 1. The database: a TPC-H catalog (statistics only, no tuples needed).
    schema = tpch_schema(scale_factor=0.01)
    print(f"Catalog: {schema.name} with {len(schema)} tables, "
          f"{schema.total_size_bytes / 1e6:.1f} MB of data")

    # 2. The workload: 40 statements drawn from 15 TPC-H-like templates,
    #    with ~10% UPDATE statements mixed in.
    workload = generate_homogeneous_workload(40, seed=7)
    print(f"Workload: {workload.summary()}")

    # 3. The advisor: CGen -> INUM -> BIPGen -> BIP solver (Figure 2 of the paper).
    advisor = CoPhyAdvisor(schema)
    budget = StorageBudgetConstraint.from_fraction_of_data(schema, fraction=1.0)
    recommendation = advisor.tune(workload, constraints=[budget])

    print(f"\nCoPhy examined {recommendation.candidate_count} candidate indexes "
          f"using {recommendation.whatif_calls} optimizer calls and recommended "
          f"{recommendation.index_count} of them:")
    for index in sorted(recommendation.configuration, key=lambda i: i.name):
        print(f"  {index}")

    timings = recommendation.timings
    print(f"\nTime breakdown: INUM {timings['inum']:.2f}s, "
          f"BIP build {timings['build']:.2f}s, solve {timings['solve']:.2f}s "
          f"(total {timings['total']:.2f}s)")

    # 4. Evaluation: how much cheaper is the workload under the recommendation,
    #    measured with a fresh what-if optimizer (the ground truth)?
    evaluation = WhatIfOptimizer(schema)
    perf = perf_improvement(evaluation, workload, recommendation.configuration)
    print(f"\nWorkload cost reduction vs the clustered-PK baseline: "
          f"{speedup_percent(evaluation, workload, recommendation.configuration):.1f}% "
          f"(perf = {perf:.3f})")


if __name__ == "__main__":
    main()
