"""Concurrent tuning traffic through one TuningService.

A production tuning service fields many requests at once: different DBAs,
different workloads, different strategies — all against the same catalogs.
This example drives a ``TuningService`` with a batch of parallel ``tune()``
calls and shows the two properties the service guarantees:

* **cache sharing** — requests against the same schema resolve to one shared
  INUM cache, so templates, gamma matrices and workload tensors built for the
  first request are reused by every later one (watch the template-build
  counter stop moving);
* **determinism** — per-request results are independent of how concurrent
  requests interleave: the batch is re-run through an isolated single-request
  tuner per request and every recommendation must match bit for bit.

Run with:  python examples/service_concurrency.py
"""

from __future__ import annotations

import time

from repro import (
    AdvisorSpec,
    StorageBudgetConstraint,
    Tuner,
    TuningRequest,
    TuningService,
)
from repro.catalog import tpch_schema
from repro.workload import (
    generate_heterogeneous_workload,
    generate_homogeneous_workload,
)


def build_requests(schema) -> list[TuningRequest]:
    """A mixed batch: several strategies over two workloads, one schema."""
    hom = generate_homogeneous_workload(30, seed=23)
    het = generate_heterogeneous_workload(20, seed=23)
    budget = StorageBudgetConstraint.from_fraction_of_data(schema, 1.0)
    tight = StorageBudgetConstraint.from_fraction_of_data(schema, 0.25)
    return [
        TuningRequest(workload=hom, schema=schema, constraints=[budget],
                      advisor="cophy", request_id="cophy/hom"),
        TuningRequest(workload=hom, schema=schema, constraints=[tight],
                      advisor="cophy", request_id="cophy/hom/tight"),
        TuningRequest(workload=hom, schema=schema, constraints=[budget],
                      advisor="dta", request_id="dta/hom"),
        TuningRequest(workload=het, schema=schema, constraints=[budget],
                      advisor="cophy", request_id="cophy/het"),
        TuningRequest(workload=het, schema=schema, constraints=[budget],
                      advisor=AdvisorSpec("tool-a"), request_id="tool-a/het"),
        TuningRequest(workload=hom, schema=schema, constraints=[budget],
                      advisor="cophy", request_id="cophy/hom/repeat"),
    ]


def main() -> None:
    schema = tpch_schema(scale_factor=0.01)

    # 1. Serve the whole batch concurrently on one service.
    service = TuningService(max_workers=4)
    requests = build_requests(schema)
    started = time.perf_counter()
    results = service.tune_many(requests)
    elapsed = time.perf_counter() - started

    context = service.context_for(schema)
    print(f"Served {len(requests)} concurrent requests in {elapsed:.2f}s "
          f"on one shared context:")
    print(f"  shared cache: {context.inum.cached_query_count} query shells, "
          f"{context.inum.template_build_calls} template-build calls total")
    for request, result in zip(requests, results):
        print(f"  {request.request_id:<18} -> {result.index_count:>2} indexes, "
              f"objective {result.objective_estimate:12.1f}, "
              f"{result.diagnostics.whatif_calls:>4} optimizer calls")

    # 2. The repeat request found everything cached: same recommendation,
    #    no new template builds.
    first, repeat = results[0], results[-1]
    assert first.configuration == repeat.configuration
    print(f"\nRepeat request reused the cache: "
          f"{repeat.diagnostics.whatif_calls} optimizer calls "
          f"(first run needed {first.diagnostics.whatif_calls})")

    # 3. Determinism: isolated single-request runs must reproduce every
    #    concurrent result bit for bit.
    mismatches = 0
    for request, concurrent in zip(requests, results):
        isolated = Tuner().tune(request)
        if (isolated.configuration != concurrent.configuration
                or isolated.objective_estimate
                != concurrent.objective_estimate):
            mismatches += 1
    print(f"\nDeterminism check: {len(requests) - mismatches}/{len(requests)} "
          f"concurrent results identical to isolated runs")
    assert mismatches == 0
    service.close()


if __name__ == "__main__":
    main()
