"""Observability end to end: one request, one trace, one scrape.

Sends a single scale-out tuning request through ``TuningClient`` against an
in-process ``TuningServer`` under a caller-chosen trace id, then shows the
three faces of the observability layer (PR 8):

1. **Tracing** — the result carries the server-side span tree in
   ``result.extras["trace"]``, under the *client's* trace id: facade ->
   advisor stages -> per-shard solves (including spans recorded inside
   worker processes and grafted back).  Printed as an indented tree with
   durations.
2. **Metrics** — ``GET /v1/metrics`` serves the server's registry in
   Prometheus text exposition format; a few request/solver/cache series are
   shown.
3. **Structured logs** — ``configure_logging`` turns on the JSON log stream;
   every event carries the correlating trace id.

Run with:  python examples/observed_tuning.py
"""

from __future__ import annotations

from urllib.request import urlopen

from repro import StorageBudgetConstraint, TuningRequest
from repro.api import AdvisorSpec
from repro.catalog import tpch_schema
from repro.obs import configure_logging, trace_context
from repro.server import TuningClient, TuningServer
from repro.workload import generate_homogeneous_workload


def print_span(node: dict, depth: int = 0) -> None:
    """One line per span: name, duration, and the interesting attributes."""
    attrs = ", ".join(f"{key}={value}" for key, value in node["attrs"].items())
    print(f"  {'  ' * depth}{node['name']:<{24 - 2 * depth}} "
          f"{node['duration_ms']:>9.2f} ms   {attrs}")
    for child in node["children"]:
        print_span(child, depth + 1)


def main() -> None:
    # JSON logs on stderr; INFO shows retries/degradations, DEBUG adds
    # per-span start/end events. Also reachable via $REPRO_LOG_LEVEL and the
    # server CLI's --log-level.
    configure_logging("INFO")

    schema = tpch_schema(scale_factor=0.01)
    workload = generate_homogeneous_workload(24, seed=11)
    request = TuningRequest(
        workload=workload,
        schema=schema,
        constraints=[StorageBudgetConstraint.from_fraction_of_data(
            schema, fraction=1.0)],
        advisor=AdvisorSpec("scaleout", {"shard_count": 2,
                                         "shard_workers": 2}),
        request_id="observed-tuning",
    )

    with TuningServer(namespace_statements=True) as server:
        client = TuningClient(server.url)

        # One trace id chosen by the caller spans the whole request: it
        # travels in the X-Repro-Trace-Id header, the server adopts it for
        # the pipeline (down into the shard worker processes), and the
        # exported span tree comes back under it.
        with trace_context() as trace_id:
            result = client.tune(request)

        trace = result.extras["trace"]
        assert trace["trace_id"] == trace_id, "one trace id, end to end"
        print(f"Tuned remotely: {result.index_count} indexes, objective "
              f"{result.objective_estimate:.1f}")
        print(f"\nTrace {trace['trace_id']}:")
        print_span(trace["root"])

        # The Prometheus scrape: request counters, end-to-end latency,
        # solver outcomes, cache hit/miss series, HTTP route counters.
        with urlopen(server.url + "/v1/metrics") as response:
            exposition = response.read().decode("utf-8")
        interesting = ("repro_requests_total", "repro_solver_solves_total",
                       "repro_cache_events_total", "repro_http_requests_total")
        print("\n/v1/metrics (excerpt):")
        for line in exposition.splitlines():
            if line.startswith(interesting):
                print(f"  {line}")

    print("\nServer closed; trace, metrics and logs all came from one request.")


if __name__ == "__main__":
    main()
