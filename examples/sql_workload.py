"""Tune a workload written as SQL text.

The other examples build workloads with the structural generators; this one
goes through the bundled SQL-subset parser instead, which is how a DBA would
feed a captured query log into the advisor.  It also shows early termination:
the solver is tuned to return the first solution within 5% of the optimum.

Run with:  python examples/sql_workload.py
"""

from __future__ import annotations

from repro import (
    AdvisorSpec,
    StorageBudgetConstraint,
    Tuner,
    TuningRequest,
    WhatIfOptimizer,
)
from repro.bench import speedup_percent
from repro.catalog import tpch_schema
from repro.workload import parse_workload

SQL_STATEMENTS = [
    # Revenue for recently shipped items of a given brand.
    """SELECT sum(l_extendedprice) FROM lineitem, part
       WHERE l_partkey = p_partkey AND p_brand = 12
         AND l_shipdate BETWEEN 2300 AND 2400""",
    # Orders of a customer segment, most valuable first.
    """SELECT o_orderdate, o_totalprice FROM customer, orders
       WHERE c_custkey = o_custkey AND c_mktsegment = 2
         AND o_orderdate < 700
       ORDER BY o_totalprice""",
    # Open-order count per priority bucket.
    """SELECT o_orderpriority, count(*) FROM orders
       WHERE o_orderdate BETWEEN 800 AND 890
       GROUP BY o_orderpriority ORDER BY o_orderpriority""",
    # Supplier balances in a nation.
    """SELECT s_name, s_acctbal FROM supplier, nation
       WHERE s_nationkey = n_nationkey AND n_name = 7 AND s_acctbal >= 9000""",
    # Line items per shipping mode.
    """SELECT l_shipmode, count(*) FROM lineitem
       WHERE l_receiptdate BETWEEN 2000 AND 2180
       GROUP BY l_shipmode""",
    # Discount correction on a small slice of line items.
    """UPDATE lineitem SET l_discount = 0 WHERE l_shipdate BETWEEN 2520 AND 2526""",
    # Restock low-availability part/supplier pairs.
    """UPDATE partsupp SET ps_availqty = 1000 WHERE ps_availqty <= 25""",
]

#: Execution frequencies (the weights f_q of the paper).
WEIGHTS = [120.0, 80.0, 40.0, 25.0, 60.0, 10.0, 5.0]


def main() -> None:
    schema = tpch_schema(scale_factor=0.01)
    workload = parse_workload(SQL_STATEMENTS, schema=schema, weights=WEIGHTS,
                              name="captured-sql-log")
    print(f"Parsed workload: {workload.summary()}")

    budget = StorageBudgetConstraint.from_fraction_of_data(schema, 0.5)
    result = Tuner().tune(TuningRequest(
        workload=workload, schema=schema, constraints=[budget],
        # Stop within 5% of the optimum (early termination).
        advisor=AdvisorSpec("cophy", {"gap_tolerance": 0.05})))

    print(f"\nRecommended indexes (gap at termination: "
          f"{result.diagnostics.gap:.2%}):")
    for index in sorted(result.configuration, key=lambda i: i.name):
        print(f"  {index}")

    evaluation = WhatIfOptimizer(schema)
    print(f"\nWeighted workload speedup vs the clustered-PK baseline: "
          f"{speedup_percent(evaluation, workload, result.configuration):.1f}%")


if __name__ == "__main__":
    main()
