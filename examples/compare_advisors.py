"""Compare CoPhy against the paper's baselines on the same tuning problem.

Runs CoPhy, the ILP formulation of Papadomanolakis & Ailamaki, a Tool-A-like
relaxation advisor and a Tool-B-like advisor with workload compression on a
homogeneous and a heterogeneous workload, and prints quality (speedup over the
clustered-PK baseline), candidate counts, what-if calls and running times —
the quantities behind Table 1 and Figures 4/7/9 of the paper.

Every advisor is resolved from the registry and served through one ``Tuner``
as a declarative ``TuningRequest`` batch (``compare_requests``), so the whole
sweep shares one INUM cache per schema instead of rebuilding templates per
advisor.

Run with:  python examples/compare_advisors.py
"""

from __future__ import annotations

from repro import StorageBudgetConstraint, Tuner, TuningRequest, WhatIfOptimizer
from repro.bench import compare_requests, format_table
from repro.catalog import tpch_schema
from repro.workload import (
    generate_heterogeneous_workload,
    generate_homogeneous_workload,
)

ADVISORS = ("cophy", "ilp", "relaxation", "dta")


def main() -> None:
    schema = tpch_schema(scale_factor=0.01)
    evaluation = WhatIfOptimizer(schema)
    budget = StorageBudgetConstraint.from_fraction_of_data(schema, 1.0)

    workloads = {
        "homogeneous (W_hom)": generate_homogeneous_workload(30, seed=23),
        "heterogeneous (W_het)": generate_heterogeneous_workload(30, seed=23),
    }

    tuner = Tuner()
    for label, workload in workloads.items():
        requests = [
            TuningRequest(workload=workload, schema=schema,
                          constraints=[budget], advisor=name,
                          request_id=f"{label}/{name}")
            for name in ADVISORS
        ]
        result = compare_requests(tuner, requests, evaluation, name=label)
        print(format_table(result.rows(), title=f"\n=== {label} ==="))
        print(f"CoPhy / Tool-A quality ratio: "
              f"{result.perf_ratio('cophy', 'tool-a'):.2f}")
        print(f"CoPhy / Tool-B quality ratio: "
              f"{result.perf_ratio('cophy', 'tool-b'):.2f}")
        print(f"Tool-A / CoPhy time ratio:    "
              f"{result.time_ratio('tool-a', 'cophy'):.1f}x")
        print(f"ILP / CoPhy time ratio:       "
              f"{result.time_ratio('ilp', 'cophy'):.1f}x")


if __name__ == "__main__":
    main()
