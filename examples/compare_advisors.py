"""Compare CoPhy against the paper's baselines on the same tuning problem.

Runs CoPhy, the ILP formulation of Papadomanolakis & Ailamaki, a Tool-A-like
relaxation advisor and a Tool-B-like advisor with workload compression on a
homogeneous and a heterogeneous workload, and prints quality (speedup over the
clustered-PK baseline), candidate counts, what-if calls and running times —
the quantities behind Table 1 and Figures 4/7/9 of the paper.

Run with:  python examples/compare_advisors.py
"""

from __future__ import annotations

from repro import (
    CoPhyAdvisor,
    DtaAdvisor,
    IlpAdvisor,
    RelaxationAdvisor,
    StorageBudgetConstraint,
    WhatIfOptimizer,
)
from repro.bench import compare_advisors, format_table
from repro.catalog import tpch_schema
from repro.workload import (
    generate_heterogeneous_workload,
    generate_homogeneous_workload,
)


def main() -> None:
    schema = tpch_schema(scale_factor=0.01)
    evaluation = WhatIfOptimizer(schema)
    budget = StorageBudgetConstraint.from_fraction_of_data(schema, 1.0)

    workloads = {
        "homogeneous (W_hom)": generate_homogeneous_workload(30, seed=23),
        "heterogeneous (W_het)": generate_heterogeneous_workload(30, seed=23),
    }

    for label, workload in workloads.items():
        advisors = [
            CoPhyAdvisor(schema),
            IlpAdvisor(schema),
            RelaxationAdvisor(schema),
            DtaAdvisor(schema),
        ]
        result = compare_advisors(advisors, evaluation, workload, [budget],
                                  name=label)
        print(format_table(result.rows(), title=f"\n=== {label} ==="))
        print(f"CoPhy / Tool-A quality ratio: "
              f"{result.perf_ratio('cophy', 'tool-a'):.2f}")
        print(f"CoPhy / Tool-B quality ratio: "
              f"{result.perf_ratio('cophy', 'tool-b'):.2f}")
        print(f"Tool-A / CoPhy time ratio:    "
              f"{result.time_ratio('tool-a', 'cophy'):.1f}x")
        print(f"ILP / CoPhy time ratio:       "
              f"{result.time_ratio('ilp', 'cophy'):.1f}x")


if __name__ == "__main__":
    main()
