"""Scale-out tuning: compress a large workload, shard the BIP, merge winners.

Builds a 200-statement mixed workload (TPC-H template instantiations plus
ad-hoc SPJ statements and updates), tunes it with the monolithic CoPhy
advisor and with the scale-out pipeline (PR 3) — workload compression into
weighted representatives, interaction-graph sharding with a water-filled
budget split, per-shard solves and a merge BIP — and compares wall-clock
time and evaluated recommendation quality.

Run with:  python examples/scaleout_tuning.py
"""

from __future__ import annotations

import os
import time

from repro import (
    ScaleSpec,
    StorageBudgetConstraint,
    Tuner,
    TuningRequest,
)
from repro.catalog import tpch_schema
from repro.inum import InumCache
from repro.optimizer import WhatIfOptimizer
from repro.workload import (
    Workload,
    generate_heterogeneous_workload,
    generate_homogeneous_workload,
)


def main() -> None:
    # 1. The database and a workload too large to enjoy one monolithic solve:
    #    170 templated statements (compressible) + 30 ad-hoc shapes (not).
    schema = tpch_schema(scale_factor=0.01)
    templated = generate_homogeneous_workload(170, seed=42)
    adhoc = generate_heterogeneous_workload(30, seed=43)
    workload = Workload([*templated.statements, *adhoc.statements],
                        name="W_mixed_200")
    print(f"Workload: {workload.summary()}")
    budget = StorageBudgetConstraint.from_fraction_of_data(schema, fraction=0.5)

    # Monolithic and scale-out runs use separate tuners on purpose: sharing
    # one context would let the second run free-ride on the first run's
    # template builds and distort the timing comparison.
    # 2. The monolithic reference: one BIP over all 200 statements.
    started = time.perf_counter()
    monolithic = Tuner().tune(TuningRequest(
        workload=workload, schema=schema, constraints=[budget],
        per_statement_costs=False, request_id="monolithic"))
    monolithic_seconds = time.perf_counter() - started
    timings = monolithic.diagnostics.timings
    print(f"\nMonolithic BIP: {monolithic.index_count} indexes in "
          f"{monolithic_seconds:.2f}s "
          f"(inum {timings['inum']:.2f}s, "
          f"build {timings['build']:.2f}s, "
          f"solve {timings['solve']:.2f}s)")

    # 3. The scale-out pipeline: compress (relative cost-error bound 1.0,
    #    i.e. log2 buckets), split into 4 shards, solve them on all cores,
    #    merge the winners under the global budget.  A ScaleSpec on the
    #    request is all it takes — the scale-out advisor is implied.
    started = time.perf_counter()
    scaled = Tuner().tune(TuningRequest(
        workload=workload, schema=schema, constraints=[budget],
        scale=ScaleSpec(signature="structural", max_cost_error=1.0,
                        shard_count=4, shard_workers=os.cpu_count()),
        request_id="scale-out"))
    scaled_seconds = time.perf_counter() - started
    compression = scaled.extras["compression"]
    print(f"\nScale-out: {scaled.index_count} indexes in {scaled_seconds:.2f}s "
          f"({monolithic_seconds / scaled_seconds:.1f}x faster)")
    print(f"  compressed {compression['original_statements']} statements into "
          f"{compression['representatives']} representatives "
          f"(ratio {compression['ratio']:.2f})")
    print(f"  {scaled.extras['partition']['shards']} shards on "
          f"{scaled.extras['shard_workers']} worker(s):")
    for shard in scaled.extras["shards"]:
        print(f"    shard {shard['position']}: {shard['statements']} stmts, "
              f"{shard['candidates']} candidates -> {shard['selected']} "
              f"winners in {shard['seconds']:.2f}s")
    print(f"  merge BIP over {scaled.extras['merge']['winners']} winners -> "
          f"{scaled.index_count} indexes")

    # 4. Quality: evaluate both recommendations with one fresh INUM cache.
    evaluator = InumCache(WhatIfOptimizer(schema))
    evaluator.prepare(workload, (*monolithic.configuration,
                                 *scaled.configuration))
    monolithic_cost = evaluator.workload_cost(workload,
                                              monolithic.configuration)
    scaled_cost = evaluator.workload_cost(workload, scaled.configuration)
    print(f"\nEvaluated workload cost: monolithic {monolithic_cost:,.0f}, "
          f"scale-out {scaled_cost:,.0f} "
          f"({100 * (scaled_cost / monolithic_cost - 1):+.2f}%)")


if __name__ == "__main__":
    main()
