"""Interactive tuning (section 4.2 / Figure 6(b) of the paper).

A DBA explores the design space incrementally: open a session on the tuning
service, get an initial recommendation, add hand-picked candidate indexes and
re-tune, then tighten the constraints and re-tune again.  Re-tuning reuses
INUM's cache, extends the existing BIP with a delta and warm-starts the
solver, so it is much cheaper than the initial run — and because the session
lives on the service, it shares the schema's cache with every other request
the service is fielding.

Run with:  python examples/interactive_session.py
"""

from __future__ import annotations

from repro import (
    Index,
    IndexCountConstraint,
    StorageBudgetConstraint,
    TuningRequest,
    TuningService,
)
from repro.catalog import tpch_schema
from repro.workload import generate_homogeneous_workload


def describe(step: str, result) -> None:
    timings = result.diagnostics.timings
    print(f"{step:<28} indexes={result.index_count:<3} "
          f"objective={result.objective_estimate:12.1f}  "
          f"total={timings['total']:6.3f}s "
          f"(inum={timings.get('inum', 0.0):.3f}s, "
          f"build={timings.get('build', 0.0):.3f}s, "
          f"solve={timings.get('solve', 0.0):.3f}s)")


def main() -> None:
    schema = tpch_schema(scale_factor=0.01)
    workload = generate_homogeneous_workload(40, seed=3)
    budget = StorageBudgetConstraint.from_fraction_of_data(schema, 1.0)

    service = TuningService()
    session = service.open_session(TuningRequest(
        workload=workload, schema=schema, constraints=[budget],
        request_id="interactive-demo"))

    # Step 1: the initial recommendation (full INUM + BIP build + solve).
    initial = session.recommend()
    describe("initial recommendation", initial)

    # Step 2: the DBA suspects covering indexes on lineitem would help and
    # adds a few hand-crafted candidates (the paper's S_DBA).
    dba_candidates = [
        Index("lineitem", ("l_shipdate",),
              include_columns=("l_extendedprice", "l_discount", "l_quantity")),
        Index("lineitem", ("l_partkey", "l_shipdate")),
        Index("orders", ("o_orderdate",), include_columns=("o_shippriority",)),
    ]
    revised = session.add_candidates(dba_candidates)
    describe("after adding 3 candidates", revised)
    newly_used = [index for index in dba_candidates
                  if index in revised.configuration]
    print(f"  -> {len(newly_used)} of the DBA's candidates made it into X*")

    # Step 3: the DBA decides the design is too large and caps it at 10 indexes.
    capped = session.update_constraints([budget, IndexCountConstraint(limit=10)])
    describe("after capping at 10 indexes", capped)

    print("\nSession history:")
    for position, entry in enumerate(session.history, start=1):
        operation = entry.provenance["session"]["operation"]
        print(f"  run {position} ({operation}): {entry.index_count} indexes, "
              f"objective {entry.objective_estimate:.1f}, "
              f"{entry.diagnostics.timings['total']:.3f}s")


if __name__ == "__main__":
    main()
