"""Anytime tuning: trade recommendation quality for a wall-clock deadline.

One knob — ``AdvisorSpec.time_budget_ms`` — turns a tuning request into an
*anytime* request: the deadline is anchored when the pipeline starts and
threaded through candidate generation, the greedy-knapsack heuristic, BIP
construction and the branch-and-bound/MILP solve, so the call returns a
*feasible* recommendation by the deadline, flagged ``timed_out=True`` with a
finite optimality gap instead of blowing the budget.  ``solve_tier`` picks
how the budget is spent:

* ``"heuristic"`` — greedy knapsack only, never builds the BIP;
* ``"cascade"``  — greedy first, exact solve with whatever clock remains
  (the default when a budget is set);
* ``"exact"``    — the BIP solve as before, interrupted at the deadline.

The same knob travels over the wire (version 2): the server applies
per-request deadlines, can default/clamp them, and the client SDK derives
its socket timeout from the request's own budget.

Run with:  python examples/anytime_tuning.py
"""

from __future__ import annotations

from repro import StorageBudgetConstraint, Tuner, TuningRequest
from repro.api import AdvisorSpec
from repro.catalog import tpch_schema
from repro.server import TuningClient, TuningServer
from repro.workload import generate_homogeneous_workload


def main() -> None:
    schema = tpch_schema(scale_factor=0.01)
    workload = generate_homogeneous_workload(30, seed=11)
    constraints = [StorageBudgetConstraint.from_fraction_of_data(
        schema, fraction=0.5)]

    def request(advisor: AdvisorSpec | None, request_id: str) -> TuningRequest:
        return TuningRequest(workload=workload, schema=schema,
                             constraints=constraints, advisor=advisor,
                             request_id=request_id)

    tuner = Tuner()

    # 1. The unbudgeted ground truth: the exact BIP solve, however long it
    #    takes (on this small problem: not long).
    exact = tuner.tune(request(None, "anytime-exact"))
    print(f"exact:     {exact.index_count} indexes, "
          f"objective {exact.objective_estimate:,.0f}, "
          f"tier {exact.diagnostics.solve_tier}")

    # 2. The heuristic tier: greedy knapsack over the same INUM tensors,
    #    no BIP at all.  Orders of magnitude cheaper, usually within a few
    #    percent of the exact objective.
    heuristic = tuner.tune(request(
        AdvisorSpec("cophy", solve_tier="heuristic"), "anytime-heuristic"))
    print(f"heuristic: {heuristic.index_count} indexes, "
          f"objective {heuristic.objective_estimate:,.0f}, "
          f"reported gap {heuristic.diagnostics.gap:.1%}")

    # 3. A hard deadline.  The second run hits a warm schema context, so the
    #    budget is spent on solving, not on re-preparing INUM state; an
    #    absurdly tight budget still returns a feasible configuration with
    #    the timeout flagged and the gap finite.
    budgeted = tuner.tune(request(
        AdvisorSpec("cophy", time_budget_ms=2.0), "anytime-tight"))
    print(f"2ms budget: {budgeted.index_count} indexes, "
          f"timed_out={budgeted.diagnostics.timed_out}, "
          f"tier {budgeted.diagnostics.solve_tier}, "
          f"gap {budgeted.diagnostics.gap:.1%}")
    assert budgeted.diagnostics.timed_out

    # 4. The same knob over HTTP.  The wire codecs carry the budget (wire
    #    version 2), the server enforces a ceiling on client budgets, and
    #    the client's socket timeout follows the request's own deadline
    #    (budget + slack) instead of the generous default.
    with TuningServer(max_time_budget_ms=60_000.0,
                      session_ttl_s=300.0) as server:
        client = TuningClient(server.url, budget_slack_s=30.0)
        remote = client.tune(request(
            AdvisorSpec("cophy", time_budget_ms=5_000.0), "anytime-remote"))
        print(f"remote 5s budget: {remote.index_count} indexes, "
              f"timed_out={remote.diagnostics.timed_out}, "
              f"objective {remote.objective_estimate:,.0f}")
        assert remote.configuration == exact.configuration, \
            "a roomy budget must not change the recommendation"
        stats = client.stats()
        print(f"server policy: max_time_budget_ms="
              f"{stats['max_time_budget_ms']:,.0f}, "
              f"session_ttl_s={stats['session_ttl_s']:,.0f}, "
              f"sessions_reaped={stats['service']['sessions_reaped']}")


if __name__ == "__main__":
    main()
