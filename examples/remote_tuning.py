"""Remote tuning: the same request served in-process and over HTTP.

Starts a ``TuningServer`` in-process (an ephemeral port, statement
auto-namespacing on), describes a tuning problem once, and serves it both
through the embedded ``Tuner`` and through ``TuningClient`` over the wire —
then asserts the two results carry *identical fingerprints*, which is the
end-to-end guarantee of the wire formats: encode → HTTP → decode → tune is
bit-for-bit the in-process pipeline.  Also demos the batch endpoint, a
remote interactive session, and the ``/v1/stats`` counters (schema-context
LRU, namespacing).

Run with:  python examples/remote_tuning.py
"""

from __future__ import annotations

from repro import StorageBudgetConstraint, Tuner, TuningRequest
from repro.catalog import tpch_schema
from repro.core.constraints import IndexCountConstraint
from repro.server import TuningClient, TuningServer
from repro.workload import generate_homogeneous_workload


def main() -> None:
    # 1. One declarative tuning problem, built exactly like quickstart.py.
    schema = tpch_schema(scale_factor=0.01)
    workload = generate_homogeneous_workload(30, seed=11)
    request = TuningRequest(
        workload=workload,
        schema=schema,
        constraints=[StorageBudgetConstraint.from_fraction_of_data(
            schema, fraction=1.0)],
        request_id="remote-tuning",
    )

    # 2. The in-process answer (the ground truth for parity).
    local = Tuner().tune(request)

    # 3. The same request over the wire: an ephemeral in-process server and
    #    the stdlib-urllib client SDK.  ``TuningClient.tune`` accepts the
    #    same TuningRequest and returns the same TuningResult type.
    with TuningServer(namespace_statements=True, max_contexts=8) as server:
        client = TuningClient(server.url)
        health = client.health()
        print(f"Server up at {server.url}: advisors = "
              f"{', '.join(health['advisors'])}")

        remote = client.tune(request)
        assert remote.fingerprint() == local.fingerprint(), \
            "remote and local results must be bit-identical"
        print(f"Fingerprint parity: local == remote == "
              f"{remote.fingerprint()[:16]}… "
              f"({remote.index_count} indexes, objective "
              f"{remote.objective_estimate:.1f})")

        # 4. Batched serving: the server fans tune_batch out on its thread
        #    pool (different advisors, one shared schema context).
        batch = client.tune_many([
            TuningRequest(workload=workload, schema=schema,
                          constraints=request.constraints, advisor="cophy"),
            TuningRequest(workload=workload, schema=schema,
                          constraints=request.constraints, advisor="dta"),
        ])
        for result in batch:
            print(f"  batch: {result.advisor_name:<22} "
                  f"{result.index_count} indexes, "
                  f"objective {result.objective_estimate:.1f}")

        # 5. A remote interactive session: delta-BIP re-tuning held
        #    server-side, driven through the SDK.
        with client.open_session(request) as session:
            initial = session.recommend()
            capped = session.update_constraints(
                [*request.constraints, IndexCountConstraint(limit=3)])
            print(f"Session: {initial.index_count} indexes -> "
                  f"{capped.index_count} under an index-count cap of 3")

        # 6. Service counters: schema-context sharing, LRU eviction budget,
        #    auto-namespacing.
        stats = client.stats()
        service = stats["service"]
        print(f"Stats: {service['context_count']} schema context(s) "
              f"(cap {service['max_contexts']}), "
              f"{service['requests_served']} requests served, "
              f"{service['namespaced_requests']} namespaced, "
              f"{stats['cached_schemas']} cached schema payload(s)")

    print("Server closed; remote tuning round trip verified.")


if __name__ == "__main__":
    main()
