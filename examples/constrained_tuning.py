"""Constrained physical design tuning (section 3.2 / appendix E of the paper).

Shows how the DBA constraint language is used:

* a hard storage budget,
* a per-table limit on wide indexes,
* the "at most one clustered index per table" rule,
* a generator asserting that every SELECT gets at least 20% faster than the
  baseline configuration.

Run with:  python examples/constrained_tuning.py
"""

from __future__ import annotations

from repro import (
    ClusteredIndexConstraint,
    IndexCountConstraint,
    IndexWidthConstraint,
    QuerySpeedupGenerator,
    StorageBudgetConstraint,
    Tuner,
    TuningRequest,
    WhatIfOptimizer,
)
from repro.bench import baseline_configuration, speedup_percent
from repro.catalog import tpch_schema
from repro.exceptions import InfeasibleProblemError
from repro.workload import generate_homogeneous_workload


def main() -> None:
    schema = tpch_schema(scale_factor=0.01)
    workload = generate_homogeneous_workload(30, seed=11)
    tuner = Tuner()
    evaluation = WhatIfOptimizer(schema)
    baseline = baseline_configuration(schema)

    # Reference costs for the per-query speedup generator: cost(q, X0).
    reference_costs = {
        statement.query.name: evaluation.statement_cost(statement.query, baseline)
        for statement in workload.select_statements()
    }

    constraints = [
        # Storage budget: half the data size.
        StorageBudgetConstraint.from_fraction_of_data(schema, 0.5),
        # At most two indexes on the (frequently updated) lineitem table.
        IndexCountConstraint(limit=2,
                             selector=lambda index: index.table == "lineitem",
                             name="lineitem_limit"),
        # No index wider than 4 columns (key + INCLUDE).
        IndexWidthConstraint(max_columns=4),
        # At most one clustered index per table.
        ClusteredIndexConstraint(),
        # FOR q IN W ASSERT cost(q, X*) <= 0.8 * cost(q, X0)
        QuerySpeedupGenerator(reference_costs=reference_costs, factor=0.8),
    ]

    try:
        result = tuner.tune(TuningRequest(workload=workload, schema=schema,
                                          constraints=constraints))
    except InfeasibleProblemError as failure:
        # CoPhy reports the offending constraints so the DBA can relax them.
        print(f"The constraint set is infeasible: {failure.violated_constraints}")
        print("Retrying without the per-query speedup generator...")
        result = tuner.tune(TuningRequest(workload=workload, schema=schema,
                                          constraints=constraints[:-1]))

    print(f"Recommended {result.index_count} indexes "
          f"(out of {result.diagnostics.candidate_count} candidates):")
    for index in sorted(result.configuration, key=lambda i: i.name):
        print(f"  {index}")

    lineitem_indexes = result.configuration.indexes_on("lineitem")
    print(f"\nIndexes on lineitem: {len(lineitem_indexes)} (limit was 2)")
    print(f"Overall speedup vs baseline: "
          f"{speedup_percent(evaluation, workload, result.configuration):.1f}%")


if __name__ == "__main__":
    main()
