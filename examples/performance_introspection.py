"""Performance introspection end to end: contention, profiles, trace store.

Runs a short burst of requests against an in-process ``TuningServer``
configured with the PR 10 introspection knobs, then walks the whole
debugging loop an operator would:

1. **Queryable trace store** — ``GET /v1/traces`` lists the retained
   requests newest-first; the slow-flagged entry is fetched in full via
   ``GET /v1/traces/{id}`` (span tree + sampled hotspot table).
2. **Contention & resource accounting** — the ``/v1/metrics`` scrape now
   carries ``repro_lock_wait_seconds{lock=...}`` and
   ``repro_queue_wait_seconds`` histograms, and every root span records
   ``cpu_ms`` plus its queue/lock wait attribution.
3. **Latency SLOs** — ``/v1/stats`` streams p50/p95/p99 per advisor with an
   exemplar trace id linking the histogram back to a stored trace.
4. **Flame-style rendering** — the fetched entry is written to a temp file
   and rendered with ``python -m repro.obs.report``, exactly as an operator
   would from a saved trace.

Run with:  python examples/performance_introspection.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path
from urllib.request import urlopen

from repro import StorageBudgetConstraint, TuningRequest
from repro.catalog import tpch_schema
from repro.server import TuningClient, TuningServer
from repro.workload import generate_homogeneous_workload


def main() -> None:
    schema = tpch_schema(scale_factor=0.01)
    budget = StorageBudgetConstraint.from_fraction_of_data(schema,
                                                           fraction=1.0)

    # slow_threshold_ms=0.1 pins essentially every request in the slow ring;
    # profile_every=2 samples a cProfile hotspot table on every other one.
    server = TuningServer(namespace_statements=True, trace_store_size=16,
                          slow_threshold_ms=0.1, profile_every=2)
    with server:
        client = TuningClient(server.url)
        # A batch goes through the service's thread pool, so every request
        # records its pool-queue wait (single client.tune calls are served
        # synchronously and never queue).
        requests = [
            TuningRequest(
                workload=generate_homogeneous_workload(12, seed=seed),
                schema=schema, constraints=[budget],
                request_id=f"introspect-{seed}")
            for seed in (7, 11, 13)
        ]
        for result in client.tune_many(requests):
            attrs = result.extras["trace"]["root"]["attrs"]
            print(f"request {result.provenance['request_id']}: "
                  f"{result.index_count} indexes, "
                  f"cpu={attrs.get('cpu_ms', 0.0):.1f} ms, "
                  f"queue_wait={attrs.get('queue_wait_ms', 0.0)} ms")

        # 1. The store lists what it retained; grab the newest slow entry.
        #    One HTTP batch = one trace id (PR 8: the whole HTTP request
        #    traces under the caller's id), so the store holds the batch's
        #    last-finished sub-request under that id — latest wins.
        listing = client.traces()
        print(f"\n/v1/traces: {listing['count']} retained "
              f"(capacity {listing['capacity']}, "
              f"slow >= {listing['slow_threshold_ms']} ms)")
        slow_rows = [row for row in listing["traces"] if row["slow"]]
        assert slow_rows, "the 0.1 ms threshold must have pinned something"
        entry = client.trace(slow_rows[0]["trace_id"])
        print(f"fetched slow trace {entry['trace_id']} "
              f"({entry['duration_ms']:.1f} ms, advisor={entry['advisor']})")

        # 2. Contention histograms are part of the ordinary scrape.
        with urlopen(server.url + "/v1/metrics") as response:
            exposition = response.read().decode("utf-8")
        for series in ("repro_lock_wait_seconds_count",
                       "repro_queue_wait_seconds_count"):
            assert series in exposition, f"{series} missing from scrape"
        print("\n/v1/metrics (wait-accounting excerpt):")
        for line in exposition.splitlines():
            if line.startswith(("repro_lock_wait_seconds_count",
                                "repro_queue_wait_seconds_count")):
                print(f"  {line}")

        # 3. Streaming latency SLOs, correlated to the store via exemplars.
        with urlopen(server.url + "/v1/stats") as response:
            stats = json.loads(response.read())
        print("\nlatency SLOs per advisor:")
        for advisor, row in stats["service"]["latency_slo"].items():
            print(f"  {advisor}: n={row['count']} p50={row['p50_ms']} ms "
                  f"p95={row['p95_ms']} ms p99={row['p99_ms']} ms "
                  f"exemplar={row.get('exemplar_trace_id')}")

    # 4. Render the saved entry exactly as an operator would post-mortem.
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fh:
        json.dump(entry, fh)
        saved = fh.name
    src = Path(__file__).resolve().parent.parent / "src"
    completed = subprocess.run(
        [sys.executable, "-m", "repro.obs.report", saved],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"})
    assert completed.returncode == 0, completed.stderr
    print(f"\npython -m repro.obs.report {saved}:")
    print(completed.stdout)


if __name__ == "__main__":
    main()
