"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so that
``pip install -e .`` also works in offline environments where the ``wheel``
package (needed by PEP-517 editable builds with older setuptools) is not
available — pip falls back to the legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
