"""repro — a full reproduction of CoPhy (VLDB 2011).

CoPhy is a scalable, portable and interactive index advisor built on a compact
binary-integer-program (BIP) formulation of the index tuning problem.  This
package reimplements the complete system described in the paper together with
every substrate it depends on:

* a statistics-only relational catalog with a TPC-H generator (``repro.catalog``),
* a structural workload model, SQL-subset parser and the paper's workload
  generators (``repro.workload``),
* hypothetical indexes, configurations and candidate generation
  (``repro.indexes``),
* a cost-based what-if optimizer (``repro.optimizer``),
* INUM-style fast what-if optimization (``repro.inum``),
* a from-scratch BIP modelling layer and branch-and-bound solver (``repro.lp``),
* the CoPhy advisor itself: BIP generation, constraint language, soft
  constraints / Pareto exploration, early termination and interactive
  re-tuning (``repro.core``),
* the comparison baselines: ILP, a Tool-A-like relaxation advisor and a
  Tool-B-like advisor with workload compression (``repro.advisors``),
* the evaluation harness reproducing the paper's metrics (``repro.bench``).

* the unified tuning API: declarative ``TuningRequest -> TuningResult``
  through ``Tuner``/``TuningService`` with a pluggable advisor registry
  (``repro.api``).

Quick start::

    from repro import StorageBudgetConstraint, Tuner, TuningRequest
    from repro.catalog import tpch_schema
    from repro.workload import generate_homogeneous_workload

    schema = tpch_schema(scale_factor=0.01)
    workload = generate_homogeneous_workload(50, seed=1)
    budget = StorageBudgetConstraint.from_fraction_of_data(schema, 1.0)
    result = Tuner().tune(TuningRequest(workload=workload, schema=schema,
                                        constraints=[budget]))
    for index in result.configuration:
        print(index)
"""

from repro.advisors import (
    DtaAdvisor,
    IlpAdvisor,
    Recommendation,
    RelaxationAdvisor,
    ScaleOutAdvisor,
)
from repro.api import (
    AdvisorSpec,
    CostingSpec,
    ScaleSpec,
    Tuner,
    TuningRequest,
    TuningResult,
    TuningService,
    make_advisor,
)
from repro.catalog import Schema, tpch_schema
from repro.core import (
    ClusteredIndexConstraint,
    CoPhyAdvisor,
    CoPhySolver,
    IndexCountConstraint,
    IndexWidthConstraint,
    InteractiveTuningSession,
    ParetoExplorer,
    QueryCostConstraint,
    QuerySpeedupGenerator,
    SoftConstraint,
    SolverBackend,
    StorageBudgetConstraint,
    UpdateCostConstraint,
)
from repro.indexes import CandidateGenerator, Configuration, Index
from repro.inum import InumCache
from repro.optimizer import CostModel, WhatIfOptimizer
from repro.workload import (
    Workload,
    generate_heterogeneous_workload,
    generate_homogeneous_workload,
    parse_statement,
    parse_workload,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # catalog
    "Schema",
    "tpch_schema",
    # workload
    "Workload",
    "generate_homogeneous_workload",
    "generate_heterogeneous_workload",
    "parse_statement",
    "parse_workload",
    # indexes
    "Index",
    "Configuration",
    "CandidateGenerator",
    # optimizer / INUM
    "WhatIfOptimizer",
    "CostModel",
    "InumCache",
    # CoPhy
    "CoPhyAdvisor",
    "CoPhySolver",
    "SolverBackend",
    "InteractiveTuningSession",
    "ParetoExplorer",
    "StorageBudgetConstraint",
    "IndexCountConstraint",
    "IndexWidthConstraint",
    "ClusteredIndexConstraint",
    "QueryCostConstraint",
    "QuerySpeedupGenerator",
    "UpdateCostConstraint",
    "SoftConstraint",
    # baselines
    "IlpAdvisor",
    "RelaxationAdvisor",
    "DtaAdvisor",
    "Recommendation",
    # scale-out (PR 3)
    "ScaleOutAdvisor",
    # unified tuning API (PR 4)
    "AdvisorSpec",
    "CostingSpec",
    "ScaleSpec",
    "Tuner",
    "TuningRequest",
    "TuningResult",
    "TuningService",
    "make_advisor",
]
