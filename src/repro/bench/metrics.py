"""Evaluation metrics: baseline configuration, ground-truth cost and perf."""

from __future__ import annotations

from typing import Iterable

from repro.catalog.schema import Schema
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.workload import Workload

__all__ = ["baseline_configuration", "workload_cost", "perf_improvement",
           "speedup_percent"]


def baseline_configuration(schema: Schema) -> Configuration:
    """The baseline ``X0``: one clustered primary-key index per table.

    Mirrors the paper's evaluation baseline ("a configuration that contains
    only the clustered primary key indexes").
    """
    indexes: list[Index] = []
    for table in schema:
        if table.primary_key:
            indexes.append(Index(table.name, table.primary_key, clustered=True,
                                 name=f"pk_{table.name}"))
    return Configuration(indexes, name="baseline-clustered-pk")


def workload_cost(optimizer: WhatIfOptimizer, workload: Workload,
                  configuration: Configuration | Iterable[Index]) -> float:
    """Ground-truth weighted workload cost under a configuration.

    Every statement is costed by invoking the what-if optimizer directly (not
    INUM), so advisors are judged by the optimizer's own cost model, exactly
    as in the paper's methodology.  When the evaluator is an INUM cache
    (``run_advisor(..., evaluation_inum=...)``), its own ``workload_cost``
    answers from the workload gamma tensor in one batched reduction —
    bit-identical to the per-statement sum.
    """
    if not isinstance(configuration, Configuration):
        configuration = Configuration(configuration)
    if isinstance(optimizer, InumCache):  # one stacked tensor reduction
        return optimizer.workload_cost(workload, configuration)
    return sum(statement.weight
               * optimizer.statement_cost(statement.query, configuration)
               for statement in workload)


def perf_improvement(optimizer: WhatIfOptimizer, workload: Workload,
                     recommended: Configuration,
                     baseline: Configuration | None = None) -> float:
    """``perf(X*, W) = 1 - cost(X* ∪ X0, W) / cost(X0, W)`` (section 5.1).

    Args:
        optimizer: Ground-truth what-if optimizer.
        workload: Evaluation workload.
        recommended: The advisor's recommendation ``X*``.
        baseline: The baseline ``X0``; the clustered-PK baseline of the
            optimizer's schema is used when omitted.

    Returns:
        The relative cost reduction in [0, 1) — higher is better.
    """
    if baseline is None:
        baseline = baseline_configuration(optimizer.schema)
    baseline_cost = workload_cost(optimizer, workload, baseline)
    combined = baseline.union(recommended)
    recommended_cost = workload_cost(optimizer, workload, combined)
    if baseline_cost <= 0:
        return 0.0
    return max(0.0, 1.0 - recommended_cost / baseline_cost)


def speedup_percent(optimizer: WhatIfOptimizer, workload: Workload,
                    recommended: Configuration,
                    baseline: Configuration | None = None) -> float:
    """The perf metric expressed as a percentage (as in Figures 7-9)."""
    return 100.0 * perf_improvement(optimizer, workload, recommended, baseline)
