"""Evaluation harness: metrics, experiment runner and report formatting.

The harness reproduces the paper's methodology (section 5.1): the quality of a
recommendation ``X*`` is the relative reduction in workload cost compared to a
baseline configuration ``X0`` containing only the clustered primary-key
indexes, with both costs computed by invoking the what-if optimizer directly
(the "ground truth"), regardless of any approximations the advisor used
internally.
"""

from repro.bench.metrics import (
    baseline_configuration,
    perf_improvement,
    speedup_percent,
    workload_cost,
)
from repro.bench.harness import (
    AdvisorRun,
    ExperimentResult,
    compare_advisors,
    compare_requests,
    run_advisor,
    run_request,
)
from repro.bench.reporting import format_table

__all__ = [
    "baseline_configuration",
    "workload_cost",
    "perf_improvement",
    "speedup_percent",
    "AdvisorRun",
    "ExperimentResult",
    "run_advisor",
    "compare_advisors",
    "run_request",
    "compare_requests",
    "format_table",
]
