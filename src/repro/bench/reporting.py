"""Plain-text report formatting for the benchmark harness."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned plain-text table.

    Used by the benchmark scripts to print the same rows/series the paper's
    tables and figures report.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {column: len(str(column)) for column in columns}
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                text = f"{value:.4g}"
            else:
                text = str(value)
            widths[column] = max(widths[column], len(text))
            rendered.append(text)
        rendered_rows.append(rendered)

    lines: list[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for rendered in rendered_rows:
        lines.append(" | ".join(text.ljust(widths[column])
                                for text, column in zip(rendered, columns)))
    return "\n".join(lines)


def format_series(points: Sequence[tuple[float, float]], x_label: str,
                  y_label: str, title: str = "") -> str:
    """Render an (x, y) series as a two-column table (for figure-style output)."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, title=title)
