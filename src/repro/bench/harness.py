"""Experiment runner used by the per-figure benchmark scripts.

Two entry points:

* :func:`run_advisor` / :func:`compare_advisors` — the legacy surface taking
  pre-built advisor instances (kept because the figure benchmarks wire
  deliberately unusual instrumented advisors);
* :func:`run_request` / :func:`compare_requests` — the unified-API surface:
  declarative :class:`~repro.api.specs.TuningRequest` objects served through
  one shared :class:`~repro.api.tuner.Tuner`, so a comparison sweep reuses
  templates/tensors across advisors exactly like production traffic would.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.advisors.base import Advisor, Recommendation
from repro.bench.metrics import baseline_configuration, perf_improvement
from repro.core.constraints import SoftConstraint, TuningConstraint
from repro.indexes.candidate_generation import CandidateSet
from repro.inum.cache import InumCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.workload import Workload

if TYPE_CHECKING:  # pragma: no cover - typing-only (bench must not force api)
    from repro.api.result import TuningResult
    from repro.api.specs import TuningRequest
    from repro.api.tuner import Tuner

__all__ = ["AdvisorRun", "ExperimentResult", "run_advisor", "compare_advisors",
           "run_request", "compare_requests"]


def _safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` that never raises on degenerate inputs.

    Instant advisors (``wall_seconds == 0`` on coarse clocks), zero-benefit
    recommendations (``perf == 0``) and timed-out runs (``inf``) all occur in
    benchmark sweeps; comparisons against them must degrade into explicit
    ``inf`` / ``nan`` instead of ``ZeroDivisionError`` so report tables can
    render every cell.

    * Both operands zero, or both infinite: ``nan`` (the ratio is undefined).
    * Zero denominator: ``inf`` (``-inf`` for a negative numerator).
    * Infinite denominator with finite numerator: ``0.0``.
    * ``nan`` anywhere propagates as ``nan``.
    """
    if math.isnan(numerator) or math.isnan(denominator):
        return float("nan")
    if denominator == 0.0:
        if numerator == 0.0:
            return float("nan")
        return math.copysign(float("inf"), numerator)
    if math.isinf(denominator):
        if math.isinf(numerator):
            return float("nan")
        return 0.0
    return numerator / denominator


@dataclass
class AdvisorRun:
    """One advisor's outcome on one tuning-problem instance."""

    advisor_name: str
    recommendation: Recommendation
    perf: float
    wall_seconds: float
    #: Set by the unified-API surface (:func:`run_request`); ``None`` for
    #: legacy advisor-instance runs.
    result: "TuningResult | None" = None

    @property
    def speedup_percent(self) -> float:
        return 100.0 * self.perf

    def row(self) -> dict[str, float | int | str]:
        return {
            "advisor": self.advisor_name,
            "perf": round(self.perf, 4),
            "speedup_%": round(self.speedup_percent, 2),
            "indexes": self.recommendation.index_count,
            "candidates": self.recommendation.candidate_count,
            "whatif_calls": self.recommendation.whatif_calls,
            "seconds": round(self.wall_seconds, 3),
            "inum_s": round(self.recommendation.timings.get("inum", 0.0), 3),
            "build_s": round(self.recommendation.timings.get("build", 0.0), 3),
            "solve_s": round(self.recommendation.timings.get("solve", 0.0), 3),
        }


@dataclass
class ExperimentResult:
    """A named collection of advisor runs (one paper table / figure)."""

    name: str
    runs: list[AdvisorRun] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def run_for(self, advisor_name: str) -> AdvisorRun:
        for run in self.runs:
            if run.advisor_name == advisor_name:
                return run
        raise KeyError(f"No run for advisor {advisor_name!r} in {self.name!r}")

    def perf_ratio(self, numerator: str, denominator: str) -> float:
        """Ratio of perf improvements (the Table-1 metric)."""
        return _safe_ratio(self.run_for(numerator).perf,
                           self.run_for(denominator).perf)

    def time_ratio(self, numerator: str, denominator: str) -> float:
        return _safe_ratio(self.run_for(numerator).wall_seconds,
                           self.run_for(denominator).wall_seconds)

    def rows(self) -> list[dict]:
        return [run.row() for run in self.runs]


def run_advisor(advisor: Advisor, evaluation_optimizer: WhatIfOptimizer,
                workload: Workload,
                constraints: Sequence[TuningConstraint | SoftConstraint] = (),
                candidates: CandidateSet | None = None,
                evaluation_inum: InumCache | None = None) -> AdvisorRun:
    """Run one advisor and evaluate its recommendation against ground truth.

    The evaluation optimizer is deliberately a *separate* what-if optimizer so
    that the advisor's own call counters and caches are not polluted by the
    evaluation, mirroring the paper's use of the DBMS optimizer as the ground
    truth regardless of the advisor's internal approximations.

    ``evaluation_inum`` optionally replaces the per-statement what-if calls of
    the perf evaluation with the INUM cache's costing — answered from the
    workload gamma tensor in one batched reduction per configuration — which
    makes evaluating large workloads
    against many recommendations cheap.  Caveat: INUM is the approximation
    CoPhy-style advisors optimize against, so INUM-based evaluation can
    slightly favour them over black-box advisors; paper-faithful comparisons
    (the per-figure benchmarks) must keep the default what-if ground truth.
    """
    started = time.perf_counter()
    recommendation = advisor.tune(workload, constraints, candidates=candidates)
    wall_seconds = time.perf_counter() - started
    baseline = baseline_configuration(evaluation_optimizer.schema)
    evaluator = (evaluation_optimizer if evaluation_inum is None
                 else evaluation_inum)
    perf = perf_improvement(evaluator, workload,
                            recommendation.configuration, baseline)
    return AdvisorRun(advisor_name=advisor.name, recommendation=recommendation,
                      perf=perf, wall_seconds=wall_seconds)


def compare_advisors(advisors: Sequence[Advisor],
                     evaluation_optimizer: WhatIfOptimizer,
                     workload: Workload,
                     constraints: Sequence[TuningConstraint | SoftConstraint] = (),
                     candidates: CandidateSet | None = None,
                     name: str = "experiment",
                     evaluation_inum: InumCache | None = None) -> ExperimentResult:
    """Run several advisors on the same tuning-problem instance."""
    result = ExperimentResult(name=name,
                              metadata={"workload": workload.name,
                                        "statements": len(workload)})
    for advisor in advisors:
        result.runs.append(run_advisor(advisor, evaluation_optimizer, workload,
                                       constraints, candidates,
                                       evaluation_inum=evaluation_inum))
    return result


# --------------------------------------------------------- unified-API surface
def run_request(tuner: "Tuner", request: "TuningRequest",
                evaluation_optimizer: WhatIfOptimizer,
                evaluation_inum: InumCache | None = None) -> AdvisorRun:
    """Serve one declarative request and evaluate it against ground truth.

    The unified-API twin of :func:`run_advisor`: the advisor is resolved from
    the registry and wired to the tuner's shared per-schema cache, while the
    evaluation still runs on its own optimizer (or INUM cache) so the
    ground-truth measurement never pollutes the advisor-side counters.

    Timing semantics: ``wall_seconds`` excludes the facade's per-statement
    evaluation stage (result enrichment, not advisor work), but requests
    served through one shared tuner are still *sweep-relative* — an earlier
    request pays template builds that later requests reuse, exactly like
    production traffic.  For paper-faithful cold-start timings, use a fresh
    ``Tuner`` per request (or the legacy :func:`run_advisor`).
    """
    started = time.perf_counter()
    result = tuner.tune(request)
    wall_seconds = (time.perf_counter() - started
                    - result.diagnostics.timings.get("facade.evaluate", 0.0))
    baseline = baseline_configuration(evaluation_optimizer.schema)
    evaluator = (evaluation_optimizer if evaluation_inum is None
                 else evaluation_inum)
    perf = perf_improvement(evaluator, request.workload,
                            result.configuration, baseline)
    diagnostics = result.diagnostics
    recommendation = Recommendation(
        configuration=result.configuration,
        advisor_name=result.advisor_name,
        objective_estimate=result.objective_estimate,
        timings=dict(diagnostics.timings),
        candidate_count=diagnostics.candidate_count,
        whatif_calls=diagnostics.whatif_calls,
        gap=diagnostics.gap,
        gap_trace=diagnostics.gap_trace,
        extras=result.extras,
    )
    return AdvisorRun(advisor_name=result.advisor_name,
                      recommendation=recommendation, perf=perf,
                      wall_seconds=wall_seconds, result=result)


def compare_requests(tuner: "Tuner", requests: "Iterable[TuningRequest]",
                     evaluation_optimizer: WhatIfOptimizer,
                     name: str = "experiment",
                     evaluation_inum: InumCache | None = None
                     ) -> ExperimentResult:
    """Serve several requests (typically one per advisor spec) and compare.

    Requests against the same schema share the tuner's context — templates
    built for the first advisor are reused by every later one, which is both
    the realistic serving scenario and a large wall-clock win for sweeps.
    The flip side: time ratios between rows are sweep-relative (they depend
    on request order); see :func:`run_request` for cold-start alternatives.
    """
    runs = [run_request(tuner, request, evaluation_optimizer,
                        evaluation_inum=evaluation_inum)
            for request in requests]
    metadata: dict = {}
    if runs:
        first = runs[0].result.provenance["workload"]
        metadata = {"workload": first["name"],
                    "statements": first["statements"]}
    return ExperimentResult(name=name, runs=runs, metadata=metadata)
