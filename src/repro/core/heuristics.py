"""A greedy-knapsack anytime heuristic over INUM cost tensors.

This is the cheap tier of the anytime pipeline (``solve_tier="heuristic"`` /
the first stage of ``"cascade"``).  It never builds the BIP: candidates are
ranked by *benefit density* — workload-cost reduction per byte, re-evaluated
lazily as the configuration grows — using batched
:meth:`~repro.inum.cache.InumCache.workload_cost` probes, the same tensor
reductions the DTA baseline's knapsack uses.  Every probe is preceded by a
deadline check, so the pass is interruptible at probe granularity and always
returns a feasible (possibly empty) configuration.

The result carries a **finite optimality gap** without any LP: the *ideal
bound* costs the workload as if every candidate were materialised at once and
update maintenance were free — a valid lower bound on any feasible
configuration's objective, because shell costs are monotone in the available
index set and maintenance terms are non-negative.  The exact solve of the
cascade tier then warm-starts from the greedy incumbent via
``CophyBip.warm_start_from`` (the PR 1 seeding hooks).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.constraints import (
    ClusteredIndexConstraint,
    ComparisonSense,
    IndexCountConstraint,
    IndexWidthConstraint,
    SoftConstraint,
    StorageBudgetConstraint,
)
from repro.exceptions import ConstraintError
from repro.indexes.candidate_generation import CandidateSet
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.lp.budget import SolveBudget
from repro.workload.query import UpdateQuery
from repro.workload.workload import Workload

__all__ = ["HeuristicResult", "greedy_knapsack", "ideal_lower_bound",
           "unsupported_constraint"]

#: Constraint classes the greedy pass can honor natively.  Everything else
#: (query-cost rows, soft constraints, ``AT_LEAST`` cardinality rules) needs
#: the BIP and disqualifies the heuristic tier.
_SUPPORTED = (StorageBudgetConstraint, IndexCountConstraint,
              IndexWidthConstraint, ClusteredIndexConstraint)


@dataclass(frozen=True)
class HeuristicResult:
    """Outcome of one greedy-knapsack pass.

    Attributes:
        configuration: The (feasible) greedy configuration.
        objective: Weighted INUM workload cost under ``configuration`` —
            directly comparable to the BIP objective.
        lower_bound: The ideal all-candidates bound (see module docstring).
        gap: Relative gap of ``objective`` against ``lower_bound``.
        probes: Number of workload costings spent.
        timed_out: True when the deadline interrupted the pass.
    """

    configuration: Configuration
    objective: float
    lower_bound: float
    gap: float
    probes: int
    timed_out: bool


def unsupported_constraint(constraints: Iterable[object]) -> object | None:
    """First constraint the greedy pass cannot honor, or ``None``."""
    for constraint in constraints:
        if isinstance(constraint, SoftConstraint):
            return constraint
        if isinstance(constraint, IndexCountConstraint):
            if constraint.sense is not ComparisonSense.AT_MOST:
                return constraint
            continue
        if not isinstance(constraint, _SUPPORTED):
            return constraint
    return None


def greedy_knapsack(inum: InumCache, workload: Workload,
                    candidates: CandidateSet,
                    constraints: Sequence[object] = (),
                    budget: SolveBudget | None = None,
                    name: str = "anytime-greedy") -> HeuristicResult:
    """Greedily pick candidates by benefit density under the constraints.

    Uses lazy (stale-benefit) greedy selection: each candidate's cost
    reduction is probed against the empty configuration once, and re-probed
    against the current configuration only when it reaches the top of the
    priority queue — the standard submodular-style laziness that keeps the
    number of tensor reductions near-linear in the picks.

    Raises:
        ConstraintError: When a constraint outside the supported classes is
            present (callers choosing ``cascade`` should skip the pass
            instead — :func:`unsupported_constraint` is the precheck).
    """
    bad = unsupported_constraint(constraints)
    if bad is not None:
        raise ConstraintError(
            f"Constraint {getattr(bad, 'name', bad)!r} is not supported by "
            "the greedy heuristic tier; use solve_tier='exact' (or 'cascade', "
            "which falls back to the exact solve)")
    if budget is not None:
        budget.start()

    storage_limits = [c.budget_bytes for c in constraints
                      if isinstance(c, StorageBudgetConstraint)]
    width_limits = [c.max_columns for c in constraints
                    if isinstance(c, IndexWidthConstraint)]
    count_rules = [c for c in constraints
                   if isinstance(c, IndexCountConstraint)]
    clustered_rule = any(isinstance(c, ClusteredIndexConstraint)
                         for c in constraints)

    probes = 0

    def cost_of(configuration: Configuration) -> float:
        nonlocal probes
        probes += 1
        return inum.workload_cost(workload, configuration)

    empty = Configuration((), name=name)
    base_cost = cost_of(empty)
    lower_bound = ideal_lower_bound(inum, workload, candidates)

    admissible = [index for index in candidates
                  if not any(index.width > limit for limit in width_limits)]

    def fits(index: Index, chosen: Configuration, used_bytes: float) -> bool:
        size = candidates.size_of(index)
        if any(used_bytes + size > limit + 1e-6 for limit in storage_limits):
            return False
        for rule in count_rules:
            if rule.selector is not None and not rule.selector(index):
                continue
            total = 1.0 if rule.weight is None else float(rule.weight(index))
            for picked in chosen:
                if rule.selector is not None and not rule.selector(picked):
                    continue
                total += 1.0 if rule.weight is None else float(rule.weight(picked))
            if total > rule.limit + 1e-9:
                return False
        if (clustered_rule and index.clustered
                and chosen.clustered_indexes_on(index.table)):
            return False
        return True

    def result(chosen: Configuration, objective: float, timed_out: bool
               ) -> HeuristicResult:
        return HeuristicResult(
            configuration=chosen, objective=objective,
            lower_bound=lower_bound,
            gap=_relative_gap(objective, lower_bound),
            probes=probes, timed_out=timed_out)

    # Initial scoring: one single-index probe per candidate, deadline-aware.
    # entries: benefit and the pick-round it was computed in; density orders
    # the queue (stale entries are re-probed when they surface).
    scored: list[tuple[float, int, Index, float, int]] = []
    for position, index in enumerate(admissible):
        if budget is not None and budget.expired():
            return result(empty, base_cost, True)
        benefit = base_cost - cost_of(Configuration((index,)))
        if benefit <= 0.0:
            continue
        size = max(candidates.size_of(index), 1.0)
        heapq.heappush(scored, (-benefit / size, position, index,
                                benefit, 0))

    chosen = empty
    objective = base_cost
    used_bytes = 0.0
    pick_round = 0
    while scored:
        if budget is not None and budget.expired():
            return result(chosen, objective, True)
        _, position, index, benefit, scored_round = heapq.heappop(scored)
        if index in chosen or not fits(index, chosen, used_bytes):
            continue
        if scored_round != pick_round:
            # Stale benefit — re-probe against the current configuration.
            benefit = objective - cost_of(chosen.union((index,)))
            if benefit <= 0.0:
                continue
            density = benefit / max(candidates.size_of(index), 1.0)
            if scored and density < -scored[0][0]:
                heapq.heappush(scored, (-density, position, index,
                                        benefit, pick_round))
                continue
        chosen = chosen.union((index,))
        objective -= benefit
        used_bytes += candidates.size_of(index)
        pick_round += 1
    # Re-cost once: the accumulated objective is exact for fresh benefits but
    # the final configuration's cost is what downstream layers compare.
    objective = cost_of(chosen)
    return result(chosen, objective,
                  budget is not None and budget.expired())


# ---------------------------------------------------------------------- bounds
def ideal_lower_bound(inum: InumCache, workload: Workload,
                      candidates: CandidateSet) -> float:
    """Lower bound: every candidate available at once, maintenance-free.

    ``cost(q, S)`` is monotone non-increasing in the available index set and
    update-maintenance terms are non-negative, so for any feasible ``X``::

        cost(workload, X) >= sum_q w_q * (shell_cost(q, S_all) + base_update(q))
    """
    all_config = Configuration(tuple(candidates), name="ideal-bound")
    weights = np.array([statement.weight for statement in workload],
                       dtype=np.float64)
    if inum.uses_gamma_matrix:
        tensor = inum.workload_tensor(workload)
        shell_all = np.asarray(tensor.shell_costs(all_config), dtype=np.float64)
        shell_empty = np.asarray(tensor.shell_costs(Configuration(())),
                                 dtype=np.float64)
        statement_empty = inum.statement_costs(workload, Configuration(()))
        base_terms = statement_empty - shell_empty
        return float(weights @ (shell_all + base_terms))
    total = 0.0
    empty = Configuration(())
    for statement in workload:
        query = statement.query
        if isinstance(query, UpdateQuery):
            shell = query.query_shell()
            base = (inum.statement_cost(query, empty)
                    - inum.cost(shell, empty))
            total += statement.weight * (inum.cost(shell, all_config) + base)
        else:
            total += statement.weight * inum.cost(query, all_config)
    return total


def _relative_gap(objective: float, bound: float) -> float:
    if not np.isfinite(objective) or not np.isfinite(bound):
        return float("inf")
    return max(0.0, (objective - bound) / max(abs(objective), 1e-9))
