"""Interactive tuning sessions: incremental re-tuning after small input changes.

Section 4.2 of the paper: index tuning is exploratory — the DBA tweaks the
candidate set, the constraints or the workload and asks for a revised
recommendation.  CoPhy makes this cheap by (a) reusing the INUM cache, (b)
extending the existing BIP with a *delta* instead of rebuilding it, and (c)
warm-starting the solver from the previous solution.  Figure 6(b) shows the
resulting order-of-magnitude reduction in response time.

Since the unified tuning API landed, sessions are opened through
``TuningService.open_session(TuningRequest(...))`` (which shares the
schema's cache with concurrent ``tune()`` traffic and returns uniform
``TuningResult`` objects); this class remains the delta-BIP engine behind
that surface and the legacy ``CoPhyAdvisor.create_session`` entry point.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.advisors.base import Recommendation
from repro.core.bip_builder import CophyBip
from repro.core.constraints import SoftConstraint, TuningConstraint, split_constraints
from repro.exceptions import SolverError
from repro.indexes.candidate_generation import CandidateSet
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.lp.constraint import Constraint
from repro.workload.workload import Workload

__all__ = ["InteractiveTuningSession"]


class InteractiveTuningSession:
    """A stateful tuning session supporting cheap incremental re-tuning.

    Args:
        advisor: The :class:`~repro.core.advisor.CoPhyAdvisor` that owns the
            INUM cache, BIP builder and solver.
        workload: The workload being tuned.
        constraints: Initial constraint set (hard and/or soft).
        candidates: Initial candidate set (CGen output when omitted).
        dba_indexes: Extra DBA-supplied candidates.
    """

    def __init__(self, advisor, workload: Workload,
                 constraints: Sequence[TuningConstraint | SoftConstraint] = (),
                 candidates: CandidateSet | None = None,
                 dba_indexes: Iterable[Index] = ()):
        self._advisor = advisor
        self._workload = workload
        self._hard, self._soft = split_constraints(constraints)
        if candidates is None:
            candidates = advisor.generate_candidates(workload, dba_indexes)
        self._candidates = candidates
        self._bip: CophyBip | None = None
        self._last_recommendation: Recommendation | None = None
        self._history: list[Recommendation] = []
        # Candidates retracted after the BIP was built: their z variables are
        # pinned to zero with one row each instead of rebuilding the program
        # (the delta-BIP analogue of candidate *shrinking*).  Re-adding a
        # pinned candidate simply removes its row.
        self._pinned_out: dict[Index, Constraint] = {}

    # ---------------------------------------------------------------- accessors
    @property
    def workload(self) -> Workload:
        return self._workload

    @property
    def candidates(self) -> CandidateSet:
        return self._candidates

    @property
    def last_recommendation(self) -> Recommendation | None:
        return self._last_recommendation

    @property
    def history(self) -> tuple[Recommendation, ...]:
        return tuple(self._history)

    @property
    def bip(self) -> CophyBip:
        if self._bip is None:
            raise SolverError("Call recommend() before inspecting the BIP")
        return self._bip

    # ------------------------------------------------------------------ tuning
    # reprolint: requires-lock (TuningSession drives this under context.lock;
    # direct embedders are documented single-threaded)
    def recommend(self) -> Recommendation:
        """Produce the initial recommendation (full INUM + build + solve)."""
        advisor = self._advisor
        timings: dict[str, float] = {}
        started = time.perf_counter()

        inum_started = time.perf_counter()
        advisor.inum.build_workload(self._workload)
        timings["inum"] = time.perf_counter() - inum_started

        build_started = time.perf_counter()
        self._bip = advisor.bip_builder.build(self._workload, self._candidates)
        # A fresh BIP has no pin rows; stale entries would otherwise make a
        # later add_candidates() take the restore path (a no-op on the new
        # model) and silently skip creating the candidate's variables.
        self._pinned_out = {}
        timings["build"] = time.perf_counter() - build_started

        recommendation = self._solve(timings, warm_start=None)
        timings["total"] = time.perf_counter() - started
        return recommendation

    def add_candidates(self, new_indexes: Iterable[Index]) -> Recommendation:
        """Re-tune after the DBA adds candidate indexes (delta BIP + warm start)."""
        if self._bip is None:
            self._candidates.add_all(new_indexes)
            return self.recommend()
        advisor = self._advisor
        timings: dict[str, float] = {"inum": 0.0}
        started = time.perf_counter()

        build_started = time.perf_counter()
        new_indexes = list(new_indexes)
        # Candidates that were pinned out earlier come back by dropping their
        # pin rows — their variables and coefficients are still in the BIP.
        restored = [index for index in new_indexes if index in self._pinned_out]
        if restored:
            self._bip.model.remove_constraints(
                [self._pinned_out.pop(index) for index in restored])
            self._candidates.add_all(restored)
        advisor.bip_builder.extend(self._bip, new_indexes)
        timings["build"] = time.perf_counter() - build_started

        warm_start = self._warm_start_values()
        recommendation = self._solve(timings, warm_start=warm_start)
        timings["total"] = time.perf_counter() - started
        return recommendation

    def remove_candidates(self, removed_indexes: Iterable[Index]) -> Recommendation:
        """Re-tune after the DBA retracts candidate indexes (pinned delta BIP).

        The shrink analogue of :meth:`add_candidates`: instead of rebuilding
        the BIP without the retracted candidates, each one's ``z`` variable
        is pinned to zero with a single constraint row, the warm start is the
        previous recommendation minus the retracted indexes, and the solver
        re-runs on the otherwise unchanged program.
        """
        removed = [index for index in dict.fromkeys(removed_indexes)
                   if index in self._candidates]
        self._candidates.remove_all(removed)
        if self._bip is None:
            return self.recommend()
        timings: dict[str, float] = {"inum": 0.0}
        started = time.perf_counter()

        build_started = time.perf_counter()
        for index in removed:
            variable = self._bip.z_variables.get(index)
            if variable is None or index in self._pinned_out:
                continue
            self._pinned_out[index] = self._bip.model.add_constraint(
                (1.0 * variable) <= 0.0, name=f"removed[{index.name}]")
        timings["build"] = time.perf_counter() - build_started

        warm_start = None
        if self._last_recommendation is not None:
            survivors = Configuration(
                [index for index in self._last_recommendation.configuration
                 if index not in set(removed)])
            warm_start = self._bip.warm_start_from(survivors)
        recommendation = self._solve(timings, warm_start=warm_start)
        timings["total"] = time.perf_counter() - started
        return recommendation

    def update_constraints(self,
                           constraints: Sequence[TuningConstraint | SoftConstraint]
                           ) -> Recommendation:
        """Re-tune with a different constraint set (warm-started re-solve)."""
        self._hard, self._soft = split_constraints(constraints)
        if self._bip is None:
            return self.recommend()
        timings: dict[str, float] = {"inum": 0.0, "build": 0.0}
        started = time.perf_counter()
        warm_start = self._warm_start_values()
        recommendation = self._solve(timings, warm_start=warm_start)
        timings["total"] = time.perf_counter() - started
        return recommendation

    # ---------------------------------------------------------------- internals
    def _warm_start_values(self):
        if self._bip is None or self._last_recommendation is None:
            return None
        return self._bip.warm_start_from(self._last_recommendation.configuration)

    def _solve(self, timings: dict[str, float], warm_start) -> Recommendation:
        advisor = self._advisor
        solve_started = time.perf_counter()
        report = advisor.solver.solve(self._bip, hard_constraints=self._hard,
                                      warm_start=warm_start)
        timings["solve"] = time.perf_counter() - solve_started
        recommendation = Recommendation(
            configuration=report.configuration,
            advisor_name=advisor.name,
            objective_estimate=report.objective,
            timings=timings,
            candidate_count=len(self._candidates),
            whatif_calls=advisor.optimizer.whatif_calls,
            gap=report.gap,
            gap_trace=report.gap_trace,
            extras={"solve_report": report, "warm_started": warm_start is not None},
        )
        self._last_recommendation = recommendation
        self._history.append(recommendation)
        return recommendation
