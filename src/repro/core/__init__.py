"""CoPhy core: the BIP-based index advisor.

The pipeline mirrors Figure 2 of the paper:

``CGen`` (:mod:`repro.indexes.candidate_generation`) produces the candidate
set ``S``; ``INUM`` (:mod:`repro.inum`) pre-processes the workload;
:class:`~repro.core.bip_builder.BipBuilder` emits the compact BIP of
Theorem 1; the DBA's constraints (:mod:`repro.core.constraints`) are merged in
as linear rows; :class:`~repro.core.solver.CoPhySolver` hands the program to
an off-the-shelf BIP solver with gap-based early termination; soft constraints
are explored along a Pareto-optimal curve
(:mod:`repro.core.soft_constraints`); and
:class:`~repro.core.advisor.CoPhyAdvisor` ties everything together, including
interactive re-tuning (:mod:`repro.core.interactive`).
"""

from repro.core.bip_builder import BipBuilder, CophyBip
from repro.core.constraints import (
    ClusteredIndexConstraint,
    IndexCountConstraint,
    IndexWidthConstraint,
    QueryCostConstraint,
    QuerySpeedupGenerator,
    SoftConstraint,
    StorageBudgetConstraint,
    TuningConstraint,
    UpdateCostConstraint,
)
from repro.core.solver import CoPhySolver, SolverBackend
from repro.core.soft_constraints import ParetoExplorer, ParetoPoint
from repro.core.advisor import CoPhyAdvisor, Recommendation
from repro.core.interactive import InteractiveTuningSession

__all__ = [
    "BipBuilder",
    "CophyBip",
    "TuningConstraint",
    "StorageBudgetConstraint",
    "IndexCountConstraint",
    "IndexWidthConstraint",
    "ClusteredIndexConstraint",
    "QueryCostConstraint",
    "QuerySpeedupGenerator",
    "UpdateCostConstraint",
    "SoftConstraint",
    "CoPhySolver",
    "SolverBackend",
    "ParetoExplorer",
    "ParetoPoint",
    "CoPhyAdvisor",
    "Recommendation",
    "InteractiveTuningSession",
]
