"""The CoPhy index advisor facade.

Wires together CGen, INUM, BIPGen and the Solver (Figure 2 of the paper) and
reports the same execution-time breakdown the paper uses in its evaluation
(INUM time, BIP build time, solve time).
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.advisors.base import Advisor, Recommendation, warn_legacy_construction
from repro.catalog.schema import Schema
from repro.core.bip_builder import BipBuilder, CophyBip
from repro.core.constraints import (
    SoftConstraint,
    TuningConstraint,
    split_constraints,
)
from repro.core.heuristics import (
    HeuristicResult,
    greedy_knapsack,
    ideal_lower_bound,
    unsupported_constraint,
)
from repro.core.soft_constraints import ParetoExplorer, ParetoPoint
from repro.core.solver import CoPhySolver, SolverBackend
from repro.exceptions import BuildInterrupted, ConstraintError, SolverError
from repro.indexes.candidate_generation import CandidateGenerator, CandidateSet
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.lp.budget import SolveBudget
from repro.obs.trace import span
from repro.optimizer.cost_model import CostModel
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.workload import Workload

__all__ = ["CoPhyAdvisor", "Recommendation"]


def _heuristic_extras(heuristic: HeuristicResult) -> dict:
    """JSON-friendly digest of the greedy pass for ``Recommendation.extras``."""
    return {
        "objective": heuristic.objective,
        "lower_bound": heuristic.lower_bound,
        "gap": heuristic.gap,
        "probes": heuristic.probes,
        "picked": len(heuristic.configuration),
        "timed_out": heuristic.timed_out,
    }


class CoPhyAdvisor(Advisor):
    """The CoPhy index advisor.

    Args:
        schema: The database catalog being tuned.
        optimizer: Optional what-if optimizer to share with other components
            (a fresh one over ``schema`` is created otherwise).
        cost_model: Cost-model constants for a freshly created optimizer.
        candidate_generator: Optional custom CGen instance.
        backend: Which BIP solver backend to delegate to.
        gap_tolerance: Early-termination optimality gap (paper default: 5%).
        time_limit_seconds: Wall-clock limit for each solver call.
        apply_relaxation: Apply the Lagrangian-style relaxation before solving.
        max_orders_per_table / max_templates_per_query: INUM enumeration caps
            (applied to a freshly created cache; a shared ``inum`` keeps its
            own caps).
        inum: Optional shared INUM cache (the unified API wires one per
            schema so concurrent sessions reuse templates and tensors); a
            fresh cache over ``optimizer`` is created otherwise.
    """

    name = "cophy"

    def __init__(self, schema: Schema, optimizer: WhatIfOptimizer | None = None,
                 cost_model: CostModel | None = None,
                 candidate_generator: CandidateGenerator | None = None,
                 backend: SolverBackend = SolverBackend.MILP,
                 gap_tolerance: float = 0.05,
                 time_limit_seconds: float | None = None,
                 apply_relaxation: bool = False,
                 max_orders_per_table: int = 2,
                 max_templates_per_query: int = 64,
                 inum: InumCache | None = None):
        warn_legacy_construction(type(self))
        self.schema = schema
        if optimizer is None and inum is not None:
            optimizer = inum.optimizer
        self.optimizer = optimizer or WhatIfOptimizer(schema, cost_model)
        self.candidate_generator = candidate_generator or CandidateGenerator(schema)
        self.inum = inum or InumCache(self.optimizer,
                                      max_orders_per_table=max_orders_per_table,
                                      max_templates_per_query=max_templates_per_query)
        self.bip_builder = BipBuilder(self.inum)
        self.solver = CoPhySolver(backend=backend, gap_tolerance=gap_tolerance,
                                  time_limit_seconds=time_limit_seconds,
                                  apply_relaxation=apply_relaxation)
        self.gap_tolerance = gap_tolerance

    # -------------------------------------------------------------------- public
    def generate_candidates(self, workload: Workload,
                            dba_indexes: Iterable[Index] = ()) -> CandidateSet:
        """Run CGen on a workload (plus DBA-supplied indexes ``S_DBA``)."""
        return self.candidate_generator.generate(workload, dba_indexes=dba_indexes)

    # reprolint: requires-lock (mutates the shared INUM cache; Tuner/TuningService
    # serialize per-context, embedded callers are documented single-threaded)
    def build_bip(self, workload: Workload,
                  candidates: CandidateSet | None = None,
                  dba_indexes: Iterable[Index] = ()) -> CophyBip:
        """Pre-process a workload into its Theorem-1 BIP (INUM + BIPGen)."""
        if candidates is None:
            candidates = self.generate_candidates(workload, dba_indexes)
        self.inum.prepare(workload, candidates)
        return self.bip_builder.build(workload, candidates)

    # reprolint: requires-lock (see build_bip: caller serializes per-context)
    def tune(self, workload: Workload,
             constraints: Sequence[TuningConstraint | SoftConstraint] = (),
             candidates: CandidateSet | None = None,
             dba_indexes: Iterable[Index] = (),
             budget: SolveBudget | None = None) -> Recommendation:
        """Run a complete tuning session.

        Hard constraints are merged into the BIP; if soft constraints are
        present the Pareto curve is explored and the cost-optimal end of the
        curve is returned as the primary recommendation, with the full curve
        available under ``extras['pareto_points']``.

        ``budget`` makes the session *anytime*: its tier selects between the
        greedy-knapsack pass (``"heuristic"``), the exact BIP solve
        (``"exact"``, interrupted at the deadline with the best-so-far
        incumbent) and ``"cascade"`` — greedy first, whose incumbent
        warm-starts the exact solve with whatever wall clock remains.
        """
        hard, soft = split_constraints(constraints)
        tier = "exact" if budget is None else budget.tier
        if budget is not None:
            budget.start()
            if soft and budget.time_budget_ms is not None:
                raise ConstraintError(
                    "Soft constraints are not budget-aware: the Pareto "
                    "exploration runs several exact solves; drop "
                    "time_budget_ms or make the constraints hard")
        timings: dict[str, float] = {}

        started = time.perf_counter()
        if candidates is None:
            with span("candidates") as node:
                candidates = self.generate_candidates(workload, dba_indexes)
                node.set(candidates=len(candidates))
        timings["candidate_generation"] = time.perf_counter() - started

        whatif_before = self.optimizer.whatif_calls + self.inum.template_build_calls
        inum_started = time.perf_counter()
        # Template enumeration plus gamma-matrix materialization for the full
        # candidate set: BIP coefficient assembly then only reads arrays.
        with span("prepare", statements=len(workload),
                  candidates=len(candidates)):
            self.inum.prepare(workload, candidates)
        timings["inum"] = time.perf_counter() - inum_started

        def whatif_spent() -> int:
            return (self.optimizer.whatif_calls
                    + self.inum.template_build_calls - whatif_before)

        heuristic: HeuristicResult | None = None
        if tier in ("heuristic", "cascade") and not soft:
            blocker = unsupported_constraint(hard)
            if blocker is not None and tier == "heuristic":
                # Cascade instead skips the greedy pass and lets the exact
                # solve handle the constraint.
                raise ConstraintError(
                    f"Constraint {getattr(blocker, 'name', blocker)!r} is "
                    "not supported by solve_tier='heuristic'; use 'cascade' "
                    "or 'exact'")
            if blocker is None:
                heuristic_started = time.perf_counter()
                with span("greedy") as node:
                    heuristic = greedy_knapsack(self.inum, workload,
                                                candidates, hard, budget=budget)
                    node.set(picked=len(heuristic.configuration),
                             gap=round(heuristic.gap, 6))
                timings["heuristic"] = time.perf_counter() - heuristic_started
                if tier == "heuristic" or budget.expired():
                    timings["total"] = time.perf_counter() - started
                    return Recommendation(
                        configuration=heuristic.configuration,
                        advisor_name=self.name,
                        objective_estimate=heuristic.objective,
                        timings=timings,
                        candidate_count=len(candidates),
                        whatif_calls=whatif_spent(),
                        gap=heuristic.gap,
                        extras={"heuristic": _heuristic_extras(heuristic)},
                        timed_out=budget.expired(),
                        solve_tier="heuristic",
                    )

        # A deadline fallback exists when the cascade produced a greedy
        # incumbent, or when the constraint classes guarantee the empty
        # configuration is feasible (exactly the heuristic tier's classes).
        can_fallback = (heuristic is not None
                        or unsupported_constraint(hard) is None)
        build_started = time.perf_counter()
        try:
            with span("bip_build") as node:
                bip = self.bip_builder.build(workload, candidates,
                                             budget=budget if can_fallback
                                             else None)
                # Aggregate scalars only: the ``::``-keyed statistics are
                # per-coefficient (beta/gamma/ucost) and would bloat every
                # exported trace by thousands of attributes.
                node.set(**{key: value
                            for key, value in bip.statistics.items()
                            if isinstance(value, (int, float))
                            and "::" not in key})
        except BuildInterrupted:
            timings["build"] = time.perf_counter() - build_started
            return self._deadline_fallback(workload, candidates, heuristic,
                                           tier, timings, started,
                                           whatif_spent())
        timings["build"] = time.perf_counter() - build_started
        if budget is not None and budget.expired() and can_fallback:
            # The build finished but ate the remaining clock; even starting
            # the exact solve (its root relaxation / presolve alone) could
            # dwarf the overrun, so answer with the best incumbent now.
            recommendation = self._deadline_fallback(
                workload, candidates, heuristic, tier, timings, started,
                whatif_spent())
            recommendation.extras["bip"] = bip
            return recommendation

        solve_started = time.perf_counter()
        extras: dict = {"bip_statistics": dict(bip.statistics)}
        if heuristic is not None:
            extras["heuristic"] = _heuristic_extras(heuristic)
        if soft:
            with span("solve", mode="pareto") as node:
                explorer = ParetoExplorer(self.solver)
                points = explorer.explore(bip, soft, hard_constraints=hard)
                node.set(points=len(points))
            timings["solve"] = time.perf_counter() - solve_started
            best = max(points, key=lambda p: p.lambda_value)
            extras["pareto_points"] = points
            recommendation = Recommendation(
                configuration=best.configuration,
                advisor_name=self.name,
                objective_estimate=best.workload_cost,
                timings=timings,
                candidate_count=len(candidates),
                whatif_calls=whatif_spent(),
                gap=0.0,
                extras=extras,
            )
        else:
            warm_start = (bip.warm_start_from(heuristic.configuration)
                          if heuristic is not None else None)
            try:
                with span("solve", warm_started=warm_start is not None) \
                        as node:
                    report = self.solver.solve(bip, hard_constraints=hard,
                                               warm_start=warm_start,
                                               budget=budget)
                    solution = getattr(report, "solution", None)
                    node.set(gap=round(report.gap, 6),
                             timed_out=report.timed_out,
                             nodes=int(getattr(solution, "nodes_explored",
                                               0)))
            except SolverError:
                if heuristic is None:
                    raise
                # The deadline killed the exact solve before any incumbent
                # (MILP backend, which cannot warm-start); the greedy result
                # is still a valid feasible answer.
                timings["solve"] = time.perf_counter() - solve_started
                timings["total"] = time.perf_counter() - started
                recommendation = Recommendation(
                    configuration=heuristic.configuration,
                    advisor_name=self.name,
                    objective_estimate=heuristic.objective,
                    timings=timings,
                    candidate_count=len(candidates),
                    whatif_calls=whatif_spent(),
                    gap=heuristic.gap,
                    extras=extras,
                    timed_out=True,
                    solve_tier="cascade",
                )
                recommendation.extras["bip"] = bip
                return recommendation
            timings["solve"] = time.perf_counter() - solve_started
            extras["solve_report"] = report
            timed_out = report.timed_out or (budget is not None
                                             and budget.expired())
            configuration, objective = report.configuration, report.objective
            gap = report.gap
            if (heuristic is not None
                    and heuristic.objective < objective - 1e-9):
                # The exact solve (e.g. the MILP backend, which ignores warm
                # starts) was cut off below the greedy incumbent — keep the
                # better configuration and the tightest known bound.
                configuration = heuristic.configuration
                objective = heuristic.objective
                bound = max(heuristic.lower_bound, report.solution.best_bound)
                gap = max(0.0, (objective - bound) / max(abs(objective), 1e-9))
            recommendation = Recommendation(
                configuration=configuration,
                advisor_name=self.name,
                objective_estimate=objective,
                timings=timings,
                candidate_count=len(candidates),
                whatif_calls=whatif_spent(),
                gap=gap,
                gap_trace=report.gap_trace,
                extras=extras,
                timed_out=timed_out,
                solve_tier="cascade" if heuristic is not None else "exact",
            )
        timings["total"] = time.perf_counter() - started
        recommendation.extras["bip"] = bip
        return recommendation

    def _deadline_fallback(self, workload: Workload, candidates: CandidateSet,
                           heuristic: HeuristicResult | None, tier: str,
                           timings: dict[str, float], started: float,
                           whatif_calls: int) -> Recommendation:
        """Best-so-far answer when the deadline fires before the exact solve.

        The greedy incumbent when the cascade produced one; otherwise the
        empty configuration — feasible for every constraint class the
        heuristic tier supports (the caller checked) — costed for real and
        reported with its finite gap against the ideal all-candidates bound.
        """
        if heuristic is not None:
            timings["total"] = time.perf_counter() - started
            return Recommendation(
                configuration=heuristic.configuration,
                advisor_name=self.name,
                objective_estimate=heuristic.objective,
                timings=timings,
                candidate_count=len(candidates),
                whatif_calls=whatif_calls,
                gap=heuristic.gap,
                extras={"heuristic": _heuristic_extras(heuristic)},
                timed_out=True,
                solve_tier="cascade",
            )
        empty = Configuration((), name="cophy-recommendation")
        objective = self.inum.workload_cost(workload, empty)
        bound = ideal_lower_bound(self.inum, workload, candidates)
        timings["total"] = time.perf_counter() - started
        return Recommendation(
            configuration=empty,
            advisor_name=self.name,
            objective_estimate=objective,
            timings=timings,
            candidate_count=len(candidates),
            whatif_calls=whatif_calls,
            gap=max(0.0, (objective - bound) / max(abs(objective), 1e-9)),
            timed_out=True,
            solve_tier=tier,
        )

    def explore_tradeoffs(self, workload: Workload,
                          soft_constraints: Sequence[SoftConstraint],
                          hard_constraints: Sequence[TuningConstraint] = (),
                          candidates: CandidateSet | None = None,
                          lambdas: Sequence[float] | None = None
                          ) -> list[ParetoPoint]:
        """Explore the Pareto curve of one or more soft constraints."""
        bip = self.build_bip(workload, candidates)
        explorer = ParetoExplorer(self.solver)
        return explorer.explore(bip, soft_constraints,
                                hard_constraints=hard_constraints, lambdas=lambdas)

    def create_session(self, workload: Workload,
                       constraints: Sequence[TuningConstraint | SoftConstraint] = (),
                       candidates: CandidateSet | None = None,
                       dba_indexes: Iterable[Index] = ()):
        """Start an interactive tuning session (incremental re-tuning)."""
        from repro.core.interactive import InteractiveTuningSession

        return InteractiveTuningSession(self, workload, constraints=constraints,
                                        candidates=candidates,
                                        dba_indexes=dba_indexes)
