"""The CoPhy index advisor facade.

Wires together CGen, INUM, BIPGen and the Solver (Figure 2 of the paper) and
reports the same execution-time breakdown the paper uses in its evaluation
(INUM time, BIP build time, solve time).
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.advisors.base import Advisor, Recommendation, warn_legacy_construction
from repro.catalog.schema import Schema
from repro.core.bip_builder import BipBuilder, CophyBip
from repro.core.constraints import (
    SoftConstraint,
    TuningConstraint,
    split_constraints,
)
from repro.core.soft_constraints import ParetoExplorer, ParetoPoint
from repro.core.solver import CoPhySolver, SolverBackend
from repro.indexes.candidate_generation import CandidateGenerator, CandidateSet
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.optimizer.cost_model import CostModel
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.workload import Workload

__all__ = ["CoPhyAdvisor", "Recommendation"]


class CoPhyAdvisor(Advisor):
    """The CoPhy index advisor.

    Args:
        schema: The database catalog being tuned.
        optimizer: Optional what-if optimizer to share with other components
            (a fresh one over ``schema`` is created otherwise).
        cost_model: Cost-model constants for a freshly created optimizer.
        candidate_generator: Optional custom CGen instance.
        backend: Which BIP solver backend to delegate to.
        gap_tolerance: Early-termination optimality gap (paper default: 5%).
        time_limit_seconds: Wall-clock limit for each solver call.
        apply_relaxation: Apply the Lagrangian-style relaxation before solving.
        max_orders_per_table / max_templates_per_query: INUM enumeration caps
            (applied to a freshly created cache; a shared ``inum`` keeps its
            own caps).
        inum: Optional shared INUM cache (the unified API wires one per
            schema so concurrent sessions reuse templates and tensors); a
            fresh cache over ``optimizer`` is created otherwise.
    """

    name = "cophy"

    def __init__(self, schema: Schema, optimizer: WhatIfOptimizer | None = None,
                 cost_model: CostModel | None = None,
                 candidate_generator: CandidateGenerator | None = None,
                 backend: SolverBackend = SolverBackend.MILP,
                 gap_tolerance: float = 0.05,
                 time_limit_seconds: float | None = None,
                 apply_relaxation: bool = False,
                 max_orders_per_table: int = 2,
                 max_templates_per_query: int = 64,
                 inum: InumCache | None = None):
        warn_legacy_construction(type(self))
        self.schema = schema
        if optimizer is None and inum is not None:
            optimizer = inum.optimizer
        self.optimizer = optimizer or WhatIfOptimizer(schema, cost_model)
        self.candidate_generator = candidate_generator or CandidateGenerator(schema)
        self.inum = inum or InumCache(self.optimizer,
                                      max_orders_per_table=max_orders_per_table,
                                      max_templates_per_query=max_templates_per_query)
        self.bip_builder = BipBuilder(self.inum)
        self.solver = CoPhySolver(backend=backend, gap_tolerance=gap_tolerance,
                                  time_limit_seconds=time_limit_seconds,
                                  apply_relaxation=apply_relaxation)
        self.gap_tolerance = gap_tolerance

    # -------------------------------------------------------------------- public
    def generate_candidates(self, workload: Workload,
                            dba_indexes: Iterable[Index] = ()) -> CandidateSet:
        """Run CGen on a workload (plus DBA-supplied indexes ``S_DBA``)."""
        return self.candidate_generator.generate(workload, dba_indexes=dba_indexes)

    def build_bip(self, workload: Workload,
                  candidates: CandidateSet | None = None,
                  dba_indexes: Iterable[Index] = ()) -> CophyBip:
        """Pre-process a workload into its Theorem-1 BIP (INUM + BIPGen)."""
        if candidates is None:
            candidates = self.generate_candidates(workload, dba_indexes)
        self.inum.prepare(workload, candidates)
        return self.bip_builder.build(workload, candidates)

    def tune(self, workload: Workload,
             constraints: Sequence[TuningConstraint | SoftConstraint] = (),
             candidates: CandidateSet | None = None,
             dba_indexes: Iterable[Index] = ()) -> Recommendation:
        """Run a complete tuning session.

        Hard constraints are merged into the BIP; if soft constraints are
        present the Pareto curve is explored and the cost-optimal end of the
        curve is returned as the primary recommendation, with the full curve
        available under ``extras['pareto_points']``.
        """
        hard, soft = split_constraints(constraints)
        timings: dict[str, float] = {}

        started = time.perf_counter()
        if candidates is None:
            candidates = self.generate_candidates(workload, dba_indexes)
        timings["candidate_generation"] = time.perf_counter() - started

        whatif_before = self.optimizer.whatif_calls + self.inum.template_build_calls
        inum_started = time.perf_counter()
        # Template enumeration plus gamma-matrix materialization for the full
        # candidate set: BIP coefficient assembly then only reads arrays.
        self.inum.prepare(workload, candidates)
        timings["inum"] = time.perf_counter() - inum_started

        build_started = time.perf_counter()
        bip = self.bip_builder.build(workload, candidates)
        timings["build"] = time.perf_counter() - build_started

        solve_started = time.perf_counter()
        extras: dict = {"bip_statistics": dict(bip.statistics)}
        if soft:
            explorer = ParetoExplorer(self.solver)
            points = explorer.explore(bip, soft, hard_constraints=hard)
            timings["solve"] = time.perf_counter() - solve_started
            best = max(points, key=lambda p: p.lambda_value)
            extras["pareto_points"] = points
            recommendation = Recommendation(
                configuration=best.configuration,
                advisor_name=self.name,
                objective_estimate=best.workload_cost,
                timings=timings,
                candidate_count=len(candidates),
                whatif_calls=(self.optimizer.whatif_calls
                              + self.inum.template_build_calls - whatif_before),
                gap=0.0,
                extras=extras,
            )
        else:
            report = self.solver.solve(bip, hard_constraints=hard)
            timings["solve"] = time.perf_counter() - solve_started
            extras["solve_report"] = report
            recommendation = Recommendation(
                configuration=report.configuration,
                advisor_name=self.name,
                objective_estimate=report.objective,
                timings=timings,
                candidate_count=len(candidates),
                whatif_calls=(self.optimizer.whatif_calls
                              + self.inum.template_build_calls - whatif_before),
                gap=report.gap,
                gap_trace=report.gap_trace,
                extras=extras,
            )
        timings["total"] = time.perf_counter() - started
        recommendation.extras["bip"] = bip
        return recommendation

    def explore_tradeoffs(self, workload: Workload,
                          soft_constraints: Sequence[SoftConstraint],
                          hard_constraints: Sequence[TuningConstraint] = (),
                          candidates: CandidateSet | None = None,
                          lambdas: Sequence[float] | None = None
                          ) -> list[ParetoPoint]:
        """Explore the Pareto curve of one or more soft constraints."""
        bip = self.build_bip(workload, candidates)
        explorer = ParetoExplorer(self.solver)
        return explorer.explore(bip, soft_constraints,
                                hard_constraints=hard_constraints, lambdas=lambdas)

    def create_session(self, workload: Workload,
                       constraints: Sequence[TuningConstraint | SoftConstraint] = (),
                       candidates: CandidateSet | None = None,
                       dba_indexes: Iterable[Index] = ()):
        """Start an interactive tuning session (incremental re-tuning)."""
        from repro.core.interactive import InteractiveTuningSession

        return InteractiveTuningSession(self, workload, constraints=constraints,
                                        candidates=candidates,
                                        dba_indexes=dba_indexes)
