"""Soft constraints: Pareto-frontier exploration with the Chord algorithm.

A soft constraint (e.g. "total index storage should be around M, but exceeding
it is acceptable when it buys enough workload-cost reduction") is handled
outside the BIP solver (section 4.1 and Appendix D of the paper): the BIP's
objective is replaced by the scalarisation

    lambda * cost(X, W) + (1 - lambda) * (measure(X) - target)

and the BIP is re-solved for several values of ``lambda`` in [0, 1].  The
resulting solutions are Pareto-optimal with respect to (workload cost,
measure).  The Chord algorithm of Daskalakis, Diakonikolas and Yannakakis
picks the ``lambda`` values adaptively so that a small number of solves yields
a provably good approximation of the whole curve.

Because only the objective changes between solves, warm starts from the
previous point make the follow-up solves much cheaper than the first one —
the effect Figure 6(c) reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from typing import Sequence

from repro.core.bip_builder import CophyBip
from repro.core.constraints import SoftConstraint, TuningConstraint
from repro.core.solver import CoPhySolver, SolveReport
from repro.indexes.configuration import Configuration
from repro.lp.expression import LinearExpression

__all__ = ["ParetoPoint", "ParetoExplorer"]


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the Pareto-optimal trade-off curve."""

    lambda_value: float
    workload_cost: float
    measures: tuple[float, ...]
    configuration: Configuration
    solve_seconds: float
    warm_started: bool

    @property
    def measure(self) -> float:
        """Shorthand for the first (usually only) soft-constraint measure."""
        return self.measures[0] if self.measures else 0.0


@dataclass
class _NormalisedSoft:
    """A soft constraint with its measure expression and scaling factor."""

    expression: LinearExpression
    target: float
    scale: float


class ParetoExplorer:
    """Generates Pareto-optimal recommendations for soft constraints."""

    def __init__(self, solver: CoPhySolver, chord_tolerance: float = 0.05,
                 max_points: int = 9):
        if max_points < 2:
            raise ValueError("max_points must be at least 2")
        self._solver = solver
        self._chord_tolerance = chord_tolerance
        self._max_points = max_points

    # -------------------------------------------------------------------- public
    def explore(self, bip: CophyBip, soft_constraints: Sequence[SoftConstraint],
                hard_constraints: Sequence[TuningConstraint] = (),
                lambdas: Sequence[float] | None = None) -> list[ParetoPoint]:
        """Compute a representative subset of the Pareto curve.

        Args:
            bip: The tuning problem's BIP.
            soft_constraints: One or more soft constraints to trade off
                against workload cost.
            hard_constraints: Hard constraints that must always hold.
            lambdas: Explicit ``lambda`` values to evaluate (bypasses the
                Chord algorithm; used by the benchmark that reproduces the
                fixed lambda sweep of Figure 6(c)).
        """
        if not soft_constraints:
            raise ValueError("explore() needs at least one soft constraint")
        normalised = [self._normalise(bip, soft) for soft in soft_constraints]

        if lambdas is not None:
            points = []
            warm_values = None
            for lambda_value in lambdas:
                point, warm_values = self._solve_point(
                    bip, normalised, hard_constraints, lambda_value, warm_values)
                points.append(point)
            return points
        return self._chord(bip, normalised, hard_constraints)

    # ----------------------------------------------------------- chord algorithm
    def _chord(self, bip: CophyBip, normalised: list[_NormalisedSoft],
               hard_constraints: Sequence[TuningConstraint]) -> list[ParetoPoint]:
        """Adaptive lambda selection following the Chord algorithm."""
        warm_values = None
        low_point, warm_values = self._solve_point(bip, normalised, hard_constraints,
                                                   0.0, warm_values)
        high_point, warm_values = self._solve_point(bip, normalised, hard_constraints,
                                                    1.0, warm_values)
        points: dict[float, ParetoPoint] = {0.0: low_point, 1.0: high_point}
        segments: list[tuple[float, float]] = [(0.0, 1.0)]

        while segments and len(points) < self._max_points:
            low_lambda, high_lambda = segments.pop()
            low = points[low_lambda]
            high = points[high_lambda]
            if self._segment_is_flat(low, high):
                continue
            mid_lambda = 0.5 * (low_lambda + high_lambda)
            mid_point, warm_values = self._solve_point(bip, normalised,
                                                       hard_constraints,
                                                       mid_lambda, warm_values)
            points[mid_lambda] = mid_point
            if self._distance_from_chord(low, high, mid_point) > self._chord_tolerance:
                segments.append((low_lambda, mid_lambda))
                segments.append((mid_lambda, high_lambda))
        return [points[key] for key in sorted(points)]

    def _segment_is_flat(self, low: ParetoPoint, high: ParetoPoint) -> bool:
        cost_span = abs(low.workload_cost - high.workload_cost)
        measure_span = abs(low.measure - high.measure)
        cost_scale = max(abs(low.workload_cost), abs(high.workload_cost), 1e-9)
        measure_scale = max(abs(low.measure), abs(high.measure), 1e-9)
        return (cost_span / cost_scale < self._chord_tolerance
                and measure_span / measure_scale < self._chord_tolerance)

    @staticmethod
    def _distance_from_chord(low: ParetoPoint, high: ParetoPoint,
                             mid: ParetoPoint) -> float:
        """Normalised distance of ``mid`` from the chord between ``low`` and ``high``."""
        cost_scale = max(abs(low.workload_cost), abs(high.workload_cost), 1e-9)
        measure_scale = max(abs(low.measure), abs(high.measure), 1e-9)
        ax, ay = low.measure / measure_scale, low.workload_cost / cost_scale
        bx, by = high.measure / measure_scale, high.workload_cost / cost_scale
        px, py = mid.measure / measure_scale, mid.workload_cost / cost_scale
        segment_dx, segment_dy = bx - ax, by - ay
        segment_length = (segment_dx ** 2 + segment_dy ** 2) ** 0.5
        if segment_length < 1e-12:
            return 0.0
        # Perpendicular distance from the point to the chord line.
        cross = abs(segment_dx * (ay - py) - segment_dy * (ax - px))
        return cross / segment_length

    # ---------------------------------------------------------------- internals
    def _normalise(self, bip: CophyBip, soft: SoftConstraint) -> _NormalisedSoft:
        expression = soft.measure_expression(bip)
        target = soft.target_value()
        coefficients = list(expression.terms.values())
        scale = max((abs(c) for c in coefficients), default=1.0)
        scale = max(scale, 1e-9)
        return _NormalisedSoft(expression=expression, target=target, scale=scale)

    def _solve_point(self, bip: CophyBip, normalised: list[_NormalisedSoft],
                     hard_constraints: Sequence[TuningConstraint],
                     lambda_value: float, warm_values) -> tuple[ParetoPoint, dict]:
        lambda_value = min(1.0, max(0.0, lambda_value))
        cost_terms = bip.cost_expression.terms
        cost_scale = max((abs(c) for c in cost_terms.values()), default=1.0)
        objective = bip.cost_expression * (lambda_value / cost_scale)
        for soft in normalised:
            weight = (1.0 - lambda_value) / soft.scale
            objective = objective + (soft.expression - soft.target) * weight
        started = time.perf_counter()
        report: SolveReport = self._solver.solve(
            bip, hard_constraints=hard_constraints,
            warm_start=warm_values, extra_objective=objective)
        elapsed = time.perf_counter() - started
        workload_cost = bip.cost_expression.evaluate(report.solution.values)
        measures = tuple(soft.expression.evaluate(report.solution.values)
                         for soft in normalised)
        point = ParetoPoint(
            lambda_value=lambda_value,
            workload_cost=workload_cost,
            measures=measures,
            configuration=report.configuration,
            solve_seconds=elapsed,
            warm_started=warm_values is not None,
        )
        return point, dict(report.solution.values)
