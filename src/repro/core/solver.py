"""The Solver component of CoPhy (Figure 3 of the paper).

Responsibilities:

1. merge the DBA's hard constraints into the BIP as linear rows;
2. probe feasibility and report the offending constraints back to the DBA
   (raising :class:`~repro.exceptions.InfeasibleProblemError`);
3. optionally apply a Lagrangian-style relaxation of the slot-assignment
   constraints (moving them into the objective as penalty terms) to avoid
   solver corner cases;
4. hand the program to the off-the-shelf BIP solver — either the pure-Python
   branch-and-bound solver (which provides the gap trace used for early
   termination feedback and warm starts for interactive tuning) or the
   scipy/HiGHS MILP backend;
5. extract the recommended configuration ``X*`` from the solution.
"""

from __future__ import annotations

import enum
import math
import time
from dataclasses import dataclass

from typing import Iterable, Mapping, Sequence

from repro.core.bip_builder import CophyBip
from repro.core.constraints import TuningConstraint
from repro.exceptions import InfeasibleProblemError, SolverError
from repro.indexes.configuration import Configuration
from repro.lp.branch_and_bound import BranchAndBoundSolver
from repro.lp.budget import SolveBudget
from repro.lp.constraint import Constraint, ConstraintSense
from repro.lp.expression import LinearExpression
from repro.lp.highs_backend import MilpBackend
from repro.lp.model import Model
from repro.lp.solution import GapTracePoint, Solution, SolutionStatus
from repro.lp.variable import Variable
from repro.obs.metrics import GAP_BUCKETS, active_registry

__all__ = ["SolverBackend", "SolveReport", "CoPhySolver"]


class SolverBackend(enum.Enum):
    """Which off-the-shelf BIP solver to delegate to."""

    BRANCH_AND_BOUND = "branch_and_bound"
    MILP = "milp"


@dataclass
class SolveReport:
    """Everything the advisor needs to know about one solver run."""

    configuration: Configuration
    solution: Solution
    objective: float
    gap: float
    solve_seconds: float
    gap_trace: tuple[GapTracePoint, ...] = ()
    constraint_rows: int = 0
    relaxation_applied: bool = False
    #: True when a wall-clock budget interrupted the solve (best-so-far
    #: incumbent returned; ``gap`` is its closed-form optimality bound).
    timed_out: bool = False

    @property
    def is_optimal(self) -> bool:
        return self.solution.status is SolutionStatus.OPTIMAL


class CoPhySolver:
    """Solves a CoPhy BIP under a set of hard constraints.

    Args:
        backend: Off-the-shelf solver to use.  The branch-and-bound backend
            exposes gap traces and warm starts; the MILP backend is the
            fastest way to just get an answer.
        gap_tolerance: Relative optimality gap at which the solver may stop
            (the paper's default CPLEX setting is 5%).
        time_limit_seconds: Wall-clock limit per solve call.
        apply_relaxation: Whether to apply the Lagrangian-style relaxation of
            the slot-assignment constraints before solving (section 4.1).
        relaxation_penalty: Penalty weight used by the relaxation.
    """

    def __init__(self, backend: SolverBackend = SolverBackend.MILP,
                 gap_tolerance: float = 0.05,
                 time_limit_seconds: float | None = None,
                 apply_relaxation: bool = False,
                 relaxation_penalty: float | None = None):
        self.backend = backend
        self.gap_tolerance = max(0.0, gap_tolerance)
        self.time_limit_seconds = time_limit_seconds
        self.apply_relaxation = apply_relaxation
        self.relaxation_penalty = relaxation_penalty

    # -------------------------------------------------------------------- public
    def solve(self, bip: CophyBip,
              hard_constraints: Sequence[TuningConstraint] = (),
              warm_start: Mapping[Variable, float] | None = None,
              extra_objective: LinearExpression | None = None,
              gap_tolerance: float | None = None,
              time_limit_seconds: float | None = None,
              budget: SolveBudget | None = None) -> SolveReport:
        """Merge constraints, check feasibility, solve, and extract ``X*``.

        Args:
            bip: The Theorem-1 BIP produced by :class:`BipBuilder`.
            hard_constraints: DBA constraints that must hold.
            warm_start: Optional variable assignment used as the initial
                incumbent (interactive re-tuning).
            extra_objective: Optional replacement objective (used by the soft
                constraint scalarisation); when omitted the BIP's workload-cost
                objective is used.
            gap_tolerance: Per-call override of the early-termination gap.
            time_limit_seconds: Per-call override of the time limit.
            budget: Optional anytime budget; its remaining wall clock / node
                / gap limits are merged into the backend's settings, and a
                fired deadline surfaces as ``SolveReport.timed_out``.

        Raises:
            InfeasibleProblemError: When the hard constraints cannot be met.
        """
        model = bip.model
        constraint_rows = self._merge_constraints(bip, hard_constraints)

        if extra_objective is not None:
            model.set_objective(extra_objective)
        else:
            model.set_objective(bip.cost_expression)

        relaxation_applied = False
        if self.apply_relaxation:
            relaxation_applied = self._apply_relaxation(bip)

        effective_gap = self.gap_tolerance if gap_tolerance is None else gap_tolerance
        effective_limit = (self.time_limit_seconds if time_limit_seconds is None
                           else time_limit_seconds)

        if budget is not None:
            budget.start()

        started = time.perf_counter()
        if self.backend is SolverBackend.BRANCH_AND_BOUND:
            solver = BranchAndBoundSolver(gap_tolerance=effective_gap,
                                          time_limit_seconds=effective_limit)
            if not solver.is_feasible(model):
                self._rollback(bip, constraint_rows, relaxation_applied)
                raise InfeasibleProblemError(
                    "The hard constraints cannot all be satisfied",
                    violated_constraints=tuple(c.name for c in hard_constraints))
            solution = solver.solve(model, warm_start=warm_start,
                                    gap_tolerance=effective_gap,
                                    time_limit_seconds=effective_limit,
                                    budget=budget)
        else:
            backend = MilpBackend(gap_tolerance=effective_gap,
                                  time_limit_seconds=effective_limit)
            solution = backend.solve(model, budget=budget)
            # The branch-and-bound backend records its own solve metrics
            # (it also owns the nodes histogram); the MILP backend is
            # instrumented here so repro_solver_solves_total counts every
            # solve regardless of backend.
            registry = active_registry()
            registry.counter(
                "repro_solver_solves_total",
                "Solver runs by outcome status",
                ("status",)).inc(status=solution.status.name.lower())
            if math.isfinite(solution.gap):
                registry.histogram(
                    "repro_solver_gap",
                    "Relative optimality gap per finished solve",
                    buckets=GAP_BUCKETS).observe(float(solution.gap))
            if solution.status is SolutionStatus.INFEASIBLE:
                self._rollback(bip, constraint_rows, relaxation_applied)
                raise InfeasibleProblemError(
                    "The hard constraints cannot all be satisfied",
                    violated_constraints=tuple(c.name for c in hard_constraints))
        elapsed = time.perf_counter() - started

        if not solution.is_feasible:
            self._rollback(bip, constraint_rows, relaxation_applied)
            raise SolverError(f"BIP solver failed: {solution.message}")

        configuration = bip.extract_configuration(solution)
        objective = bip.cost_expression.evaluate(solution.values)
        report = SolveReport(
            configuration=configuration,
            solution=solution,
            objective=objective,
            gap=solution.gap,
            solve_seconds=elapsed,
            gap_trace=solution.gap_trace,
            constraint_rows=len(constraint_rows),
            relaxation_applied=relaxation_applied,
            timed_out=solution.timed_out,
        )
        self._rollback(bip, constraint_rows, relaxation_applied)
        return report

    def check_feasibility(self, bip: CophyBip,
                          hard_constraints: Sequence[TuningConstraint] = ()) -> bool:
        """The feasibility probe of line 1 in the Solver pseudo-code."""
        constraint_rows = self._merge_constraints(bip, hard_constraints)
        try:
            solver = BranchAndBoundSolver()
            return solver.is_feasible(bip.model)
        finally:
            self._rollback(bip, constraint_rows, relaxation_applied=False)

    # --------------------------------------------------------------- relaxation
    def _apply_relaxation(self, bip: CophyBip) -> bool:
        """Lagrangian-style relaxation of the slot-assignment equalities.

        The equality rows ``sum_a x_qkia = y_qk`` are replaced by the weaker
        ``sum_a x_qkia >= y_qk`` inequalities while a penalty proportional to
        the selected access methods is added to the objective.  Because every
        ``gamma`` is non-negative, a cost-minimising solution never selects
        more than one access method per slot, so the relaxed program has the
        same optima as the original (this is the "key trick" of section 4.1 —
        it removes equality rows that slow some solvers down).
        """
        model = bip.model
        if not bip.slot_constraints:
            return False
        penalty = self.relaxation_penalty
        if penalty is None:
            penalty = 0.0
        new_objective_terms = bip.model.objective.terms
        for slot, constraint in bip.slot_constraints.items():
            if constraint.sense is not ConstraintSense.EQUAL:
                continue
            constraint.sense = ConstraintSense.LESS_EQUAL
            # sum_a x - y == 0  becomes  y - sum_a x <= 0  (i.e. sum_a x >= y).
            constraint.expression = constraint.expression * -1.0
            if penalty:
                for variable, coefficient in constraint.expression.terms.items():
                    if coefficient < 0:  # the x variables
                        new_objective_terms[variable] = (
                            new_objective_terms.get(variable, 0.0) + penalty)
        if penalty:
            model.set_objective(LinearExpression(new_objective_terms))
        model.invalidate_cache()
        return True

    def _undo_relaxation(self, bip: CophyBip) -> None:
        for constraint in bip.slot_constraints.values():
            if constraint.sense is ConstraintSense.LESS_EQUAL:
                constraint.sense = ConstraintSense.EQUAL
                constraint.expression = constraint.expression * -1.0
        bip.model.invalidate_cache()

    # ---------------------------------------------------------------- internals
    def _merge_constraints(self, bip: CophyBip,
                           hard_constraints: Sequence[TuningConstraint]
                           ) -> list[Constraint]:
        rows: list[Constraint] = []
        for constraint in hard_constraints:
            for row in constraint.to_linear(bip):
                rows.append(bip.model.add_constraint(row))
        return rows

    def _rollback(self, bip: CophyBip, constraint_rows: Iterable[Constraint],
                  relaxation_applied: bool) -> None:
        """Remove per-solve state so the BIP can be reused for the next call."""
        self._remove_constraints(bip.model, constraint_rows)
        if relaxation_applied:
            self._undo_relaxation(bip)
        bip.model.set_objective(bip.cost_expression)

    @staticmethod
    def _remove_constraints(model: Model, rows: Iterable[Constraint]) -> None:
        model.remove_constraints(rows)
