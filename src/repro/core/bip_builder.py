"""BIPGen: the compact binary integer program of Theorem 1.

Variables (per the theorem):

* ``z_a`` — one per candidate index ``a``: is ``a`` part of the recommended
  configuration ``X*``?
* ``y_qk`` — one per (query, template plan): is template ``k`` the one used to
  evaluate ``q``?
* ``x_qkia`` — one per (query, template, slot, access method): does slot ``i``
  of template ``k`` use access method ``a`` (where ``a`` may be ``I_0``, the
  heap access)?

Constraints: exactly one template per query, exactly one access method per
slot of the chosen template, and ``z_a >= x_qkia`` (an index must be selected
before a slot may use it).

Objective: ``sum f_q beta_qk y_qk + sum f_q gamma_qkia x_qkia +
sum f_q ucost(a, q) z_a``.

Compactness: variables are only created for (query, template, slot, access
method) combinations with finite ``gamma`` and for access methods that are
*relevant* to the query's slot (their leading key column is referenced by the
query on that table, or they cover the referenced columns) — irrelevant
indexes could never beat the ``I_0`` choice, so dropping them changes nothing
while keeping the program linear in the size of the input, as the paper
requires.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import BuildInterrupted, SolverError, WorkloadError
from repro.indexes.candidate_generation import CandidateSet
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.inum.template_plan import TemplatePlan
from repro.inum.workload_tensor import QueryTensorView, WorkloadGammaTensor
from repro.lp.budget import SolveBudget
from repro.lp.constraint import Constraint
from repro.lp.expression import LinearExpression
from repro.lp.model import Model
from repro.lp.solution import Solution
from repro.lp.variable import Variable
from repro.workload.query import Query, UpdateQuery
from repro.workload.workload import Workload

__all__ = ["BipBuilder", "CophyBip", "SlotKey"]

#: ``I_0`` — the "no index" access method, represented as ``None`` in slot maps.
NO_INDEX = None


@dataclass(frozen=True)
class SlotKey:
    """Identifies one slot variable family: (query, template index, table)."""

    query_name: str
    template_position: int
    table: str


@dataclass
class CophyBip:
    """The generated BIP plus the bookkeeping needed to interpret solutions."""

    model: Model
    workload: Workload
    candidates: CandidateSet
    z_variables: dict[Index, Variable]
    y_variables: dict[tuple[str, int], Variable]
    x_variables: dict[SlotKey, dict[Index | None, Variable]]
    cost_expression: LinearExpression
    build_seconds: float = 0.0
    statistics: dict[str, float] = field(default_factory=dict)
    slot_constraints: dict[SlotKey, Constraint] = field(default_factory=dict)
    #: Per-statement weight overrides the BIP was built with (by statement
    #: name); ``extend`` reads them so delta coefficients stay consistent.
    statement_weights: dict[str, float] | None = None

    def weight_of(self, statement) -> float:
        """The effective ``f_q`` of a workload statement in this BIP."""
        if self.statement_weights is not None:
            return self.statement_weights.get(statement.query.name,
                                              statement.weight)
        return statement.weight

    # ---------------------------------------------------------------- accessors
    def index_variable(self, index: Index) -> Variable:
        try:
            return self.z_variables[index]
        except KeyError as exc:
            raise SolverError(f"Index {index.name} is not part of this BIP") from exc

    def storage_expression(self) -> LinearExpression:
        """``sum_a size(a) * z_a`` — the left side of storage constraints."""
        variables = []
        sizes = []
        for index, variable in self.z_variables.items():
            variables.append(variable)
            sizes.append(self.candidates.size_of(index))
        return LinearExpression.sum_of(variables, sizes)

    def update_cost_expression(self) -> LinearExpression:
        """``sum_q sum_a f_q ucost(a, q) z_a`` — total index-maintenance cost."""
        coefficients: dict[Variable, float] = {}
        for statement in self.workload.update_statements():
            update = statement.query
            if not isinstance(update, UpdateQuery):
                raise WorkloadError(
                    f"statement '{getattr(update, 'name', update)}' is "
                    "classified as an update but its query is "
                    f"{type(update).__name__}")
            for index, variable in self.z_variables.items():
                if index.table != update.table:
                    continue
                ucost = self.statistics.get(f"ucost::{update.name}::{index.name}")
                if ucost:
                    coefficients[variable] = (coefficients.get(variable, 0.0)
                                              + statement.weight * ucost)
        return LinearExpression(coefficients)

    def query_cost_expression(self, query: Query) -> LinearExpression:
        """The BIP expression of ``cost(q, X*)`` for one SELECT / query shell."""
        terms: dict[Variable, float] = {}
        shell_name = self._shell_name(query)
        for (query_name, position), y_variable in self.y_variables.items():
            if query_name != shell_name:
                continue
            beta = self.statistics.get(f"beta::{query_name}::{position}", 0.0)
            terms[y_variable] = terms.get(y_variable, 0.0) + beta
        for slot, access_variables in self.x_variables.items():
            if slot.query_name != shell_name:
                continue
            for access, variable in access_variables.items():
                gamma = self.statistics.get(self._gamma_key(slot, access), 0.0)
                terms[variable] = terms.get(variable, 0.0) + gamma
        return LinearExpression(terms)

    def extract_configuration(self, solution: Solution) -> Configuration:
        """Read ``X* = {a | z_a = 1}`` out of a solver solution."""
        selected = [index for index, variable in self.z_variables.items()
                    if solution.value(variable) >= 0.5]
        return Configuration(selected, name="cophy-recommendation")

    def warm_start_from(self, configuration: Configuration
                        ) -> dict[Variable, float]:
        """A feasible assignment that selects exactly ``configuration``.

        Used to warm-start re-tuning: the z variables follow the previous
        recommendation and, for every query, the cheapest template/slot
        combination compatible with that configuration is switched on.
        """
        values: dict[Variable, float] = {variable: 0.0
                                         for variable in self.model.variables}
        chosen = set(configuration.indexes)
        for index, variable in self.z_variables.items():
            values[variable] = 1.0 if index in chosen else 0.0
        by_query: dict[str, list[tuple[int, Variable]]] = {}
        for (query_name, position), variable in self.y_variables.items():
            by_query.setdefault(query_name, []).append((position, variable))
        for query_name, templates in by_query.items():
            best_choice = None
            for position, y_variable in templates:
                total = self.statistics.get(f"beta::{query_name}::{position}",
                                            0.0)
                slot_choices: list[tuple[SlotKey, Variable]] = []
                feasible = True
                for slot, access_variables in self.x_variables.items():
                    if slot.query_name != query_name or slot.template_position != position:
                        continue
                    best_access = None
                    for access, x_variable in access_variables.items():
                        if access is not NO_INDEX and access not in chosen:
                            continue
                        gamma = self.statistics.get(self._gamma_key(slot, access))
                        if gamma is None:
                            continue
                        if best_access is None or gamma < best_access[0]:
                            best_access = (gamma, x_variable)
                    if best_access is None:
                        feasible = False
                        break
                    total += best_access[0]
                    slot_choices.append((slot, best_access[1]))
                if not feasible:
                    continue
                if best_choice is None or total < best_choice[0]:
                    best_choice = (total, y_variable, slot_choices)
            if best_choice is None:
                continue
            _, y_variable, slot_choices = best_choice
            values[y_variable] = 1.0
            for _, x_variable in slot_choices:
                values[x_variable] = 1.0
        return values

    @staticmethod
    def _shell_name(query: Query) -> str:
        if isinstance(query, UpdateQuery):
            return query.query_shell().name
        return query.name

    @staticmethod
    def _gamma_key(slot: SlotKey, access: Index | None) -> str:
        access_name = "I0" if access is NO_INDEX else access.name
        return (f"gamma::{slot.query_name}::{slot.template_position}::"
                f"{slot.table}::{access_name}")


class BipBuilder:
    """Builds the Theorem-1 BIP from a workload, a candidate set and INUM."""

    def __init__(self, inum: InumCache):
        self._inum = inum
        self._optimizer = inum._optimizer  # shared what-if optimizer

    # -------------------------------------------------------------------- public
    # reprolint: requires-lock (reads/extends the shared gamma tensor; driven by
    # the advisor pipeline, which serializes per-context)
    def build(self, workload: Workload, candidates: CandidateSet,
              model_name: str = "cophy-bip",
              statement_weights: Mapping[str, float] | None = None,
              budget: "SolveBudget | None" = None) -> CophyBip:
        """Generate the BIP for the given tuning-problem instance.

        Args:
            workload: The workload being tuned.
            candidates: The candidate index universe.
            model_name: Name of the generated model.
            statement_weights: Optional per-statement weight overrides keyed
                by statement name.  Statements not in the mapping keep their
                workload weight.  Lets callers re-weight a BIP (e.g. cluster
                weights, what-if frequency studies) without materialising a
                re-weighted workload object; :meth:`extend` honours the same
                overrides for delta coefficients.
            budget: Optional anytime budget.  Model assembly on a large
                workload can dwarf a tight deadline, so the per-statement
                encoding loop checks it and aborts with
                :class:`~repro.exceptions.BuildInterrupted` — a partial model
                is never returned.

        Raises:
            BuildInterrupted: When ``budget``'s deadline fires mid-build.
        """
        started = time.perf_counter()
        model = Model(name=model_name)
        statistics: dict[str, float] = {}

        z_variables: dict[Index, Variable] = {}
        for index in candidates:
            z_variables[index] = model.add_binary(f"z[{index.name}]")

        y_variables: dict[tuple[str, int], Variable] = {}
        x_variables: dict[SlotKey, dict[Index | None, Variable]] = {}
        objective_terms: dict[Variable, float] = {}
        slot_constraints: dict[SlotKey, Constraint] = {}

        # Coefficients are read through the workload gamma tensor (one batched
        # column registration for the whole candidate set up front), so the
        # BIP's gamma values come from the same stacked array every
        # ``workload_cost`` reduction reads.
        tensor = self._workload_tensor(workload)
        if tensor is not None:
            tensor.ensure_columns(tuple(candidates))

        # The per-statement base-update costs (the ``c_q`` terms) do not depend
        # on the chosen configuration; the paper drops them from the BIP, we
        # keep them as the objective's constant so that the objective value
        # equals the INUM workload cost and stays directly interpretable.
        objective_constant = 0.0
        overrides = (dict(statement_weights)
                     if statement_weights is not None else None)
        for encoded, statement in enumerate(workload):
            if budget is not None and budget.expired():
                raise BuildInterrupted(
                    f"Anytime deadline fired while building "
                    f"{model_name!r}; {encoded} of {len(workload)} "
                    f"statements encoded")
            weight = statement.weight
            if overrides is not None:
                weight = overrides.get(statement.query.name, weight)
            self._encode_statement(statement.query, weight, candidates,
                                   model, z_variables, y_variables, x_variables,
                                   objective_terms, statistics, slot_constraints,
                                   tensor)
            if isinstance(statement.query, UpdateQuery):
                objective_constant += (weight
                                       * self._optimizer.base_update_cost(
                                           statement.query))

        cost_expression = LinearExpression(objective_terms, objective_constant)
        model.set_objective(cost_expression)

        bip = CophyBip(
            model=model,
            workload=workload,
            candidates=candidates,
            z_variables=z_variables,
            y_variables=y_variables,
            x_variables=x_variables,
            cost_expression=cost_expression,
            build_seconds=time.perf_counter() - started,
            statistics=statistics,
            slot_constraints=slot_constraints,
            statement_weights=overrides,
        )
        bip.statistics["variables"] = float(model.variable_count)
        bip.statistics["constraints"] = float(model.constraint_count)
        bip.statistics["candidates"] = float(len(candidates))
        return bip

    # reprolint: requires-lock (see build: caller serializes)
    def extend(self, bip: CophyBip, added_candidates: Iterable[Index]) -> CophyBip:
        """Incrementally extend an existing BIP with new candidate indexes.

        This is the "delta BIP" of interactive tuning: INUM's cache and all
        existing variables/constraints are reused; only variables and rows
        involving the new candidates are added.  Rebuilding from scratch is
        never required.
        """
        added = [index for index in added_candidates if index not in bip.candidates]
        if not added:
            return bip
        started = time.perf_counter()
        model = bip.model
        for index in added:
            bip.candidates.add(index)
            bip.z_variables[index] = model.add_binary(f"z[{index.name}]")

        tensor = self._workload_tensor(bip.workload)
        if tensor is not None:
            tensor.ensure_columns(added)  # one batched registration
        objective_terms = bip.cost_expression.terms
        objective_constant = bip.cost_expression.constant
        for statement in bip.workload:
            self._extend_statement(statement.query, bip.weight_of(statement),
                                   added, bip, objective_terms, tensor)
        bip.cost_expression = LinearExpression(objective_terms, objective_constant)
        model.set_objective(bip.cost_expression)
        bip.build_seconds += time.perf_counter() - started
        bip.statistics["variables"] = float(model.variable_count)
        bip.statistics["constraints"] = float(model.constraint_count)
        bip.statistics["candidates"] = float(len(bip.candidates))
        return bip

    # ----------------------------------------------------------------- internals
    def _workload_tensor(self, workload: Workload) -> WorkloadGammaTensor | None:
        """The workload's gamma tensor (``None`` on the loop-based path)."""
        if not self._inum.uses_gamma_matrix:
            return None
        return self._inum.workload_tensor(workload)

    def _encode_statement(self, query: Query, weight: float,
                          candidates: CandidateSet, model: Model,
                          z_variables: Mapping[Index, Variable],
                          y_variables: dict[tuple[str, int], Variable],
                          x_variables: dict[SlotKey, dict[Index | None, Variable]],
                          objective_terms: dict[Variable, float],
                          statistics: dict[str, float],
                          slot_constraints: dict[SlotKey, Constraint],
                          tensor: WorkloadGammaTensor | None) -> None:
        shell = query.query_shell() if isinstance(query, UpdateQuery) else query
        templates = self._inum.build(shell)
        view = tensor.view(shell.name) if tensor is not None else None
        # Relevance filtering and column registration are position-independent:
        # do them once per table, not once per (template, table).
        per_table_accesses: dict[str, list[Index | None]] = {}
        for table in shell.tables:
            referenced = {c.column for c in shell.referenced_columns_on(table)}
            accesses: list[Index | None] = [NO_INDEX]
            accesses.extend(index for index in candidates.for_table(table)
                            if self._relevant(index, referenced))
            per_table_accesses[table] = accesses
            if view is not None:
                view.ensure_columns(accesses)

        usable_positions: list[int] = []
        per_position_slots: dict[int, dict[str, dict[Index | None, float]]] = {}
        for position, template in enumerate(templates):
            slots = self._slot_access_costs(shell, position, template,
                                            per_table_accesses, view)
            if slots is None:
                continue
            usable_positions.append(position)
            per_position_slots[position] = slots
        if not usable_positions:
            raise SolverError(
                f"No feasible template plan for statement {shell.name!r}")

        y_of_position: dict[int, Variable] = {}
        for position in usable_positions:
            y_variable = model.add_binary(f"y[{shell.name}][{position}]")
            y_variables[(shell.name, position)] = y_variable
            y_of_position[position] = y_variable
            beta = templates[position].internal_cost
            statistics[f"beta::{shell.name}::{position}"] = beta
            objective_terms[y_variable] = (objective_terms.get(y_variable, 0.0)
                                           + weight * beta)

        # Exactly one template per statement.
        model.add_constraint(
            LinearExpression.sum_of(list(y_of_position.values())) == 1.0,
            name=f"one_template[{shell.name}]")

        for position in usable_positions:
            slots = per_position_slots[position]
            y_variable = y_of_position[position]
            for table, access_costs in slots.items():
                slot = SlotKey(shell.name, position, table)
                access_variables: dict[Index | None, Variable] = {}
                for access, gamma in access_costs.items():
                    access_name = "I0" if access is NO_INDEX else access.name
                    x_variable = model.add_binary(
                        f"x[{shell.name}][{position}][{table}][{access_name}]")
                    access_variables[access] = x_variable
                    statistics[CophyBip._gamma_key(slot, access)] = gamma
                    objective_terms[x_variable] = (
                        objective_terms.get(x_variable, 0.0) + weight * gamma)
                    if access is not NO_INDEX:
                        # z_a >= x_qkia
                        model.add_constraint(
                            (1.0 * x_variable) - (1.0 * z_variables[access]) <= 0.0,
                            name=f"select[{x_variable.name}]")
                x_variables[slot] = access_variables
                # Exactly one access method per slot of the chosen template.
                slot_constraints[slot] = model.add_constraint(
                    LinearExpression.sum_of(list(access_variables.values()))
                    - (1.0 * y_variable) == 0.0,
                    name=f"one_access[{shell.name}][{position}][{table}]")

        if isinstance(query, UpdateQuery):
            self._encode_update_cost(query, weight, candidates, z_variables,
                                     objective_terms, statistics)

    def _encode_update_cost(self, update: UpdateQuery, weight: float,
                            candidates: CandidateSet,
                            z_variables: Mapping[Index, Variable],
                            objective_terms: dict[Variable, float],
                            statistics: dict[str, float]) -> None:
        for index in candidates.for_table(update.table):
            ucost = self._optimizer.update_maintenance_cost(index, update)
            if ucost <= 0.0:
                continue
            statistics[f"ucost::{update.name}::{index.name}"] = ucost
            variable = z_variables[index]
            objective_terms[variable] = (objective_terms.get(variable, 0.0)
                                         + weight * ucost)

    def _slot_access_costs(self, query: Query, position: int,
                           template: TemplatePlan,
                           per_table_accesses: Mapping[str, list[Index | None]],
                           view: QueryTensorView | None
                           ) -> dict[str, dict[Index | None, float]] | None:
        """Finite-gamma access methods per slot, or ``None`` if a slot has none.

        With the tensor view given (columns already registered by the
        caller), each slot's coefficients are read as one row slice of the
        stacked array instead of per-variable ``gamma()`` calls.
        """
        slots: dict[str, dict[Index | None, float]] = {}
        for table, accesses in per_table_accesses.items():
            if view is not None:
                gammas = view.slot_costs(position, table, accesses,
                                         registered=True)
            else:
                gammas = [self._inum.gamma(query, template, table, access)
                          for access in accesses]
            access_costs = {access: gamma
                            for access, gamma in zip(accesses, gammas)
                            if gamma != float("inf")}
            if not access_costs:
                return None
            slots[table] = access_costs
        return slots

    @staticmethod
    def _relevant(index: Index, referenced_columns: set[str]) -> bool:
        """Whether an index could plausibly serve a slot of this query."""
        if not referenced_columns:
            return False
        if index.leading_column in referenced_columns:
            return True
        return index.covers(referenced_columns)

    def _extend_statement(self, query: Query, weight: float, added: list[Index],
                          bip: CophyBip,
                          objective_terms: dict[Variable, float],
                          tensor: WorkloadGammaTensor | None) -> None:
        shell = query.query_shell() if isinstance(query, UpdateQuery) else query
        templates = self._inum.build(shell)
        view = tensor.view(shell.name) if tensor is not None else None
        model = bip.model
        for position, template in enumerate(templates):
            for table in shell.tables:
                slot = SlotKey(shell.name, position, table)
                access_variables = bip.x_variables.get(slot)
                if access_variables is None:
                    continue
                slot_constraint = bip.slot_constraints.get(slot)
                referenced = {c.column for c in shell.referenced_columns_on(table)}
                for index in added:
                    if index.table != table or not self._relevant(index, referenced):
                        continue
                    if view is not None:
                        gamma = view.value(position, table, index)
                    else:
                        gamma = self._inum.gamma(shell, template, table, index)
                    if gamma == float("inf"):
                        continue
                    x_variable = model.add_binary(
                        f"x[{shell.name}][{position}][{table}][{index.name}]")
                    access_variables[index] = x_variable
                    bip.statistics[CophyBip._gamma_key(slot, index)] = gamma
                    objective_terms[x_variable] = (
                        objective_terms.get(x_variable, 0.0) + weight * gamma)
                    model.add_constraint(
                        (1.0 * x_variable) - (1.0 * bip.z_variables[index]) <= 0.0,
                        name=f"select[{x_variable.name}]")
                    # Grow the slot's assignment row in place so the new access
                    # method becomes a legal choice for this slot.
                    if slot_constraint is not None:
                        slot_constraint.expression = (
                            slot_constraint.expression + (1.0 * x_variable))
                        model.invalidate_cache()
        if isinstance(query, UpdateQuery):
            for index in added:
                if index.table != update_table(query):
                    continue
                ucost = self._optimizer.update_maintenance_cost(index, query)
                if ucost <= 0.0:
                    continue
                bip.statistics[f"ucost::{query.name}::{index.name}"] = ucost
                variable = bip.z_variables[index]
                objective_terms[variable] = (objective_terms.get(variable, 0.0)
                                             + weight * ucost)


def update_table(update: UpdateQuery) -> str:
    """The table written by an UPDATE statement (helper for readability)."""
    return update.table
