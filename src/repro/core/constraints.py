"""The DBA constraint language and its translation to linear BIP rows.

This module implements the constraint classes of section 3.2 and Appendix E of
the paper (which in turn cover the use cases of Bruno & Chaudhuri's
"Constrained physical design tuning"):

* **Index constraints** (E.1) — bounds on weighted sums over a subset of the
  candidate indexes: storage budgets, index-count limits, key-width limits.
* **Query cost constraints** (E.2) — e.g. "every query must be at least 25%
  faster than under the baseline configuration".
* **Generators** (E.3) — FOR-loops over queries/tables expanding into one
  linear constraint per element, including the implicit "at most one clustered
  index per table" rule.
* **Soft constraints** (section 4.1) — wrappers marking a constraint as "to be
  satisfied to the extent possible"; they are *not* added to the BIP but drive
  the Pareto exploration in :mod:`repro.core.soft_constraints`.

Every hard constraint knows how to translate itself into one or more linear
:class:`repro.lp.constraint.Constraint` rows over an existing
:class:`~repro.core.bip_builder.CophyBip`.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Callable, Iterable


from repro.core.bip_builder import CophyBip
from repro.exceptions import ConstraintError
from repro.indexes.index import Index
from repro.lp.constraint import Constraint
from repro.lp.expression import LinearExpression
from repro.workload.query import Query, StatementKind

__all__ = [
    "ComparisonSense",
    "TuningConstraint",
    "SoftConstraint",
    "StorageBudgetConstraint",
    "IndexCountConstraint",
    "IndexWidthConstraint",
    "ClusteredIndexConstraint",
    "QueryCostConstraint",
    "QuerySpeedupGenerator",
    "UpdateCostConstraint",
]


class ComparisonSense(enum.Enum):
    """Direction of a DBA constraint's comparison."""

    AT_MOST = "<="
    AT_LEAST = ">="


class TuningConstraint(abc.ABC):
    """Base class of all DBA constraints."""

    #: Human-readable label used in infeasibility reports.
    name: str = "constraint"

    @abc.abstractmethod
    def to_linear(self, bip: CophyBip) -> list[Constraint]:
        """Translate the constraint into linear rows over the BIP."""

    def describe(self) -> str:
        return self.name

    # ----------------------------------------------------------------- softness
    def soft(self, target: float | None = None) -> "SoftConstraint":
        """Wrap this constraint as a soft constraint (Pareto-explored)."""
        return SoftConstraint(self, target=target)


@dataclass
class SoftConstraint:
    """A constraint the recommendation should satisfy "to the extent possible".

    Soft constraints never enter the BIP; instead the Solver scalarises them
    into the objective (``lambda * cost + (1 - lambda) * (measure - target)``)
    and explores the Pareto-optimal curve (section 4.1 / Appendix D).

    Attributes:
        inner: The underlying hard constraint providing the measure.
        target: The value the measure should ideally not exceed.  When omitted
            the inner constraint's own bound is used.
    """

    inner: "TuningConstraint"
    target: float | None = None

    @property
    def name(self) -> str:
        return f"soft({self.inner.name})"

    def measure_expression(self, bip: CophyBip) -> LinearExpression:
        """The linear measure the soft constraint trades off against cost."""
        measure = getattr(self.inner, "measure_expression", None)
        if callable(measure):
            return measure(bip)
        raise ConstraintError(
            f"Constraint {self.inner.name!r} cannot be used as a soft constraint "
            "(it exposes no linear measure)")

    def target_value(self) -> float:
        if self.target is not None:
            return float(self.target)
        bound = getattr(self.inner, "bound_value", None)
        if callable(bound):
            return float(bound())
        raise ConstraintError(
            f"Soft constraint {self.name!r} has no target value")


# ------------------------------------------------------------------ index rules
@dataclass
class StorageBudgetConstraint(TuningConstraint):
    """``sum_{a in X*} size(a) <= budget`` — the canonical storage constraint.

    Attributes:
        budget_bytes: Absolute budget in bytes.  Use
            :meth:`from_fraction_of_data` to express it as a fraction ``M`` of
            the database size like the paper does.
    """

    budget_bytes: float
    name: str = "storage_budget"

    def __post_init__(self) -> None:
        if self.budget_bytes < 0:
            raise ConstraintError("Storage budget must be non-negative")

    @classmethod
    def from_fraction_of_data(cls, schema, fraction: float) -> "StorageBudgetConstraint":
        """Budget expressed as a fraction ``M`` of the total data size."""
        if fraction < 0:
            raise ConstraintError("Storage budget fraction must be non-negative")
        return cls(budget_bytes=fraction * schema.total_size_bytes,
                   name=f"storage_budget[{fraction:g}x data]")

    def measure_expression(self, bip: CophyBip) -> LinearExpression:
        return bip.storage_expression()

    def bound_value(self) -> float:
        return self.budget_bytes

    def to_linear(self, bip: CophyBip) -> list[Constraint]:
        expression = self.measure_expression(bip)
        return [(expression <= self.budget_bytes).named(self.name)]


@dataclass
class IndexCountConstraint(TuningConstraint):
    """Bound the number (or weighted sum) of selected indexes in a subset.

    Covers Appendix E.1: e.g. "at most 2 indexes with more than 5 columns on
    table T" is expressed with ``selector=lambda a: a.table == 'T' and
    a.width > 5`` and ``limit=2``.

    Attributes:
        limit: Right-hand side of the comparison.
        selector: Predicate choosing which candidate indexes the rule covers
            (default: all of them).
        weight: Per-index weight function (default: 1 per index).
        sense: ``AT_MOST`` (default) or ``AT_LEAST``.
    """

    limit: float
    selector: Callable[[Index], bool] | None = None
    weight: Callable[[Index], float] | None = None
    sense: ComparisonSense = ComparisonSense.AT_MOST
    name: str = "index_count"

    def _expression(self, bip: CophyBip) -> LinearExpression:
        variables = []
        weights = []
        for index, variable in bip.z_variables.items():
            if self.selector is not None and not self.selector(index):
                continue
            variables.append(variable)
            weights.append(1.0 if self.weight is None else float(self.weight(index)))
        return LinearExpression.sum_of(variables, weights)

    def measure_expression(self, bip: CophyBip) -> LinearExpression:
        return self._expression(bip)

    def bound_value(self) -> float:
        return self.limit

    def to_linear(self, bip: CophyBip) -> list[Constraint]:
        expression = self._expression(bip)
        if expression.is_empty() and self.sense is ComparisonSense.AT_LEAST:
            if self.limit > 0:
                raise ConstraintError(
                    f"Constraint {self.name!r} requires indexes but no candidate "
                    "matches its selector")
        if self.sense is ComparisonSense.AT_MOST:
            return [(expression <= self.limit).named(self.name)]
        return [(expression >= self.limit).named(self.name)]


@dataclass
class IndexWidthConstraint(TuningConstraint):
    """Forbid selecting indexes wider than ``max_columns`` key+include columns."""

    max_columns: int
    name: str = "index_width"

    def to_linear(self, bip: CophyBip) -> list[Constraint]:
        rows: list[Constraint] = []
        for index, variable in bip.z_variables.items():
            if index.width > self.max_columns:
                rows.append(((1.0 * variable) <= 0.0).named(
                    f"{self.name}[{index.name}]"))
        return rows


@dataclass
class ClusteredIndexConstraint(TuningConstraint):
    """At most one clustered index per table (Appendix E.3's implicit rule)."""

    name: str = "one_clustered_per_table"

    def to_linear(self, bip: CophyBip) -> list[Constraint]:
        rows: list[Constraint] = []
        by_table: dict[str, list] = {}
        for index, variable in bip.z_variables.items():
            if index.clustered:
                by_table.setdefault(index.table, []).append(variable)
        for table, variables in by_table.items():
            if len(variables) >= 2:
                rows.append((LinearExpression.sum_of(variables) <= 1.0).named(
                    f"{self.name}[{table}]"))
        return rows


# ------------------------------------------------------------------- query cost
@dataclass
class QueryCostConstraint(TuningConstraint):
    """``cost(q, X*) <= factor * reference_cost`` for one statement (E.2)."""

    query: Query
    reference_cost: float
    factor: float = 1.0
    name: str = "query_cost"

    def __post_init__(self) -> None:
        if self.reference_cost < 0:
            raise ConstraintError("reference_cost must be non-negative")
        if self.factor <= 0:
            raise ConstraintError("factor must be positive")

    def to_linear(self, bip: CophyBip) -> list[Constraint]:
        expression = bip.query_cost_expression(self.query)
        if expression.is_empty():
            raise ConstraintError(
                f"Query {self.query.name!r} is not part of the tuning problem")
        bound = self.factor * self.reference_cost
        return [(expression <= bound).named(f"{self.name}[{self.query.name}]")]


@dataclass
class QuerySpeedupGenerator(TuningConstraint):
    """Generator form (E.3): ``FOR q IN W ASSERT cost(q, X*) <= factor * cost(q, X0)``.

    Attributes:
        reference_costs: ``cost(q, X0)`` per statement name, typically computed
            with the what-if optimizer under the baseline configuration.
        factor: Cost factor each statement must reach (0.75 = 25% faster).
        statement_filter: Optional filter restricting which statements the
            generator iterates over (the paper's Filter clause).
    """

    reference_costs: dict[str, float]
    factor: float = 0.75
    statement_filter: Callable[[Query], bool] | None = None
    name: str = "speedup_generator"

    def to_linear(self, bip: CophyBip) -> list[Constraint]:
        rows: list[Constraint] = []
        for statement in bip.workload:
            query = statement.query
            if query.kind is not StatementKind.SELECT:
                continue
            if self.statement_filter is not None and not self.statement_filter(query):
                continue
            reference = self.reference_costs.get(query.name)
            if reference is None:
                continue
            rows.extend(QueryCostConstraint(
                query=query, reference_cost=reference, factor=self.factor,
                name=self.name).to_linear(bip))
        if not rows:
            raise ConstraintError(
                f"Generator {self.name!r} produced no constraints — check the "
                "reference costs and filter")
        return rows


@dataclass
class UpdateCostConstraint(TuningConstraint):
    """Bound the total index-maintenance cost of the selected configuration."""

    limit: float
    name: str = "update_cost"

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise ConstraintError("Update-cost limit must be non-negative")

    def measure_expression(self, bip: CophyBip) -> LinearExpression:
        return bip.update_cost_expression()

    def bound_value(self) -> float:
        return self.limit

    def to_linear(self, bip: CophyBip) -> list[Constraint]:
        expression = self.measure_expression(bip)
        return [(expression <= self.limit).named(self.name)]


def split_constraints(constraints: Iterable[TuningConstraint | SoftConstraint]
                      ) -> tuple[list[TuningConstraint], list[SoftConstraint]]:
    """Partition a mixed constraint list into (hard, soft)."""
    hard: list[TuningConstraint] = []
    soft: list[SoftConstraint] = []
    for constraint in constraints:
        if isinstance(constraint, SoftConstraint):
            soft.append(constraint)
        elif isinstance(constraint, TuningConstraint):
            hard.append(constraint)
        else:
            raise ConstraintError(
                f"Unsupported constraint object: {type(constraint).__name__}")
    return hard, soft
