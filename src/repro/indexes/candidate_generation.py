"""Candidate index generation (the CGen component of CoPhy).

CGen examines each workload statement and emits candidate indexes from the
referenced columns using well-known heuristics (section 4 of the paper):

* single-column indexes on sargable predicate columns, join columns, group-by
  and order-by columns;
* multi-column indexes whose key starts with equality columns followed by
  range columns (the classic "merge the sargable columns" rule);
* covering indexes that append the statement's output columns as INCLUDE
  columns;
* clustered variants for the most promising keys.

In contrast to existing advisors, CGen applies *no pruning* — the candidate
set may be large (1933 indexes for the paper's ``W_hom``) because the BIP
solver is the one doing the pruning.  The DBA may add hand-picked candidates
(``S_DBA``).  The result is a :class:`CandidateSet` that keeps the per-table
partitions ``S_i`` the BIP needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


from repro.catalog.schema import Schema
from repro.exceptions import IndexDefinitionError
from repro.indexes.index import Index, index_size_bytes
from repro.workload.query import Query, UpdateQuery

from repro.workload.workload import Workload

__all__ = ["CandidateGenerator", "CandidateSet"]


class CandidateSet:
    """The candidate index set ``S = S_1 ∪ ... ∪ S_n``, partitioned by table."""

    def __init__(self, schema: Schema, indexes: Iterable[Index] = ()):
        self._schema = schema
        self._by_table: dict[str, list[Index]] = {name: [] for name in schema.table_names}
        self._all: list[Index] = []
        self._seen: set[Index] = set()
        self._sizes: dict[Index, float] = {}
        for index in indexes:
            self.add(index)

    # ------------------------------------------------------------------- update
    def add(self, index: Index) -> bool:
        """Add a candidate; returns False if it was already present."""
        if index.table not in self._by_table:
            raise IndexDefinitionError(
                f"Candidate index {index.name} references unknown table "
                f"{index.table!r}")
        if index in self._seen:
            return False
        self._seen.add(index)
        self._by_table[index.table].append(index)
        self._all.append(index)
        return True

    def add_all(self, indexes: Iterable[Index]) -> int:
        """Add many candidates; returns how many were new."""
        return sum(1 for index in indexes if self.add(index))

    def remove(self, index: Index) -> bool:
        """Drop a candidate (interactive tuning: the DBA retracts an index).

        Returns ``False`` when the index was not part of the set.  Cached
        size estimates are kept — they are pure functions of the index.
        """
        if index not in self._seen:
            return False
        self._seen.discard(index)
        self._by_table[index.table].remove(index)
        self._all.remove(index)
        return True

    def remove_all(self, indexes: Iterable[Index]) -> int:
        """Drop many candidates; returns how many were actually present."""
        return sum(1 for index in indexes if self.remove(index))

    # ---------------------------------------------------------------- accessors
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def indexes(self) -> tuple[Index, ...]:
        return tuple(self._all)

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self):
        return iter(self._all)

    def __contains__(self, index: Index) -> bool:
        return index in self._seen

    def for_table(self, table: str) -> tuple[Index, ...]:
        """The partition ``S_i`` for a table (empty tuple for unknown tables)."""
        return tuple(self._by_table.get(table, ()))

    def tables_with_candidates(self) -> tuple[str, ...]:
        return tuple(table for table, indexes in self._by_table.items() if indexes)

    def size_of(self, index: Index) -> float:
        """Estimated size in bytes of a candidate (cached)."""
        if index not in self._sizes:
            self._sizes[index] = index_size_bytes(index, self._schema.table(index.table))
        return self._sizes[index]

    def total_size(self) -> float:
        return sum(self.size_of(index) for index in self._all)

    def subset(self, indexes: Sequence[Index]) -> "CandidateSet":
        """A new candidate set restricted to ``indexes`` (order preserved)."""
        return CandidateSet(self._schema, indexes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CandidateSet({len(self._all)} candidates over {len(self._by_table)} tables)"


@dataclass(frozen=True)
class _GenerationOptions:
    """Knobs controlling how aggressive candidate generation is."""

    single_column: bool = True
    multi_column: bool = True
    covering: bool = True
    clustered: bool = True
    max_key_columns: int = 3
    max_include_columns: int = 4
    per_query_limit: int | None = None


class CandidateGenerator:
    """Generates the candidate set ``S`` from a workload (CGen).

    Args:
        schema: The catalog the workload runs against.
        single_column: Emit single-column candidates for every interesting column.
        multi_column: Emit composite candidates (equality columns then range columns).
        covering: Emit covering variants that INCLUDE the statement's output columns.
        clustered: Emit clustered variants of the most promising keys.
        max_key_columns: Maximum number of key columns in a composite candidate.
        max_include_columns: Maximum number of INCLUDE columns in a covering candidate.
        per_query_limit: Optional cap on candidates emitted per statement (the
            paper's CGen is unpruned; the cap exists for the baselines).
    """

    def __init__(self, schema: Schema, single_column: bool = True,
                 multi_column: bool = True, covering: bool = True,
                 clustered: bool = True, max_key_columns: int = 3,
                 max_include_columns: int = 4,
                 per_query_limit: int | None = None):
        self._schema = schema
        self._options = _GenerationOptions(
            single_column=single_column,
            multi_column=multi_column,
            covering=covering,
            clustered=clustered,
            max_key_columns=max(1, max_key_columns),
            max_include_columns=max(0, max_include_columns),
            per_query_limit=per_query_limit,
        )

    # -------------------------------------------------------------------- public
    def generate(self, workload: Workload,
                 dba_indexes: Iterable[Index] = ()) -> CandidateSet:
        """Generate candidates for a workload, plus DBA-supplied indexes ``S_DBA``."""
        candidates = CandidateSet(self._schema)
        for statement in workload:
            for index in self.candidates_for_query(statement.query):
                candidates.add(index)
        candidates.add_all(dba_indexes)
        return candidates

    def candidates_for_query(self, query: Query) -> tuple[Index, ...]:
        """Candidate indexes suggested by a single statement."""
        source = query
        if isinstance(query, UpdateQuery):
            # Updates contribute candidates through their query shell: indexes
            # that speed up locating the affected rows.
            source = query.query_shell()
        produced: list[Index] = []
        for table in source.tables:
            produced.extend(self._candidates_for_table(source, table))
        limit = self._options.per_query_limit
        if limit is not None:
            produced = produced[:limit]
        return tuple(dict.fromkeys(produced))

    # ------------------------------------------------------------------ internals
    def _candidates_for_table(self, query: Query, table: str) -> list[Index]:
        table_def = self._schema.table(table)
        equality_columns = [p.column.column for p in query.sargable_predicates_on(table)
                            if p.is_equality]
        range_columns = [p.column.column for p in query.sargable_predicates_on(table)
                         if not p.is_equality]
        join_columns = [c.column for c in query.join_columns_on(table)]
        group_columns = [c.column for c in query.group_by_on(table)]
        order_columns = [c.column for c in query.order_by_on(table)]
        output_columns = [c.column for c in query.output_columns_on(table)]

        def existing(columns: Iterable[str]) -> list[str]:
            return [c for c in dict.fromkeys(columns) if table_def.has_column(c)]

        equality_columns = existing(equality_columns)
        range_columns = existing(range_columns)
        join_columns = existing(join_columns)
        group_columns = existing(group_columns)
        order_columns = existing(order_columns)
        output_columns = existing(output_columns)

        produced: list[Index] = []
        interesting_single = dict.fromkeys(
            equality_columns + range_columns + join_columns + group_columns
            + order_columns)
        if self._options.single_column:
            for column in interesting_single:
                produced.append(Index(table, (column,)))

        composite_keys: list[tuple[str, ...]] = []
        if self._options.multi_column:
            composite_keys.extend(self._composite_keys(
                equality_columns, range_columns, join_columns, group_columns,
                order_columns))
            for key in composite_keys:
                produced.append(Index(table, key))

        if self._options.covering:
            produced.extend(self._covering_variants(
                table, interesting_single, composite_keys, output_columns))

        if self._options.clustered and interesting_single:
            # The most selective access pattern: cluster on the first
            # composite key if one exists, else on the first interesting column.
            best_key = composite_keys[0] if composite_keys else (
                next(iter(interesting_single)),)
            produced.append(Index(table, best_key, clustered=True))

        return produced

    def _composite_keys(self, equality_columns: list[str], range_columns: list[str],
                        join_columns: list[str], group_columns: list[str],
                        order_columns: list[str]) -> list[tuple[str, ...]]:
        max_keys = self._options.max_key_columns
        keys: list[tuple[str, ...]] = []

        def add(columns: Iterable[str]) -> None:
            key = tuple(dict.fromkeys(columns))[:max_keys]
            if len(key) >= 2 and key not in keys:
                keys.append(key)

        # Equality columns first, then one range column (B-tree prefix rule).
        if equality_columns:
            add(equality_columns)
            for range_column in range_columns:
                add([*equality_columns, range_column])
            for join_column in join_columns:
                add([*equality_columns, join_column])
        # Join column leading, then filters (useful for the inner side of
        # index nested-loop joins with residual predicates).
        for join_column in join_columns:
            add([join_column, *equality_columns])
            add([join_column, *range_columns])
        # Group-by / order-by driven keys enable sort-free aggregation.
        if group_columns:
            add(group_columns)
            add([*group_columns, *equality_columns])
        if order_columns:
            add(order_columns)
        return keys

    def _covering_variants(self, table: str, interesting_single: dict[str, None],
                           composite_keys: list[tuple[str, ...]],
                           output_columns: list[str]) -> list[Index]:
        max_includes = self._options.max_include_columns
        if not output_columns or max_includes == 0:
            return []
        produced: list[Index] = []
        base_keys: list[tuple[str, ...]] = []
        base_keys.extend(composite_keys[:2])
        base_keys.extend((column,) for column in list(interesting_single)[:2])
        for key in base_keys:
            includes = tuple(c for c in output_columns if c not in key)[:max_includes]
            if includes:
                produced.append(Index(table, key, include_columns=includes))
        return produced
