"""Configurations and atomic configurations.

A *configuration* ``X`` is a set of indexes.  An *atomic configuration*
(Finkelstein et al.) contains at most one index per table; the INUM cost
formula and the ILP baseline both reason over atomic configurations, so this
module provides an explicit representation plus an enumerator
:func:`atomic_configurations` over ``atom(X)`` restricted to a query's tables.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping

from repro.exceptions import IndexDefinitionError
from repro.indexes.index import Index

__all__ = ["Configuration", "AtomicConfiguration", "atomic_configurations"]


class Configuration:
    """An unordered set of indexes (a candidate or recommended physical design)."""

    def __init__(self, indexes: Iterable[Index] = (), name: str = ""):
        unique: dict[Index, None] = dict.fromkeys(indexes)
        self._indexes = tuple(unique)
        self._index_set = frozenset(self._indexes)
        # Lazily built table -> indexes partition; configurations are
        # immutable, and the costing hot paths call ``indexes_on`` for every
        # (statement, table) pair, so a linear scan per call adds up.
        self._by_table: dict[str, tuple[Index, ...]] | None = None
        # Configurations key the costing memos and the scale-out shard maps;
        # precompute the hash instead of re-deriving it per lookup.
        self._hash = hash(self._index_set)
        self.name = name

    # ---------------------------------------------------------------- accessors
    @property
    def indexes(self) -> tuple[Index, ...]:
        return self._indexes

    def __iter__(self) -> Iterator[Index]:
        return iter(self._indexes)

    def __len__(self) -> int:
        return len(self._indexes)

    def __contains__(self, index: Index) -> bool:
        return index in self._index_set

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._index_set == other._index_set

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self) -> dict:
        # Like Index/TemplatePlan: the cached hash derives from string hashes,
        # which vary per process (hash randomisation) — never ship it across a
        # pickle boundary.  The by-table partition is cheap to rebuild lazily.
        state = self.__dict__.copy()
        state.pop("_hash", None)
        state["_by_table"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._hash = hash(self._index_set)

    def indexes_on(self, table: str) -> tuple[Index, ...]:
        if self._by_table is None:
            by_table: dict[str, list[Index]] = {}
            for index in self._indexes:
                by_table.setdefault(index.table, []).append(index)
            self._by_table = {name: tuple(indexes)
                              for name, indexes in by_table.items()}
        return self._by_table.get(table, ())

    def tables(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(index.table for index in self._indexes))

    def clustered_indexes_on(self, table: str) -> tuple[Index, ...]:
        return tuple(index for index in self.indexes_on(table) if index.clustered)

    # ------------------------------------------------------------- construction
    def union(self, other: "Configuration | Iterable[Index]") -> "Configuration":
        other_indexes = other.indexes if isinstance(other, Configuration) else tuple(other)
        return Configuration((*self._indexes, *other_indexes), name=self.name)

    def with_index(self, index: Index) -> "Configuration":
        return Configuration((*self._indexes, index), name=self.name)

    def without_index(self, index: Index) -> "Configuration":
        return Configuration((i for i in self._indexes if i != index), name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Configuration({len(self._indexes)} indexes)"


class AtomicConfiguration:
    """At most one index per table, represented as a mapping ``table -> Index | None``.

    ``None`` plays the role of the paper's ``I_0`` symbol (no index selected
    for that table, i.e. the table is accessed through a heap scan or its
    existing clustered primary key).
    """

    def __init__(self, assignment: Mapping[str, Index | None]):
        for table, index in assignment.items():
            if index is not None and index.table != table:
                raise IndexDefinitionError(
                    f"Atomic configuration maps table {table!r} to an index on "
                    f"{index.table!r}")
        self._assignment = dict(assignment)

    @classmethod
    def from_indexes(cls, indexes: Iterable[Index]) -> "AtomicConfiguration":
        assignment: dict[str, Index | None] = {}
        for index in indexes:
            if index.table in assignment:
                raise IndexDefinitionError(
                    f"Atomic configuration has two indexes on table {index.table!r}")
            assignment[index.table] = index
        return cls(assignment)

    # ---------------------------------------------------------------- accessors
    @property
    def tables(self) -> tuple[str, ...]:
        return tuple(self._assignment.keys())

    def index_for(self, table: str) -> Index | None:
        return self._assignment.get(table)

    def indexes(self) -> tuple[Index, ...]:
        return tuple(index for index in self._assignment.values() if index is not None)

    def items(self) -> Iterator[tuple[str, Index | None]]:
        return iter(self._assignment.items())

    def __len__(self) -> int:
        return len(self._assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AtomicConfiguration):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        return hash(frozenset(self._assignment.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{table}={'∅' if index is None else index.name}"
            for table, index in self._assignment.items())
        return f"AtomicConfiguration({parts})"


def atomic_configurations(configuration: Configuration | Iterable[Index],
                          tables: Iterable[str],
                          max_count: int | None = None) -> Iterator[AtomicConfiguration]:
    """Enumerate ``atom(X)`` restricted to the given tables.

    For each table the choice is "no index" (``None``) or one of the
    configuration's indexes on that table; the result is the cross product,
    which grows as ``prod_i (|S_i| + 1)``.  The ILP baseline relies on this
    enumerator (and must prune it); CoPhy never enumerates it.

    Args:
        configuration: The index set ``X``.
        tables: Tables over which to build atomic configurations (typically a
            query's FROM list).
        max_count: Optional hard cap on the number of yielded configurations.

    Yields:
        :class:`AtomicConfiguration` objects.
    """
    if not isinstance(configuration, Configuration):
        configuration = Configuration(configuration)
    table_list = tuple(dict.fromkeys(tables))
    per_table_choices: list[list[Index | None]] = []
    for table in table_list:
        choices: list[Index | None] = [None]
        choices.extend(configuration.indexes_on(table))
        per_table_choices.append(choices)
    produced = 0
    for combination in itertools.product(*per_table_choices):
        if max_count is not None and produced >= max_count:
            return
        yield AtomicConfiguration(dict(zip(table_list, combination)))
        produced += 1
