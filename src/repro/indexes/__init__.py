"""Index substrate: index definitions, configurations and candidate generation.

Indexes here are *hypothetical*: they are never materialised, only described
(table, key columns, included columns, clustered flag) and sized from the
catalog statistics, which is exactly the information the what-if optimizer and
the BIP need.  This mirrors the role of hypothetical-index facilities such as
``HypoPG`` or the commercial what-if interfaces the paper relies on.
"""

from repro.indexes.index import Index, index_size_bytes
from repro.indexes.configuration import (
    AtomicConfiguration,
    Configuration,
    atomic_configurations,
)
from repro.indexes.candidate_generation import CandidateGenerator, CandidateSet

__all__ = [
    "Index",
    "index_size_bytes",
    "Configuration",
    "AtomicConfiguration",
    "atomic_configurations",
    "CandidateGenerator",
    "CandidateSet",
]
