"""Index definitions and size estimation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.catalog.table import Table

from repro.exceptions import IndexDefinitionError
from repro.workload.predicates import ColumnRef

__all__ = ["Index", "index_size_bytes"]

#: Per-entry overhead of a B-tree leaf entry (pointer + alignment).
_INDEX_ENTRY_OVERHEAD_BYTES = 12
#: Typical B-tree page fill factor.
_FILL_FACTOR = 0.70


@dataclass(frozen=True)
class Index:
    """A (hypothetical) B-tree index on a single table.

    Attributes:
        table: Name of the indexed table.  The paper requires every index to
            be defined on exactly one table (no join indexes).
        key_columns: Ordered key columns; the leading column determines which
            sort orders and sargable predicates the index can serve.
        include_columns: Non-key columns stored in the leaves, used to make
            the index covering without widening the key.
        clustered: Whether this is the table's clustered index.  Constraint
            E.3 of the paper limits configurations to one clustered index per
            table.
        name: Optional explicit name; a canonical one is derived otherwise.
    """

    table: str
    key_columns: tuple[str, ...]
    include_columns: tuple[str, ...] = ()
    clustered: bool = False
    name: str = field(default="", compare=False)

    def __init__(self, table: str, key_columns: Iterable[str],
                 include_columns: Iterable[str] = (), clustered: bool = False,
                 name: str | None = None):
        key_columns = tuple(key_columns)
        include_columns = tuple(include_columns)
        if not table:
            raise IndexDefinitionError("Index must name a table")
        if not key_columns:
            raise IndexDefinitionError("Index must have at least one key column")
        if len(set(key_columns)) != len(key_columns):
            raise IndexDefinitionError(
                f"Duplicate key columns in index on {table!r}: {key_columns}")
        overlap = set(key_columns) & set(include_columns)
        if overlap:
            raise IndexDefinitionError(
                f"Columns {sorted(overlap)} appear both as key and include columns")
        # Deduplicate include columns while preserving order.
        include_columns = tuple(dict.fromkeys(include_columns))
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "key_columns", key_columns)
        object.__setattr__(self, "include_columns", include_columns)
        object.__setattr__(self, "clustered", bool(clustered))
        object.__setattr__(self, "name", name or self._canonical_name())
        # Indexes are used as dict keys throughout the costing hot paths;
        # precompute the hash of the compare fields instead of re-hashing
        # them on every lookup.
        object.__setattr__(self, "_hash", hash(
            (table, key_columns, include_columns, bool(clustered))))

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self) -> dict:
        # The cached hash is built from string hashes, which vary per process
        # (hash randomisation): never ship it across a pickle boundary.
        state = self.__dict__.copy()
        state.pop("_hash", None)
        return state

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "_hash", hash(
            (self.table, self.key_columns, self.include_columns,
             self.clustered)))

    def _canonical_name(self) -> str:
        parts = [self.table, "_".join(self.key_columns)]
        if self.include_columns:
            parts.append("inc_" + "_".join(self.include_columns))
        if self.clustered:
            parts.append("clustered")
        return "idx_" + "__".join(parts)

    # ---------------------------------------------------------------- accessors
    @property
    def leading_column(self) -> str:
        return self.key_columns[0]

    @property
    def all_columns(self) -> tuple[str, ...]:
        """Key columns followed by include columns."""
        return self.key_columns + self.include_columns

    @property
    def width(self) -> int:
        """Number of key plus included columns (used by width constraints)."""
        return len(self.all_columns)

    def covers(self, columns: Iterable[ColumnRef | str]) -> bool:
        """Whether every given column of this table is stored in the index."""
        available = set(self.all_columns)
        for column in columns:
            column_name = column.column if isinstance(column, ColumnRef) else column
            if column_name not in available:
                return False
        return True

    def provides_order_on(self, column: ColumnRef | str) -> bool:
        """Whether scanning the index yields rows sorted by ``column``."""
        column_name = column.column if isinstance(column, ColumnRef) else column
        return self.key_columns[0] == column_name

    def key_prefix_matches(self, columns: Iterable[str]) -> int:
        """Length of the longest key prefix fully contained in ``columns``."""
        available = set(columns)
        matched = 0
        for key_column in self.key_columns:
            if key_column in available:
                matched += 1
            else:
                break
        return matched

    def __str__(self) -> str:
        keys = ", ".join(self.key_columns)
        suffix = ""
        if self.include_columns:
            suffix = f" INCLUDE ({', '.join(self.include_columns)})"
        kind = "CLUSTERED " if self.clustered else ""
        return f"{kind}INDEX ON {self.table}({keys}){suffix}"


def index_size_bytes(index: Index, table: Table) -> float:
    """Estimate the on-disk size of ``index`` over ``table``.

    A clustered index stores the full tuples (it *is* the table), so its
    incremental storage cost is only the non-leaf levels; a secondary index
    stores one leaf entry per row (key + included columns + row pointer), with
    non-leaf levels adding a logarithmic factor.

    Args:
        index: The index to size.
        table: The catalog table it is defined on (supplies row count and
            column widths).

    Returns:
        Estimated size in bytes.
    """
    if index.table != table.name:
        raise IndexDefinitionError(
            f"Index {index.name} is on {index.table!r}, not {table.name!r}")
    for column in index.all_columns:
        table.column(column)  # raises CatalogError for unknown columns

    rows = max(table.row_count, 1.0)
    if index.clustered:
        # The clustered index holds full tuples; charge only the sparse
        # non-leaf levels over the heap.
        leaf_bytes = rows * (table.tuple_width + _INDEX_ENTRY_OVERHEAD_BYTES)
        internal_fraction = 0.01
        return leaf_bytes * internal_fraction + table.page_size

    entry_width = sum(table.column_width(c) for c in index.all_columns)
    entry_width += _INDEX_ENTRY_OVERHEAD_BYTES
    leaf_bytes = rows * entry_width / _FILL_FACTOR
    entries_per_page = max(2.0, table.page_size * _FILL_FACTOR / entry_width)
    leaf_pages = max(1.0, rows / entries_per_page)
    # Upper levels: a geometric series bounded by leaf_pages / (fanout - 1).
    internal_pages = leaf_pages / max(entries_per_page - 1.0, 1.0)
    return (leaf_pages + internal_pages) * table.page_size
