"""A from-scratch binary-integer-programming toolkit.

The paper's CoPhy prototype delegates to CPLEX; this package provides the
equivalent substrate without external solvers:

* a modelling layer (:class:`Variable`, :class:`LinearExpression`,
  :class:`Constraint`, :class:`Model`) in the spirit of PuLP;
* an LP-relaxation backend built on :func:`scipy.optimize.linprog` (HiGHS);
* a :class:`BranchAndBoundSolver` that adds integrality by branch and bound,
  exposing the features CoPhy depends on: a feasibility probe, an optimality
  *gap trace* over time (for the early-termination feedback of Figure 6a),
  gap-based early stopping, node/time limits and warm starts from a known
  incumbent (for interactive re-tuning, Figure 6b);
* a :class:`MilpBackend` that wraps :func:`scipy.optimize.milp` for users who
  prefer the HiGHS branch-and-bound written in C.
"""

from repro.lp.budget import SOLVE_TIERS, SolveBudget
from repro.lp.variable import Variable, VariableKind
from repro.lp.expression import LinearExpression
from repro.lp.constraint import Constraint, ConstraintSense
from repro.lp.model import Model, ObjectiveSense
from repro.lp.solution import GapTracePoint, Solution, SolutionStatus
from repro.lp.highs_backend import LinearRelaxationBackend, MilpBackend
from repro.lp.branch_and_bound import BranchAndBoundSolver

__all__ = [
    "SOLVE_TIERS",
    "SolveBudget",
    "Variable",
    "VariableKind",
    "LinearExpression",
    "Constraint",
    "ConstraintSense",
    "Model",
    "ObjectiveSense",
    "Solution",
    "SolutionStatus",
    "GapTracePoint",
    "LinearRelaxationBackend",
    "MilpBackend",
    "BranchAndBoundSolver",
]
