"""A branch-and-bound binary-integer-program solver over LP relaxations.

This is the "off-the-shelf BIP solver" of the reproduction.  It provides the
behaviours CoPhy's Solver component builds on:

* a **feasibility probe** (:meth:`BranchAndBoundSolver.is_feasible`) used to
  reject unsatisfiable hard-constraint sets before solving;
* **continuous feedback**: every improvement of the incumbent or of the best
  bound is recorded as a :class:`~repro.lp.solution.GapTracePoint`, which is
  what Figure 6a of the paper plots;
* **early termination** once the relative optimality gap falls below a
  threshold (the paper tunes CPLEX to stop at 5%);
* **warm starts** from a known-good assignment, which is how interactive
  re-tuning reuses the computation of a previous solve (Figure 6b);
* node and wall-clock limits.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.lp.budget import SolveBudget
from repro.lp.highs_backend import LinearRelaxationBackend
from repro.lp.model import Model, ObjectiveSense
from repro.lp.solution import GapTracePoint, Solution, SolutionStatus
from repro.lp.variable import Variable, VariableKind
from repro.obs.metrics import GAP_BUCKETS, NODES_BUCKETS, active_registry

__all__ = ["BranchAndBoundSolver"]

_INTEGRALITY_TOLERANCE = 1e-6


@dataclass(order=True)
class _Node:
    """A branch-and-bound node ordered by its LP bound (best-first search)."""

    bound: float
    sequence: int
    depth: int = field(compare=False)
    bounds: np.ndarray = field(compare=False)


class BranchAndBoundSolver:
    """Branch-and-bound over scipy/HiGHS LP relaxations.

    Args:
        gap_tolerance: Stop as soon as the relative gap between the incumbent
            and the best bound drops to this value (0 = prove optimality).
        time_limit_seconds: Wall-clock budget; the best incumbent found so far
            is returned when it runs out.
        node_limit: Maximum number of explored nodes.
        progress_callback: Optional callable invoked with each new
            :class:`GapTracePoint` (CoPhy's interactive feedback hook).
    """

    def __init__(self, gap_tolerance: float = 0.0,
                 time_limit_seconds: float | None = None,
                 node_limit: int = 100_000,
                 progress_callback: Callable[[GapTracePoint], None] | None = None):
        self.gap_tolerance = max(0.0, float(gap_tolerance))
        self.time_limit_seconds = time_limit_seconds
        self.node_limit = int(node_limit)
        self.progress_callback = progress_callback
        self._relaxation = LinearRelaxationBackend()

    # ------------------------------------------------------------------- probes
    def is_feasible(self, model: Model) -> bool:
        """Fast feasibility probe via the LP relaxation.

        An infeasible relaxation proves the BIP infeasible.  (A feasible
        relaxation does not *prove* integer feasibility, but for the index
        tuning constraint classes of the paper — budgets, cardinality limits,
        per-table rules — LP feasibility coincides with BIP feasibility.)
        """
        relaxed = self._relaxation.solve(model)
        return relaxed.status is not SolutionStatus.INFEASIBLE

    # -------------------------------------------------------------------- solve
    def solve(self, model: Model, warm_start: Mapping[Variable, float] | None = None,
              gap_tolerance: float | None = None,
              time_limit_seconds: float | None = None,
              budget: SolveBudget | None = None) -> Solution:
        """Solve the binary integer program.

        Args:
            model: The model to solve (binary and continuous variables).
            warm_start: Optional assignment used as the initial incumbent if it
                is feasible; this is how re-tuning reuses prior solutions.
            gap_tolerance: Per-call override of the construction-time tolerance.
            time_limit_seconds: Per-call override of the time limit.
            budget: Optional :class:`~repro.lp.budget.SolveBudget`; its
                remaining wall clock, node limit and gap limit are merged
                with the solver's own settings.  When the deadline fires the
                best-so-far incumbent is returned with ``timed_out=True`` and
                its closed-form gap against the tightest known bound.
        """
        solution = self._solve(model, warm_start=warm_start,
                               gap_tolerance=gap_tolerance,
                               time_limit_seconds=time_limit_seconds,
                               budget=budget)
        # One metrics record per solve (never per node): outcome, search
        # size and the achieved gap, into whichever registry the current
        # request activated.
        registry = active_registry()
        registry.counter(
            "repro_solver_solves_total",
            "Branch-and-bound solves by outcome status",
            ("status",)).inc(status=solution.status.name.lower())
        registry.histogram(
            "repro_solver_nodes",
            "Nodes explored per branch-and-bound solve",
            buckets=NODES_BUCKETS).observe(float(solution.nodes_explored))
        if math.isfinite(solution.gap):
            # Failed solves report an infinite gap; observing it would poison
            # the histogram's _sum, so only finished solves land here.
            registry.histogram(
                "repro_solver_gap",
                "Relative optimality gap per finished solve",
                buckets=GAP_BUCKETS).observe(float(solution.gap))
        return solution

    def _solve(self, model: Model,
               warm_start: Mapping[Variable, float] | None = None,
               gap_tolerance: float | None = None,
               time_limit_seconds: float | None = None,
               budget: SolveBudget | None = None) -> Solution:
        started = time.perf_counter()
        effective_gap = (self.gap_tolerance if gap_tolerance is None
                         else max(0.0, gap_tolerance))
        effective_limit = (self.time_limit_seconds if time_limit_seconds is None
                           else time_limit_seconds)
        effective_nodes = self.node_limit
        if budget is not None:
            budget.start()
            effective_limit = budget.clamp_time_limit(effective_limit)
            if budget.gap_limit is not None:
                effective_gap = max(effective_gap, budget.gap_limit)
            if budget.node_limit is not None:
                effective_nodes = min(effective_nodes, budget.node_limit)
        matrices = model.to_matrices()
        root_bounds = matrices["bounds"].copy()
        binary_variables = tuple(v for v in model.variables
                                 if v.kind is VariableKind.BINARY)
        # Vectorized branching/rounding work on the LP solution vector; the
        # binary positions and mask are fixed for the whole search.
        binary_indices = np.array([v.index for v in binary_variables],
                                  dtype=np.intp)
        binary_mask = matrices["integrality"].astype(bool)
        # The search works in minimisation space; maximisation models are
        # handled by flipping the sign of every objective value.
        sign = -1.0 if model.sense is ObjectiveSense.MAXIMIZE else 1.0

        incumbent_values: dict[Variable, float] | None = None
        incumbent_objective = math.inf
        if warm_start is not None and model.is_feasible_assignment(warm_start):
            incumbent_values = {v: float(warm_start.get(v, 0.0))
                                for v in model.variables}
            incumbent_objective = sign * model.objective_value(incumbent_values)

        gap_trace: list[GapTracePoint] = []
        nodes_explored = 0
        best_bound = -math.inf
        counter = itertools.count()

        root = self._relaxation.solve(model, root_bounds, matrices=matrices)
        if root.status is SolutionStatus.INFEASIBLE:
            return Solution(status=SolutionStatus.INFEASIBLE,
                            solve_seconds=time.perf_counter() - started,
                            message="LP relaxation infeasible")
        if root.status is SolutionStatus.UNBOUNDED:
            return Solution(status=SolutionStatus.UNBOUNDED,
                            solve_seconds=time.perf_counter() - started,
                            message="LP relaxation unbounded")
        if not root.status.has_solution:
            return Solution(status=SolutionStatus.ERROR,
                            solve_seconds=time.perf_counter() - started,
                            message=root.message)

        heap: list[_Node] = []
        heapq.heappush(heap, _Node(bound=sign * root.objective, sequence=next(counter),
                                   depth=0, bounds=root_bounds))
        # The root relaxation is a valid global bound; seeding it keeps the
        # reported gap finite (closed-form) even when a deadline fires before
        # the first node is explored.
        best_bound = min(sign * root.objective, incumbent_objective)

        def record(force: bool = False) -> None:
            nonlocal gap_trace
            gap = self._relative_gap(incumbent_objective, best_bound)
            point = GapTracePoint(
                elapsed_seconds=time.perf_counter() - started,
                incumbent_objective=sign * incumbent_objective,
                best_bound=sign * best_bound,
                gap=gap,
                nodes_explored=nodes_explored,
            )
            if force or not gap_trace or (gap_trace[-1].gap - gap) > 1e-12:
                gap_trace.append(point)
                if self.progress_callback is not None:
                    self.progress_callback(point)

        timed_out = False
        while heap:
            if (effective_limit is not None and (
                    time.perf_counter() - started) > effective_limit) or (
                    budget is not None and budget.expired()):
                timed_out = True
                break
            if nodes_explored >= effective_nodes:
                break
            node = heapq.heappop(heap)
            # Prune by bound against the incumbent.  The heap is bound-ordered
            # (best-first), so the popped node carries the minimum bound of
            # all open nodes: if even it cannot beat the incumbent, no open
            # node can, and the bound closes to the pruned node's bound.
            if node.bound >= incumbent_objective - 1e-12:
                # Every other open node is fathomed within tolerance too (the
                # heap is bound-ordered), so this matches the old behaviour of
                # draining the heap and closing the bound to the incumbent.
                best_bound = max(best_bound, incumbent_objective)
                record()
                break
            best_bound = max(best_bound, node.bound)
            relaxed = self._relaxation.solve(model, node.bounds, matrices=matrices)
            nodes_explored += 1
            if not relaxed.status.has_solution:
                continue
            relaxed_objective = sign * relaxed.objective
            if relaxed_objective >= incumbent_objective - 1e-12:
                if heap:
                    # Open nodes with bounds above the incumbent are still
                    # queued (they fathom on pop), so clamp at the incumbent.
                    best_bound = max(best_bound,
                                     min(heap[0].bound, incumbent_objective))
                else:
                    best_bound = incumbent_objective
                record()
                if self._should_stop(incumbent_objective, best_bound, effective_gap):
                    break
                continue

            fractional_index = self._most_fractional(relaxed, binary_variables,
                                                     binary_indices)
            if fractional_index is None:
                # Integral solution: new incumbent.
                incumbent_values = dict(relaxed.values)
                incumbent_objective = relaxed_objective
                record(force=True)
            else:
                rounded = self._rounding_heuristic(model, relaxed, matrices,
                                                   binary_mask, sign)
                if rounded is not None:
                    rounded_vector, rounded_objective = rounded
                    if rounded_objective < incumbent_objective - 1e-12:
                        # The per-variable dict is materialized only for an
                        # accepted incumbent, not on every node.
                        incumbent_values = {
                            variable: float(rounded_vector[variable.index])
                            for variable in model.variables}
                        incumbent_objective = rounded_objective
                        record(force=True)
                for branch_value in (0.0, 1.0):
                    child_bounds = node.bounds.copy()
                    child_bounds[fractional_index, 0] = branch_value
                    child_bounds[fractional_index, 1] = branch_value
                    heapq.heappush(heap, _Node(bound=relaxed_objective,
                                               sequence=next(counter),
                                               depth=node.depth + 1,
                                               bounds=child_bounds))
            # The heap root carries the minimum bound over all open nodes, so
            # no O(n) scan is needed to refresh the best bound (clamped at
            # the incumbent, which a valid lower bound cannot exceed).
            if heap:
                best_bound = max(best_bound,
                                 min(heap[0].bound, incumbent_objective))
            else:
                best_bound = incumbent_objective
            record()
            if self._should_stop(incumbent_objective, best_bound, effective_gap):
                break

        elapsed = time.perf_counter() - started
        if incumbent_values is None:
            # No integral solution found within the limits.
            return Solution(status=SolutionStatus.ERROR, solve_seconds=elapsed,
                            nodes_explored=nodes_explored,
                            gap_trace=tuple(gap_trace),
                            message="No integer-feasible solution found",
                            timed_out=timed_out)
        if not heap:
            best_bound = incumbent_objective
        gap = self._relative_gap(incumbent_objective, best_bound)
        status = (SolutionStatus.OPTIMAL if gap <= max(effective_gap, 1e-9)
                  else SolutionStatus.FEASIBLE)
        record(force=True)
        return Solution(status=status, objective=sign * incumbent_objective,
                        values=incumbent_values, best_bound=sign * best_bound,
                        gap=gap, solve_seconds=elapsed,
                        nodes_explored=nodes_explored, gap_trace=tuple(gap_trace),
                        timed_out=timed_out and status is not SolutionStatus.OPTIMAL)

    # ---------------------------------------------------------------- internals
    @staticmethod
    def _relative_gap(incumbent: float, bound: float) -> float:
        if not math.isfinite(incumbent):
            return math.inf
        if not math.isfinite(bound):
            return math.inf
        denominator = max(abs(incumbent), 1e-9)
        return max(0.0, (incumbent - bound) / denominator)

    def _should_stop(self, incumbent: float, bound: float, gap_tolerance: float) -> bool:
        if not math.isfinite(incumbent):
            return False
        return self._relative_gap(incumbent, bound) <= gap_tolerance

    @staticmethod
    def _most_fractional(solution: Solution,
                         binary_variables: Sequence[Variable],
                         binary_indices: np.ndarray | None = None) -> int | None:
        """Index of the binary variable farthest from integrality, if any.

        Only the precomputed binary variables are examined; continuous
        variables can never be branching candidates, so continuous-heavy
        models must not pay a full-variable scan on every node.  With the
        backend's solution vector available the scan is a single numpy
        reduction over the binary positions (ties resolve to the first
        maximum, like the scalar scan).
        """
        vector = solution.vector
        if vector is not None:
            if binary_indices is None:
                binary_indices = np.array([v.index for v in binary_variables],
                                          dtype=np.intp)
            if binary_indices.size == 0:
                return None
            binary_values = vector[binary_indices]
            distances = np.abs(binary_values - np.round(binary_values))
            worst = int(np.argmax(distances))
            if distances[worst] <= _INTEGRALITY_TOLERANCE:
                return None
            return int(binary_indices[worst])
        worst_index: int | None = None
        worst_distance = _INTEGRALITY_TOLERANCE
        values = solution.values
        for variable in binary_variables:
            value = values.get(variable, 0.0)
            distance = abs(value - round(value))
            if distance > worst_distance:
                worst_distance = distance
                worst_index = variable.index
        return worst_index

    @staticmethod
    def _rounding_heuristic(model: Model, relaxed: Solution, matrices: dict,
                            binary_mask: np.ndarray, sign: float
                            ) -> tuple[np.ndarray, float] | None:
        """Round the LP vector to the nearest integers; keep it if feasible.

        Works entirely on the solution vector: rounding, bound checks,
        constraint residuals (sparse matrix-vector products) and the
        objective are numpy operations — no per-node assignment dict is
        built.  Returns the rounded vector and its minimisation-space
        objective, or ``None`` when rounding breaks feasibility.
        """
        vector = relaxed.vector
        if vector is None:  # solution from a backend without vector support
            vector = np.zeros(len(model.variables), dtype=np.float64)
            for variable, value in relaxed.values.items():
                vector[variable.index] = value
        rounded = vector.copy()
        rounded[binary_mask] = np.round(rounded[binary_mask])
        tolerance = 1e-6
        bounds = matrices["bounds"]
        if ((rounded < bounds[:, 0] - tolerance).any()
                or (rounded > bounds[:, 1] + tolerance).any()):
            return None
        a_ub, b_ub = matrices["A_ub"], matrices["b_ub"]
        if a_ub is not None and (a_ub @ rounded > b_ub + tolerance).any():
            return None
        a_eq, b_eq = matrices["A_eq"], matrices["b_eq"]
        if a_eq is not None and np.abs(a_eq @ rounded - b_eq).max() > tolerance:
            return None
        # ``c`` is already negated for maximisation, the constant is not.
        objective = float(matrices["c"] @ rounded) + sign * matrices["objective_constant"]
        return rounded, objective
