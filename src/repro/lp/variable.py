"""Decision variables for the BIP modelling layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.lp.expression import LinearExpression

__all__ = ["Variable", "VariableKind"]


class VariableKind(enum.Enum):
    """Kind of decision variable."""

    BINARY = "binary"
    CONTINUOUS = "continuous"


@dataclass(frozen=True, eq=False)
class Variable:
    """A decision variable owned by a :class:`~repro.lp.model.Model`.

    Variables compare by identity (two variables with the same name in
    different models are different variables) and support the arithmetic
    needed to write objective/constraint expressions naturally::

        model.add_constraint(2 * x + y <= 3)

    Attributes:
        name: Human-readable name (used in solutions and debugging output).
        index: Position of the variable in its model's column order.
        kind: Binary or continuous.
        lower_bound: Lower bound (0.0 for binary variables).
        upper_bound: Upper bound (1.0 for binary variables).
    """

    name: str
    index: int
    kind: VariableKind = VariableKind.BINARY
    lower_bound: float = 0.0
    upper_bound: float = 1.0

    # -------------------------------------------------------------- arithmetic
    def _as_expression(self) -> "LinearExpression":
        from repro.lp.expression import LinearExpression

        return LinearExpression({self: 1.0})

    def __add__(self, other) -> "LinearExpression":
        return self._as_expression() + other

    def __radd__(self, other) -> "LinearExpression":
        return self._as_expression() + other

    def __sub__(self, other) -> "LinearExpression":
        return self._as_expression() - other

    def __rsub__(self, other) -> "LinearExpression":
        return (-1.0 * self._as_expression()) + other

    def __mul__(self, coefficient: float) -> "LinearExpression":
        return self._as_expression() * coefficient

    def __rmul__(self, coefficient: float) -> "LinearExpression":
        return self._as_expression() * coefficient

    def __neg__(self) -> "LinearExpression":
        return self._as_expression() * -1.0

    # -------------------------------------------------------------- comparisons
    # Note: ``==`` is deliberately *not* overloaded on variables so they stay
    # safe to use as dictionary keys; build equality constraints from
    # expressions instead (e.g. ``(x + y) == 1`` or ``1 * x == 1``).
    def __le__(self, other):
        return self._as_expression() <= other

    def __ge__(self, other):
        return self._as_expression() >= other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r})"
