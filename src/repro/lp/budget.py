"""``SolveBudget`` — the anytime-tuning contract threaded through the stack.

A budget bundles a wall-clock deadline with optional node / gap limits and a
solve *tier*.  The same object travels from :class:`~repro.api.specs.AdvisorSpec`
down to :class:`~repro.lp.branch_and_bound.BranchAndBoundSolver`, so every
layer shares one clock: the deadline is anchored **once** (:meth:`start`) when
the pipeline begins, and each stage below it asks :meth:`remaining_seconds` /
:meth:`expired` against that same anchor instead of restarting its own timer.

Tiers select how the CoPhy pipeline spends the budget:

* ``"exact"`` — the BIP solve as before, interrupted at the deadline with the
  best-so-far incumbent, its closed-form gap and ``timed_out=True``;
* ``"heuristic"`` — only the greedy knapsack pass
  (:mod:`repro.core.heuristics`), never building the BIP;
* ``"cascade"`` — greedy first, then (budget permitting) the exact solve
  warm-started from the greedy incumbent; whichever is better wins.

This module sits at the bottom layer on purpose: ``lp`` imports nothing from
``core``/``api``, so every layer can depend on the budget without cycles.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

__all__ = ["SOLVE_TIERS", "SolveBudget"]

#: Valid values for :attr:`SolveBudget.tier` (and ``AdvisorSpec.solve_tier``).
SOLVE_TIERS = ("heuristic", "cascade", "exact")


@dataclass
class SolveBudget:
    """A wall-clock / node / gap budget for one tuning request.

    Args:
        time_budget_ms: Wall-clock budget in milliseconds; ``None`` means
            unlimited.  The clock starts at the first :meth:`start` call.
        node_limit: Optional cap on branch-and-bound nodes.
        gap_limit: Optional relative-gap tolerance at which the solve may
            stop early (merged with the solver's own tolerance via ``max``).
        tier: One of :data:`SOLVE_TIERS`; how the pipeline spends the budget.
    """

    time_budget_ms: float | None = None
    node_limit: int | None = None
    gap_limit: float | None = None
    tier: str = "exact"
    #: Monotonic deadline, anchored by :meth:`start`; ``None`` until then.
    _deadline: float | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.tier not in SOLVE_TIERS:
            raise ValueError(
                f"Unknown solve tier {self.tier!r}; expected one of "
                f"{', '.join(SOLVE_TIERS)}")
        if self.time_budget_ms is not None:
            self.time_budget_ms = float(self.time_budget_ms)
            if (not math.isfinite(self.time_budget_ms)
                    or self.time_budget_ms <= 0):
                raise ValueError("time_budget_ms must be a positive, finite "
                                 f"number of milliseconds, got "
                                 f"{self.time_budget_ms!r}")
        if self.node_limit is not None:
            self.node_limit = int(self.node_limit)
            if self.node_limit <= 0:
                raise ValueError("node_limit must be positive, got "
                                 f"{self.node_limit!r}")
        if self.gap_limit is not None:
            self.gap_limit = float(self.gap_limit)
            if not math.isfinite(self.gap_limit) or self.gap_limit < 0:
                raise ValueError("gap_limit must be a finite non-negative "
                                 f"fraction, got {self.gap_limit!r}")

    # ------------------------------------------------------------------ factory
    @classmethod
    def from_spec(cls, time_budget_ms: float | None, solve_tier: str | None,
                  ) -> "SolveBudget | None":
        """Budget implied by ``AdvisorSpec`` fields; ``None`` when unbudgeted.

        An unset tier defaults to ``"cascade"`` when a deadline is present
        (graceful degradation) and ``"exact"`` otherwise; an explicit tier is
        honored even without a deadline (e.g. heuristic-only tuning).
        """
        if time_budget_ms is None and solve_tier is None:
            return None
        tier = solve_tier if solve_tier is not None else (
            "cascade" if time_budget_ms is not None else "exact")
        return cls(time_budget_ms=time_budget_ms, tier=tier)

    # -------------------------------------------------------------------- clock
    @property
    def started(self) -> bool:
        return self._deadline is not None

    def start(self) -> "SolveBudget":
        """Anchor the deadline (idempotent); returns ``self`` for chaining."""
        if self._deadline is None and self.time_budget_ms is not None:
            self._deadline = time.perf_counter() + self.time_budget_ms / 1000.0
        return self

    def remaining_seconds(self) -> float | None:
        """Seconds left on the clock (``None`` = no wall-clock limit).

        Never negative: once the deadline passes, 0.0 is returned so the
        value can be handed to backends as a time limit directly.
        """
        if self.time_budget_ms is None:
            return None
        if self._deadline is None:
            return self.time_budget_ms / 1000.0
        return max(0.0, self._deadline - time.perf_counter())

    def expired(self) -> bool:
        """Whether the anchored deadline has passed (False when unlimited)."""
        if self._deadline is None:
            return False
        return time.perf_counter() >= self._deadline

    def can_spend(self, seconds: float) -> bool:
        """Whether ``seconds`` of extra wall clock fits in the budget.

        The retry–deadline contract: a backoff sleep is only taken when the
        remaining budget covers it, so no retry ever pushes a request past
        its own deadline.  Always True when unlimited.
        """
        remaining = self.remaining_seconds()
        return remaining is None or remaining >= max(0.0, seconds)

    # -------------------------------------------------------------- sub-budgets
    def clamp_time_limit(self, limit_seconds: float | None) -> float | None:
        """Merge a solver-configured time limit with the remaining budget."""
        remaining = self.remaining_seconds()
        if remaining is None:
            return limit_seconds
        if limit_seconds is None:
            return remaining
        return min(limit_seconds, remaining)

    def shard_slice_seconds(self, shard_count: int, workers: int = 1,
                            merge_reserve: float = 0.25) -> float | None:
        """Per-shard wall-clock slice for a scale-out solve.

        The remaining budget minus a reserved ``merge_reserve`` fraction (for
        the merge BIP) is divided across the ``ceil(shard_count / workers)``
        waves of shard solves that actually run sequentially; shards within a
        wave run in parallel and share the same slice.
        """
        remaining = self.remaining_seconds()
        if remaining is None:
            return None
        waves = max(1, math.ceil(max(1, shard_count) / max(1, workers)))
        return (remaining * (1.0 - merge_reserve)) / waves
