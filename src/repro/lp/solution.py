"""Solver results: status, values, optimality gap and gap trace."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.lp.variable import Variable

__all__ = ["SolutionStatus", "GapTracePoint", "Solution"]


class SolutionStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"          # stopped early (gap / time / node limit)
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (SolutionStatus.OPTIMAL, SolutionStatus.FEASIBLE)


@dataclass(frozen=True)
class GapTracePoint:
    """One point of the solver's progress feedback.

    CoPhy surfaces these to the DBA so that a tuning session can be stopped
    early once the bound is tight enough (Figure 6a of the paper).
    """

    elapsed_seconds: float
    incumbent_objective: float
    best_bound: float
    gap: float
    nodes_explored: int


@dataclass
class Solution:
    """Result of solving a (relaxed or integer) model."""

    status: SolutionStatus
    objective: float = float("inf")
    values: dict[Variable, float] = field(default_factory=dict)
    best_bound: float = float("-inf")
    gap: float = float("inf")
    solve_seconds: float = 0.0
    nodes_explored: int = 0
    iterations: int = 0
    gap_trace: tuple[GapTracePoint, ...] = ()
    message: str = ""
    #: True when a wall-clock deadline interrupted the solve: the solution is
    #: the best-so-far incumbent, ``gap`` its closed-form optimality bound.
    timed_out: bool = False
    #: Raw solution vector indexed by ``Variable.index`` (set by the LP/MILP
    #: backends).  Lets vectorized consumers — branch-and-bound's rounding
    #: heuristic and branching rule — avoid per-variable dict traffic.
    vector: np.ndarray | None = None

    @property
    def is_feasible(self) -> bool:
        return self.status.has_solution

    def value(self, variable: Variable) -> float:
        """Value of a variable in the solution (0.0 when absent)."""
        return self.values.get(variable, 0.0)

    def selected(self, tolerance: float = 0.5) -> tuple[Variable, ...]:
        """Binary variables whose value rounds to 1."""
        return tuple(variable for variable, value in self.values.items()
                     if value >= tolerance)

    def assignment_by_name(self) -> dict[str, float]:
        """Values keyed by variable name (stable across re-solves)."""
        return {variable.name: value for variable, value in self.values.items()}

    def with_status(self, status: SolutionStatus) -> "Solution":
        """Copy of the solution with a different status (used by wrappers)."""
        return Solution(status=status, objective=self.objective,
                        values=dict(self.values), best_bound=self.best_bound,
                        gap=self.gap, solve_seconds=self.solve_seconds,
                        nodes_explored=self.nodes_explored,
                        iterations=self.iterations, gap_trace=self.gap_trace,
                        message=self.message, timed_out=self.timed_out,
                        vector=self.vector)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Solution(status={self.status.value}, objective={self.objective:.4g}, "
                f"gap={self.gap:.4g}, nodes={self.nodes_explored})")
