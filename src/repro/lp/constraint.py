"""Linear constraints."""

from __future__ import annotations

import enum
from typing import Mapping

from repro.lp.expression import LinearExpression
from repro.lp.variable import Variable

__all__ = ["Constraint", "ConstraintSense"]


class ConstraintSense(enum.Enum):
    """Sense of a linear constraint (normalised to ``<=`` or ``==``)."""

    LESS_EQUAL = "<="
    EQUAL = "=="


class Constraint:
    """A linear constraint ``expression (<= | ==) 0``.

    Constraints are stored in the normalised form "expression compared to
    zero"; the original right-hand side is folded into the expression's
    constant.  :meth:`row` exposes the (coefficients, bound) view the solver
    backends need.
    """

    def __init__(self, expression: LinearExpression, sense: ConstraintSense,
                 name: str = ""):
        self.expression = expression
        self.sense = sense
        self.name = name

    def named(self, name: str) -> "Constraint":
        """Return the same constraint carrying a name (fluent helper)."""
        self.name = name
        return self

    # ---------------------------------------------------------------- accessors
    def row(self) -> tuple[dict[Variable, float], float]:
        """The constraint as ``(coefficients, rhs)`` with constant moved right."""
        coefficients = self.expression.terms
        rhs = -self.expression.constant
        return coefficients, rhs

    def variables(self) -> tuple[Variable, ...]:
        return self.expression.variables()

    def is_satisfied(self, values: Mapping[Variable, float],
                     tolerance: float = 1e-6) -> bool:
        """Whether a variable assignment satisfies the constraint."""
        value = self.expression.evaluate(values)
        if self.sense is ConstraintSense.EQUAL:
            return abs(value) <= tolerance
        return value <= tolerance

    def violation(self, values: Mapping[Variable, float]) -> float:
        """Amount by which the assignment violates the constraint (0 if satisfied)."""
        value = self.expression.evaluate(values)
        if self.sense is ConstraintSense.EQUAL:
            return abs(value)
        return max(0.0, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"Constraint({self.expression!r} {self.sense.value} 0{label})"
