"""Linear expressions over decision variables."""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.exceptions import SolverError
from repro.lp.variable import Variable

__all__ = ["LinearExpression"]


class LinearExpression:
    """An affine expression ``sum_i coefficient_i * variable_i + constant``.

    Supports the usual arithmetic (``+``, ``-``, ``*`` by scalars) plus the
    comparison operators ``<=``, ``>=`` and ``==`` which produce
    :class:`~repro.lp.constraint.Constraint` objects.
    """

    __slots__ = ("_terms", "_constant")

    def __init__(self, terms: Mapping[Variable, float] | None = None,
                 constant: float = 0.0):
        self._terms: dict[Variable, float] = dict(terms or {})
        self._constant = float(constant)

    # ---------------------------------------------------------------- factories
    @classmethod
    def sum_of(cls, variables: Iterable[Variable],
               coefficients: Iterable[float] | None = None) -> "LinearExpression":
        """Build ``sum_i coefficient_i * variable_i`` efficiently."""
        variables = list(variables)
        if coefficients is None:
            coefficient_list = [1.0] * len(variables)
        else:
            coefficient_list = [float(c) for c in coefficients]
            if len(coefficient_list) != len(variables):
                raise SolverError("coefficients must match the number of variables")
        terms: dict[Variable, float] = {}
        for variable, coefficient in zip(variables, coefficient_list):
            terms[variable] = terms.get(variable, 0.0) + coefficient
        return cls(terms)

    # ---------------------------------------------------------------- accessors
    @property
    def terms(self) -> dict[Variable, float]:
        return dict(self._terms)

    @property
    def constant(self) -> float:
        return self._constant

    def coefficient(self, variable: Variable) -> float:
        return self._terms.get(variable, 0.0)

    def variables(self) -> tuple[Variable, ...]:
        return tuple(self._terms.keys())

    def is_empty(self) -> bool:
        return not self._terms

    def evaluate(self, values: Mapping[Variable, float]) -> float:
        """Value of the expression under a variable assignment."""
        return self._constant + sum(
            coefficient * values.get(variable, 0.0)
            for variable, coefficient in self._terms.items())

    # --------------------------------------------------------------- arithmetic
    def _coerce(self, other) -> "LinearExpression":
        if isinstance(other, LinearExpression):
            return other
        if isinstance(other, Variable):
            return LinearExpression({other: 1.0})
        if isinstance(other, (int, float)):
            return LinearExpression(constant=float(other))
        raise SolverError(f"Cannot combine a linear expression with {type(other).__name__}")

    def __add__(self, other) -> "LinearExpression":
        other = self._coerce(other)
        terms = dict(self._terms)
        for variable, coefficient in other._terms.items():
            terms[variable] = terms.get(variable, 0.0) + coefficient
        return LinearExpression(terms, self._constant + other._constant)

    def __radd__(self, other) -> "LinearExpression":
        return self.__add__(other)

    def __sub__(self, other) -> "LinearExpression":
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinearExpression":
        return (self * -1.0).__add__(other)

    def __mul__(self, scalar) -> "LinearExpression":
        if not isinstance(scalar, (int, float)):
            raise SolverError("Linear expressions can only be scaled by numbers")
        factor = float(scalar)
        terms = {variable: coefficient * factor
                 for variable, coefficient in self._terms.items()}
        return LinearExpression(terms, self._constant * factor)

    def __rmul__(self, scalar) -> "LinearExpression":
        return self.__mul__(scalar)

    def __neg__(self) -> "LinearExpression":
        return self.__mul__(-1.0)

    # -------------------------------------------------------------- comparisons
    def __le__(self, other):
        from repro.lp.constraint import Constraint, ConstraintSense

        difference = self - self._coerce(other)
        return Constraint(difference, ConstraintSense.LESS_EQUAL)

    def __ge__(self, other):
        from repro.lp.constraint import Constraint, ConstraintSense

        difference = self._coerce(other) - self
        return Constraint(difference, ConstraintSense.LESS_EQUAL)

    def __eq__(self, other):  # type: ignore[override]
        from repro.lp.constraint import Constraint, ConstraintSense

        if isinstance(other, (int, float, Variable, LinearExpression)):
            difference = self - self._coerce(other)
            return Constraint(difference, ConstraintSense.EQUAL)
        return NotImplemented

    __hash__ = None  # expressions are mutable-ish builders, not hashable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{coefficient:+g}*{variable.name}"
                 for variable, coefficient in list(self._terms.items())[:6]]
        if len(self._terms) > 6:
            parts.append("...")
        if self._constant:
            parts.append(f"{self._constant:+g}")
        return "LinearExpression(" + " ".join(parts or ["0"]) + ")"
