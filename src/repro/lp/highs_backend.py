"""scipy/HiGHS backends: LP relaxation and direct MILP solving."""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize

from repro.lp.budget import SolveBudget
from repro.lp.model import Model, ObjectiveSense
from repro.lp.solution import Solution, SolutionStatus
from repro.lp.variable import Variable


__all__ = ["LinearRelaxationBackend", "MilpBackend"]


def _status_from_scipy(status_code: int, success: bool) -> SolutionStatus:
    if success:
        return SolutionStatus.OPTIMAL
    if status_code == 2:
        return SolutionStatus.INFEASIBLE
    if status_code == 3:
        return SolutionStatus.UNBOUNDED
    return SolutionStatus.ERROR


class LinearRelaxationBackend:
    """Solves the LP relaxation of a model with :func:`scipy.optimize.linprog`.

    The branch-and-bound solver calls this repeatedly with per-node variable
    bounds; the matrices are built once by the model and shared across calls.
    """

    def __init__(self, method: str = "highs"):
        self._method = method

    def solve(self, model: Model, bounds_override: np.ndarray | None = None,
              matrices: dict | None = None) -> Solution:
        """Solve the relaxation; ``bounds_override`` replaces variable bounds.

        ``matrices`` lets callers that solve the same model many times with
        different bounds (branch and bound) pass the matrix export once
        instead of re-fetching it on every node.
        """
        if matrices is None:
            matrices = model.to_matrices()
        bounds = matrices["bounds"] if bounds_override is None else bounds_override
        started = time.perf_counter()
        result = optimize.linprog(
            c=matrices["c"],
            A_ub=matrices["A_ub"],
            b_ub=matrices["b_ub"],
            A_eq=matrices["A_eq"],
            b_eq=matrices["b_eq"],
            bounds=bounds,
            method=self._method,
        )
        elapsed = time.perf_counter() - started
        status = _status_from_scipy(result.status, result.success)
        if not status.has_solution:
            return Solution(status=status, solve_seconds=elapsed,
                            message=str(result.message))
        objective = float(result.fun) + matrices["objective_constant"]
        if model.sense is ObjectiveSense.MAXIMIZE:
            objective = -float(result.fun) + matrices["objective_constant"]
        vector = np.asarray(result.x, dtype=np.float64)
        values = self._vector_to_values(model, vector)
        return Solution(status=status, objective=objective, values=values,
                        best_bound=objective, gap=0.0, solve_seconds=elapsed,
                        iterations=int(getattr(result, "nit", 0) or 0),
                        message=str(result.message), vector=vector)

    @staticmethod
    def _vector_to_values(model: Model, vector: np.ndarray) -> dict[Variable, float]:
        return {variable: float(vector[variable.index])
                for variable in model.variables}


class MilpBackend:
    """Solves the integer model directly with :func:`scipy.optimize.milp` (HiGHS).

    Supports the two termination knobs CoPhy relies on: a relative optimality
    gap (early termination at e.g. 5%) and a wall-clock time limit.
    """

    def __init__(self, gap_tolerance: float = 0.0,
                 time_limit_seconds: float | None = None):
        self.gap_tolerance = max(0.0, float(gap_tolerance))
        self.time_limit_seconds = time_limit_seconds

    def solve(self, model: Model, gap_tolerance: float | None = None,
              time_limit_seconds: float | None = None,
              budget: "SolveBudget | None" = None) -> Solution:
        matrices = model.to_matrices()
        constraints = []
        if matrices["A_ub"] is not None:
            constraints.append(optimize.LinearConstraint(
                matrices["A_ub"], -np.inf, matrices["b_ub"]))
        if matrices["A_eq"] is not None:
            constraints.append(optimize.LinearConstraint(
                matrices["A_eq"], matrices["b_eq"], matrices["b_eq"]))
        bounds = optimize.Bounds(matrices["bounds"][:, 0], matrices["bounds"][:, 1])
        options: dict[str, float] = {}
        effective_gap = self.gap_tolerance if gap_tolerance is None else gap_tolerance
        if effective_gap > 0:
            options["mip_rel_gap"] = effective_gap
        effective_time = (self.time_limit_seconds if time_limit_seconds is None
                          else time_limit_seconds)
        if budget is not None:
            budget.start()
            effective_time = budget.clamp_time_limit(effective_time)
            if budget.gap_limit is not None:
                effective_gap = max(effective_gap, budget.gap_limit)
                options["mip_rel_gap"] = effective_gap
        if effective_time is not None:
            options["time_limit"] = float(effective_time)

        started = time.perf_counter()
        result = optimize.milp(
            c=matrices["c"],
            constraints=constraints or None,
            integrality=matrices["integrality"],
            bounds=bounds,
            options=options or None,
        )
        elapsed = time.perf_counter() - started

        if result.x is None:
            status = (SolutionStatus.INFEASIBLE if result.status == 2
                      else SolutionStatus.ERROR)
            return Solution(status=status, solve_seconds=elapsed,
                            message=str(result.message))
        objective = float(result.fun) + matrices["objective_constant"]
        if model.sense is ObjectiveSense.MAXIMIZE:
            objective = -float(result.fun) + matrices["objective_constant"]
        vector = np.asarray(result.x, dtype=np.float64).copy()
        # Snap binaries to exact integers for downstream consumers.
        binary = matrices["integrality"].astype(bool)
        vector[binary] = np.round(vector[binary])
        values = {variable: float(vector[variable.index])
                  for variable in model.variables}
        gap = float(getattr(result, "mip_gap", 0.0) or 0.0)
        bound = float(getattr(result, "mip_dual_bound", objective) or objective)
        status = (SolutionStatus.OPTIMAL if result.status == 0
                  else SolutionStatus.FEASIBLE)
        # HiGHS status 1 = iteration / time limit reached with an incumbent;
        # treat it as timed out only when a wall-clock limit was in force.
        timed_out = (result.status == 1 and effective_time is not None)
        return Solution(status=status, objective=objective, values=values,
                        best_bound=bound, gap=gap, solve_seconds=elapsed,
                        nodes_explored=int(getattr(result, "mip_node_count", 0) or 0),
                        message=str(result.message), timed_out=timed_out,
                        vector=vector)
