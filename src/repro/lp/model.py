"""The optimization model: variables, constraints, objective and matrix export."""

from __future__ import annotations

import enum
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import SolverError
from repro.lp.constraint import Constraint, ConstraintSense
from repro.lp.expression import LinearExpression
from repro.lp.variable import Variable, VariableKind

__all__ = ["Model", "ObjectiveSense"]


class ObjectiveSense(enum.Enum):
    """Direction of optimization (index tuning always minimises cost)."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


class Model:
    """A linear / binary-integer optimization model.

    The model owns its variables (created through :meth:`add_binary` /
    :meth:`add_continuous`), collects constraints and an objective, and can
    export the standard matrix form consumed by the scipy backends:
    inequality rows ``A_ub x <= b_ub``, equality rows ``A_eq x == b_eq``, a
    cost vector ``c`` and variable bounds.
    """

    def __init__(self, name: str = "model",
                 sense: ObjectiveSense = ObjectiveSense.MINIMIZE):
        self.name = name
        self.sense = sense
        self._variables: list[Variable] = []
        self._constraints: list[Constraint] = []
        self._objective = LinearExpression()
        self._matrix_cache: dict | None = None

    # ---------------------------------------------------------------- variables
    def add_binary(self, name: str) -> Variable:
        """Add a binary decision variable."""
        variable = Variable(name=name, index=len(self._variables),
                            kind=VariableKind.BINARY,
                            lower_bound=0.0, upper_bound=1.0)
        self._variables.append(variable)
        self._matrix_cache = None
        return variable

    def add_continuous(self, name: str, lower_bound: float = 0.0,
                       upper_bound: float = float("inf")) -> Variable:
        """Add a continuous decision variable."""
        if upper_bound < lower_bound:
            raise SolverError(f"Variable {name!r} has empty bounds")
        variable = Variable(name=name, index=len(self._variables),
                            kind=VariableKind.CONTINUOUS,
                            lower_bound=lower_bound, upper_bound=upper_bound)
        self._variables.append(variable)
        self._matrix_cache = None
        return variable

    @property
    def variables(self) -> tuple[Variable, ...]:
        return tuple(self._variables)

    @property
    def variable_count(self) -> int:
        return len(self._variables)

    def binary_variables(self) -> tuple[Variable, ...]:
        return tuple(v for v in self._variables if v.kind is VariableKind.BINARY)

    # -------------------------------------------------------------- constraints
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint built with the expression comparison operators."""
        if not isinstance(constraint, Constraint):
            raise SolverError(
                "add_constraint expects a Constraint (did you compare an "
                "expression with <=, >= or ==?)")
        if name:
            constraint.name = name
        self._owns_variables(constraint.variables())
        self._constraints.append(constraint)
        self._matrix_cache = None
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        for constraint in constraints:
            self.add_constraint(constraint)

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(self._constraints)

    @property
    def constraint_count(self) -> int:
        return len(self._constraints)

    # ---------------------------------------------------------------- objective
    def set_objective(self, expression: LinearExpression | Variable,
                      sense: ObjectiveSense | None = None) -> None:
        if isinstance(expression, Variable):
            expression = LinearExpression({expression: 1.0})
        if not isinstance(expression, LinearExpression):
            raise SolverError("Objective must be a linear expression")
        self._owns_variables(expression.variables())
        self._objective = expression
        if sense is not None:
            self.sense = sense
        self._matrix_cache = None

    @property
    def objective(self) -> LinearExpression:
        return self._objective

    def objective_value(self, values: Mapping[Variable, float]) -> float:
        return self._objective.evaluate(values)

    def remove_constraints(self, constraints: Iterable[Constraint]) -> int:
        """Remove previously added constraints (compared by identity).

        Returns the number of constraints actually removed.  Used by CoPhy to
        roll back per-solve constraint merges so the same BIP can be re-used
        across tuning sessions.
        """
        to_remove = {id(constraint) for constraint in constraints}
        if not to_remove:
            return 0
        before = len(self._constraints)
        self._constraints = [c for c in self._constraints if id(c) not in to_remove]
        removed = before - len(self._constraints)
        if removed:
            self._matrix_cache = None
        return removed

    def invalidate_cache(self) -> None:
        """Drop the cached matrix export after in-place constraint edits.

        Callers that mutate a constraint's expression directly (e.g. CoPhy's
        incremental BIP extension) must invalidate the cache so the next
        export reflects the edit.
        """
        self._matrix_cache = None

    # ------------------------------------------------------------------- export
    def to_matrices(self) -> dict:
        """Export the model in the matrix form used by the scipy backends.

        Returns a dict with keys ``c`` (cost vector, already negated for
        maximisation), ``A_ub``/``b_ub``, ``A_eq``/``b_eq`` (sparse CSR
        matrices, or ``None`` when there are no rows of that kind),
        ``bounds`` (an ``n x 2`` array of lower/upper bounds),
        ``integrality`` (1 for binary columns, 0 otherwise) and
        ``objective_constant``.
        """
        if self._matrix_cache is not None:
            return self._matrix_cache
        variable_count = len(self._variables)
        cost = np.zeros(variable_count)
        for variable, coefficient in self._objective.terms.items():
            cost[variable.index] = coefficient
        if self.sense is ObjectiveSense.MAXIMIZE:
            cost = -cost

        ub_rows: list[tuple[dict[Variable, float], float]] = []
        eq_rows: list[tuple[dict[Variable, float], float]] = []
        for constraint in self._constraints:
            row = constraint.row()
            if constraint.sense is ConstraintSense.EQUAL:
                eq_rows.append(row)
            else:
                ub_rows.append(row)

        bounds = np.zeros((variable_count, 2))
        for variable in self._variables:
            bounds[variable.index, 0] = variable.lower_bound
            bounds[variable.index, 1] = variable.upper_bound
        integrality = np.array(
            [1 if v.kind is VariableKind.BINARY else 0 for v in self._variables],
            dtype=np.int8)

        matrices = {
            "c": cost,
            "A_ub": self._build_sparse(ub_rows, variable_count),
            "b_ub": np.array([rhs for _, rhs in ub_rows]) if ub_rows else None,
            "A_eq": self._build_sparse(eq_rows, variable_count),
            "b_eq": np.array([rhs for _, rhs in eq_rows]) if eq_rows else None,
            "bounds": bounds,
            "integrality": integrality,
            "objective_constant": self._objective.constant,
        }
        self._matrix_cache = matrices
        return matrices

    @staticmethod
    def _build_sparse(rows: Sequence[tuple[dict[Variable, float], float]],
                      variable_count: int):
        if not rows:
            return None
        data: list[float] = []
        row_indices: list[int] = []
        column_indices: list[int] = []
        for row_number, (coefficients, _) in enumerate(rows):
            for variable, coefficient in coefficients.items():
                if coefficient == 0.0:
                    continue
                data.append(coefficient)
                row_indices.append(row_number)
                column_indices.append(variable.index)
        return sparse.csr_matrix(
            (data, (row_indices, column_indices)),
            shape=(len(rows), variable_count))

    # ----------------------------------------------------------------- checking
    def is_feasible_assignment(self, values: Mapping[Variable, float],
                               tolerance: float = 1e-6) -> bool:
        """Whether an assignment satisfies all constraints and variable bounds."""
        for variable in self._variables:
            value = values.get(variable, 0.0)
            if value < variable.lower_bound - tolerance:
                return False
            if value > variable.upper_bound + tolerance:
                return False
            if variable.kind is VariableKind.BINARY:
                if min(abs(value), abs(value - 1.0)) > tolerance:
                    return False
        return all(constraint.is_satisfied(values, tolerance)
                   for constraint in self._constraints)

    def violated_constraints(self, values: Mapping[Variable, float],
                             tolerance: float = 1e-6) -> tuple[Constraint, ...]:
        return tuple(constraint for constraint in self._constraints
                     if not constraint.is_satisfied(values, tolerance))

    def _owns_variables(self, variables: Iterable[Variable]) -> None:
        for variable in variables:
            if (variable.index >= len(self._variables)
                    or self._variables[variable.index] is not variable):
                raise SolverError(
                    f"Variable {variable.name!r} does not belong to model {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Model(name={self.name!r}, variables={len(self._variables)}, "
                f"constraints={len(self._constraints)})")
