"""Exception hierarchy shared across the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish library failures from programming errors, mirroring
how CoPhy reports infeasible tuning problems back to the DBA.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CatalogError(ReproError):
    """Raised for schema / statistics inconsistencies (unknown tables, columns)."""


class WorkloadError(ReproError):
    """Raised for malformed queries or workloads."""


class ParseError(WorkloadError):
    """Raised when the SQL-subset parser cannot understand a statement."""


class IndexDefinitionError(ReproError):
    """Raised when an index definition is invalid (empty key, cross-table columns)."""


class OptimizerError(ReproError):
    """Raised when the what-if optimizer cannot produce a plan for a query."""


class SolverError(ReproError):
    """Raised when the LP / BIP machinery fails (unbounded model, bad variable use)."""


class BuildInterrupted(SolverError):
    """Raised when an anytime deadline fires while a BIP is still being built.

    A partially built model is unusable (statements without their assignment
    rows would be costed as free), so the builder aborts instead of returning
    one; budget-aware callers catch this and fall back to their incumbent.
    """


class InfeasibleProblemError(SolverError):
    """Raised when the hard constraints of a tuning problem cannot all be satisfied.

    CoPhy surfaces this to the DBA (Figure 3, line 2 of the Solver pseudo-code)
    so that offending constraints can be removed or converted to soft constraints.
    """

    def __init__(self, message: str = "Tuning problem is infeasible",
                 violated_constraints: tuple[str, ...] = ()):
        super().__init__(message)
        self.violated_constraints = tuple(violated_constraints)


class ConstraintError(ReproError):
    """Raised when a DBA constraint cannot be translated to linear form."""


class ServerOverloaded(ReproError):
    """Raised when admission control rejects a request (queue full).

    Maps to HTTP 429 with a ``Retry-After`` header on the wire;
    ``retry_after_s`` is the server's backoff hint, which
    :class:`~repro.reliability.retry.RetryPolicy` honors as a delay floor.
    """

    def __init__(self, message: str = "Tuning service is overloaded",
                 retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s
