"""Structural query model: SELECT and UPDATE statements.

Statements are modelled the way the index advisors consume them:

* which tables are referenced,
* which per-table selection predicates exist (and whether they are sargable),
* which equi-join predicates connect the tables,
* which columns are projected / aggregated / grouped / ordered, and
* for UPDATE statements, which columns are written.

Following the paper (section 2), an UPDATE statement ``q`` is split into a
*query shell* ``q_r`` — a SELECT that locates the affected tuples — and an
*update shell* ``q_u`` whose cost is the base-table update plus an independent
maintenance cost ``ucost(a, q)`` per affected index ``a``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterable


from repro.catalog.schema import Schema
from repro.exceptions import WorkloadError
from repro.workload.predicates import (
    ColumnRef,
    JoinPredicate,
    SimplePredicate,
)

__all__ = ["StatementKind", "AggregateFunction", "Query", "SelectQuery",
           "UpdateQuery"]

_query_counter = itertools.count(1)


class StatementKind(enum.Enum):
    """Kind of workload statement."""

    SELECT = "select"
    UPDATE = "update"


class AggregateFunction(enum.Enum):
    """Aggregate functions appearing in SELECT lists."""

    SUM = "sum"
    COUNT = "count"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class Aggregate:
    """An aggregate expression such as ``sum(l_extendedprice)``."""

    function: AggregateFunction
    column: ColumnRef | None = None  # None encodes COUNT(*)

    def __str__(self) -> str:
        target = "*" if self.column is None else str(self.column)
        return f"{self.function.value}({target})"


class Query:
    """Common behaviour of SELECT queries and UPDATE query shells.

    Args:
        tables: Tables referenced by the statement (each at most once).
        projections: Plain projected columns.
        predicates: Per-table selection predicates.
        joins: Equi-join predicates between referenced tables.
        group_by: GROUP BY columns.
        order_by: ORDER BY columns.
        aggregates: Aggregate expressions in the SELECT list.
        name: Optional human-readable name (template id + instance number).
    """

    kind: StatementKind = StatementKind.SELECT

    def __init__(self, tables: Iterable[str],
                 projections: Iterable[ColumnRef] = (),
                 predicates: Iterable[SimplePredicate] = (),
                 joins: Iterable[JoinPredicate] = (),
                 group_by: Iterable[ColumnRef] = (),
                 order_by: Iterable[ColumnRef] = (),
                 aggregates: Iterable[Aggregate] = (),
                 name: str | None = None):
        self.tables = tuple(dict.fromkeys(tables))
        if not self.tables:
            raise WorkloadError("A query must reference at least one table")
        self.projections = tuple(projections)
        self.predicates = tuple(predicates)
        self.joins = tuple(joins)
        self.group_by = tuple(group_by)
        self.order_by = tuple(order_by)
        self.aggregates = tuple(aggregates)
        self.name = name or f"q{next(_query_counter)}"
        self._validate()

    # ------------------------------------------------------------------ checks
    def _validate(self) -> None:
        table_set = set(self.tables)
        for predicate in self.predicates:
            if predicate.table not in table_set:
                raise WorkloadError(
                    f"Predicate {predicate} references table {predicate.table!r} "
                    f"which is not in the FROM list of {self.name}")
        for join in self.joins:
            for joined_table in join.tables:
                if joined_table not in table_set:
                    raise WorkloadError(
                        f"Join {join} references table {joined_table!r} "
                        f"which is not in the FROM list of {self.name}")
        for column in (*self.projections, *self.group_by, *self.order_by):
            if column.table not in table_set:
                raise WorkloadError(
                    f"Column {column} is not available in query {self.name}")
        for aggregate in self.aggregates:
            if aggregate.column is not None and aggregate.column.table not in table_set:
                raise WorkloadError(
                    f"Aggregate {aggregate} is not available in query {self.name}")

    def validate_against(self, schema: Schema) -> None:
        """Check every table/column reference against the catalog."""
        for table_name in self.tables:
            schema.table(table_name)
        for column in self.referenced_columns():
            schema.resolve_column(column.table, column.column)

    # --------------------------------------------------------------- accessors
    def references(self, table: str) -> bool:
        return table in self.tables

    def predicates_on(self, table: str) -> tuple[SimplePredicate, ...]:
        return tuple(p for p in self.predicates if p.table == table)

    def sargable_predicates_on(self, table: str) -> tuple[SimplePredicate, ...]:
        return tuple(p for p in self.predicates_on(table) if p.is_sargable)

    def joins_on(self, table: str) -> tuple[JoinPredicate, ...]:
        return tuple(j for j in self.joins if j.references(table))

    def join_columns_on(self, table: str) -> tuple[ColumnRef, ...]:
        columns = [j.column_for(table) for j in self.joins_on(table)]
        return tuple(dict.fromkeys(columns))

    def group_by_on(self, table: str) -> tuple[ColumnRef, ...]:
        return tuple(c for c in self.group_by if c.table == table)

    def order_by_on(self, table: str) -> tuple[ColumnRef, ...]:
        return tuple(c for c in self.order_by if c.table == table)

    def output_columns(self) -> tuple[ColumnRef, ...]:
        """Columns that must be produced by the plan (projection + aggregation)."""
        columns = list(self.projections)
        columns.extend(a.column for a in self.aggregates if a.column is not None)
        columns.extend(self.group_by)
        return tuple(dict.fromkeys(columns))

    def output_columns_on(self, table: str) -> tuple[ColumnRef, ...]:
        return tuple(c for c in self.output_columns() if c.table == table)

    def referenced_columns(self) -> tuple[ColumnRef, ...]:
        """Every column mentioned anywhere in the statement."""
        columns: list[ColumnRef] = []
        columns.extend(self.projections)
        columns.extend(p.column for p in self.predicates)
        for join in self.joins:
            columns.append(join.left)
            columns.append(join.right)
        columns.extend(self.group_by)
        columns.extend(self.order_by)
        columns.extend(a.column for a in self.aggregates if a.column is not None)
        return tuple(dict.fromkeys(columns))

    def referenced_columns_on(self, table: str) -> tuple[ColumnRef, ...]:
        return tuple(c for c in self.referenced_columns() if c.table == table)

    def interesting_order_columns(self, table: str) -> tuple[ColumnRef, ...]:
        """Columns of ``table`` whose sort order the plan could exploit.

        Interesting orders come from join columns (merge joins), GROUP BY
        (sort- or stream-aggregation) and ORDER BY clauses.  These are exactly
        the orders INUM enumerates when building template plans.
        """
        columns: list[ColumnRef] = []
        columns.extend(self.join_columns_on(table))
        columns.extend(self.group_by_on(table))
        columns.extend(self.order_by_on(table))
        return tuple(dict.fromkeys(columns))

    @property
    def is_update(self) -> bool:
        return self.kind is StatementKind.UPDATE

    def with_name(self, name: str) -> "Query":
        """A structural clone of this statement under a different name.

        The clone shares every (immutable) structural component, so its
        structural signature and statement digest are identical to the
        original's — which is exactly what the service's auto-namespacing
        needs: renaming a statement must never change how it is costed.
        """
        return type(self)(
            tables=self.tables,
            projections=self.projections,
            predicates=self.predicates,
            joins=self.joins,
            group_by=self.group_by,
            order_by=self.order_by,
            aggregates=self.aggregates,
            name=name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(name={self.name!r}, tables={self.tables}, "
                f"predicates={len(self.predicates)}, joins={len(self.joins)})")


class SelectQuery(Query):
    """A SELECT statement."""

    kind = StatementKind.SELECT


class UpdateQuery(Query):
    """An UPDATE statement on a single table.

    Args:
        table: The updated table.
        set_columns: Columns written by the SET clause.
        predicates: WHERE-clause predicates selecting the affected rows.
        name: Optional statement name.
        update_fraction: Optional explicit fraction of rows updated; when not
            given the optimizer derives it from the predicates.
    """

    kind = StatementKind.UPDATE

    def __init__(self, table: str, set_columns: Iterable[ColumnRef],
                 predicates: Iterable[SimplePredicate] = (),
                 name: str | None = None,
                 update_fraction: float | None = None):
        self.set_columns = tuple(set_columns)
        if not self.set_columns:
            raise WorkloadError("UPDATE statement needs at least one SET column")
        for column in self.set_columns:
            if column.table != table:
                raise WorkloadError(
                    f"SET column {column} does not belong to updated table {table!r}")
        if update_fraction is not None and not 0.0 < update_fraction <= 1.0:
            raise WorkloadError("update_fraction must lie in (0, 1]")
        self.update_fraction = update_fraction
        super().__init__(tables=(table,), predicates=predicates, name=name)

    @property
    def table(self) -> str:
        return self.tables[0]

    def query_shell(self) -> SelectQuery:
        """The SELECT that locates the tuples to be updated (``q_r`` in the paper)."""
        return SelectQuery(
            tables=(self.table,),
            projections=self.referenced_columns_on(self.table),
            predicates=self.predicates,
            name=f"{self.name}__shell",
        )

    def with_name(self, name: str) -> "UpdateQuery":
        return type(self)(self.table, self.set_columns,
                          predicates=self.predicates, name=name,
                          update_fraction=self.update_fraction)

    def writes_column(self, column: ColumnRef) -> bool:
        return column in self.set_columns
