"""Workload container: weighted statements, SELECT/UPDATE partitions, summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.catalog.schema import Schema
from repro.exceptions import WorkloadError
from repro.workload.query import Query, StatementKind



__all__ = ["WorkloadStatement", "Workload"]


@dataclass(frozen=True)
class WorkloadStatement:
    """A statement with its weight ``f_q`` (frequency or DBA importance)."""

    query: Query
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError("Statement weight must be positive")


class Workload:
    """A weighted collection of SELECT and UPDATE statements.

    The paper writes ``W_r`` for SELECT statements plus the query shells of
    updates and ``W_u`` for the update statements; both views are exposed
    here (:meth:`select_statements` and :meth:`update_statements`).
    """

    def __init__(self, statements: Iterable[WorkloadStatement | Query],
                 name: str = "workload"):
        self.name = name
        normalised: list[WorkloadStatement] = []
        for statement in statements:
            if isinstance(statement, WorkloadStatement):
                normalised.append(statement)
            elif isinstance(statement, Query):
                normalised.append(WorkloadStatement(statement))
            else:
                raise WorkloadError(
                    f"Workload entries must be queries, got {type(statement).__name__}")
        if not normalised:
            raise WorkloadError("A workload must contain at least one statement")
        self._statements = tuple(normalised)

    # ---------------------------------------------------------------- accessors
    @property
    def statements(self) -> tuple[WorkloadStatement, ...]:
        return self._statements

    def __len__(self) -> int:
        return len(self._statements)

    def __iter__(self) -> Iterator[WorkloadStatement]:
        return iter(self._statements)

    def queries(self) -> tuple[Query, ...]:
        return tuple(s.query for s in self._statements)

    def weight_of(self, query: Query) -> float:
        for statement in self._statements:
            if statement.query is query:
                return statement.weight
        raise WorkloadError(f"Query {query.name!r} is not part of workload {self.name!r}")

    def select_statements(self) -> tuple[WorkloadStatement, ...]:
        """SELECT statements (``W_r`` minus the update query shells)."""
        return tuple(s for s in self._statements
                     if s.query.kind is StatementKind.SELECT)

    def update_statements(self) -> tuple[WorkloadStatement, ...]:
        """UPDATE statements (``W_u``)."""
        return tuple(s for s in self._statements
                     if s.query.kind is StatementKind.UPDATE)

    def referenced_tables(self) -> tuple[str, ...]:
        tables: list[str] = []
        for statement in self._statements:
            tables.extend(statement.query.tables)
        return tuple(dict.fromkeys(tables))

    def total_weight(self) -> float:
        return sum(s.weight for s in self._statements)

    def validate_against(self, schema: Schema) -> None:
        """Validate every statement against the catalog."""
        for statement in self._statements:
            statement.query.validate_against(schema)

    # ------------------------------------------------------------ manipulation
    def subset(self, size: int, name: str | None = None) -> "Workload":
        """The first ``size`` statements as a new workload (used for scaling runs)."""
        if size <= 0:
            raise WorkloadError("Workload subset size must be positive")
        selected = self._statements[:size]
        return Workload(selected, name=name or f"{self.name}[:{size}]")

    def extended(self, statements: Sequence[WorkloadStatement | Query],
                 name: str | None = None) -> "Workload":
        """A new workload with extra statements appended (interactive tuning deltas)."""
        return Workload([*self._statements, *statements],
                        name=name or f"{self.name}+{len(statements)}")

    def distinct_template_count(self) -> int:
        """Number of distinct statement shapes, keyed by template name prefix.

        Workload generators name statements ``<template>#<n>``; statements
        without the separator count as their own template.  Tool-B-style
        workload compression keys its sampling on this notion of template.
        """
        templates = {s.query.name.split("#", 1)[0] for s in self._statements}
        return len(templates)

    def summary(self) -> dict[str, float | int]:
        """Small summary dictionary used by the benchmark reports."""
        return {
            "statements": len(self._statements),
            "selects": len(self.select_statements()),
            "updates": len(self.update_statements()),
            "tables": len(self.referenced_tables()),
            "templates": self.distinct_template_count(),
            "total_weight": self.total_weight(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workload(name={self.name!r}, statements={len(self._statements)})"
