"""Workload generators reproducing the paper's ``W_hom`` and ``W_het`` workloads.

* :class:`HomogeneousWorkloadGenerator` — random instantiations of the fifteen
  TPC-H templates (``W_hom``): few distinct query shapes, which is the regime
  where workload-compression-based advisors (Tool-B) do well.
* :class:`HeterogeneousWorkloadGenerator` — randomly structured SPJ queries
  with group-by and aggregation in the spirit of the online index-selection
  benchmark's C2 suite (``W_het``): many distinct shapes, which defeats
  compression by sampling.

Both generators are deterministic given a seed, mix in UPDATE statements at a
configurable rate and attach per-statement weights.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.catalog.schema import Schema
from repro.catalog.tpch import tpch_schema
from repro.exceptions import WorkloadError
from repro.workload.predicates import ColumnRef, ComparisonOperator, JoinPredicate, SimplePredicate
from repro.workload.query import Aggregate, AggregateFunction, SelectQuery, UpdateQuery

from repro.workload.templates_tpch import (
    SELECT_TEMPLATES,
    UPDATE_TEMPLATES,
    instantiate_template,
)
from repro.workload.workload import Workload, WorkloadStatement

__all__ = [
    "HomogeneousWorkloadGenerator",
    "HeterogeneousWorkloadGenerator",
    "generate_homogeneous_workload",
    "generate_heterogeneous_workload",
]

#: Equi-join edges of the TPC-H schema used to build random join paths.
_TPCH_JOIN_GRAPH: tuple[tuple[str, str, str, str], ...] = (
    ("customer", "c_custkey", "orders", "o_custkey"),
    ("orders", "o_orderkey", "lineitem", "l_orderkey"),
    ("lineitem", "l_partkey", "part", "p_partkey"),
    ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
    ("partsupp", "ps_partkey", "part", "p_partkey"),
    ("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
    ("customer", "c_nationkey", "nation", "n_nationkey"),
    ("supplier", "s_nationkey", "nation", "n_nationkey"),
    ("nation", "n_regionkey", "region", "r_regionkey"),
)

#: Columns preferred for filters / projections in the heterogeneous generator.
_FILTERABLE_COLUMNS: dict[str, tuple[str, ...]] = {
    "lineitem": ("l_shipdate", "l_receiptdate", "l_commitdate", "l_quantity",
                 "l_discount", "l_extendedprice", "l_returnflag", "l_shipmode",
                 "l_linestatus", "l_tax"),
    "orders": ("o_orderdate", "o_totalprice", "o_orderpriority", "o_orderstatus",
               "o_clerk", "o_shippriority"),
    "customer": ("c_acctbal", "c_mktsegment", "c_nationkey", "c_phone"),
    "part": ("p_size", "p_brand", "p_type", "p_container", "p_retailprice",
             "p_mfgr"),
    "partsupp": ("ps_availqty", "ps_supplycost"),
    "supplier": ("s_acctbal", "s_nationkey", "s_phone"),
    "nation": ("n_nationkey", "n_regionkey", "n_name"),
    "region": ("r_regionkey", "r_name"),
}

_UPDATABLE_COLUMNS: dict[str, tuple[str, ...]] = {
    "lineitem": ("l_discount", "l_tax", "l_quantity"),
    "orders": ("o_orderstatus", "o_totalprice"),
    "customer": ("c_acctbal",),
    "partsupp": ("ps_availqty", "ps_supplycost"),
    "supplier": ("s_acctbal",),
    "part": ("p_retailprice",),
}


class HomogeneousWorkloadGenerator:
    """Generates ``W_hom``-style workloads from the fifteen TPC-H templates.

    Args:
        seed: Random seed; the same seed always produces the same workload.
        update_fraction: Fraction of statements drawn from the update templates.
        templates: Optional subset of template ids to draw from.
    """

    def __init__(self, seed: int = 0, update_fraction: float = 0.1,
                 templates: Sequence[str] | None = None):
        if not 0.0 <= update_fraction <= 1.0:
            raise WorkloadError("update_fraction must lie in [0, 1]")
        self._seed = seed
        self._update_fraction = update_fraction
        self._templates = tuple(templates or SELECT_TEMPLATES.keys())
        unknown = [t for t in self._templates if t not in SELECT_TEMPLATES]
        if unknown:
            raise WorkloadError(f"Unknown templates: {unknown}")

    def generate(self, size: int, name: str | None = None) -> Workload:
        """Generate a workload with ``size`` statements."""
        if size <= 0:
            raise WorkloadError("Workload size must be positive")
        rng = random.Random(self._seed)
        update_templates = tuple(UPDATE_TEMPLATES.keys())
        statements: list[WorkloadStatement] = []
        for position in range(size):
            draw_update = (self._update_fraction > 0
                           and rng.random() < self._update_fraction)
            if draw_update:
                template_id = rng.choice(update_templates)
            else:
                template_id = rng.choice(self._templates)
            query = instantiate_template(template_id, rng, position + 1)
            weight = float(rng.randint(1, 4))
            statements.append(WorkloadStatement(query, weight))
        return Workload(statements, name=name or f"W_hom_{size}")


class HeterogeneousWorkloadGenerator:
    """Generates ``W_het``-style workloads of random SPJ + aggregation queries.

    Every generated query has its own structural signature (random join path,
    random filter columns, random group-by), so the number of distinct
    "templates" grows with the workload — the regime in which the paper shows
    workload compression by sampling breaks down (Figure 9).

    Args:
        schema: Catalog to draw tables/columns from (defaults to TPC-H).
        seed: Random seed.
        update_fraction: Fraction of UPDATE statements.
        max_tables: Maximum number of joined tables per query.
    """

    def __init__(self, schema: Schema | None = None, seed: int = 0,
                 update_fraction: float = 0.1, max_tables: int = 4):
        if not 0.0 <= update_fraction <= 1.0:
            raise WorkloadError("update_fraction must lie in [0, 1]")
        if max_tables < 1:
            raise WorkloadError("max_tables must be at least 1")
        self._schema = schema or tpch_schema()
        self._seed = seed
        self._update_fraction = update_fraction
        self._max_tables = max_tables

    # ------------------------------------------------------------------- public
    def generate(self, size: int, name: str | None = None) -> Workload:
        """Generate a workload with ``size`` statements."""
        if size <= 0:
            raise WorkloadError("Workload size must be positive")
        rng = random.Random(self._seed)
        statements: list[WorkloadStatement] = []
        for position in range(size):
            if self._update_fraction > 0 and rng.random() < self._update_fraction:
                query = self._random_update(rng, position + 1)
            else:
                query = self._random_select(rng, position + 1)
            weight = float(rng.randint(1, 4))
            statements.append(WorkloadStatement(query, weight))
        return Workload(statements, name=name or f"W_het_{size}")

    # ------------------------------------------------------------------ helpers
    def _random_select(self, rng: random.Random, instance: int) -> SelectQuery:
        tables, joins = self._random_join_path(rng)
        predicates = self._random_filters(rng, tables)
        group_by, order_by, aggregates, projections = self._random_shape(rng, tables)
        signature = "-".join(sorted(tables))
        return SelectQuery(
            tables=tables,
            projections=projections,
            predicates=predicates,
            joins=joins,
            group_by=group_by,
            order_by=order_by,
            aggregates=aggregates,
            name=f"C2_{signature}_{instance}#1",
        )

    def _random_update(self, rng: random.Random, instance: int) -> UpdateQuery:
        table = rng.choice([t for t in _UPDATABLE_COLUMNS if t in self._schema])
        set_column = rng.choice(_UPDATABLE_COLUMNS[table])
        filter_column = rng.choice(_FILTERABLE_COLUMNS[table])
        predicate = SimplePredicate(
            ColumnRef(table, filter_column), ComparisonOperator.LE,
            rng.uniform(1, 1000), selectivity_hint=rng.uniform(0.002, 0.02))
        return UpdateQuery(
            table=table,
            set_columns=(ColumnRef(table, set_column),),
            predicates=(predicate,),
            name=f"C2U_{table}_{instance}#1",
        )

    def _random_join_path(self, rng: random.Random) -> tuple[tuple[str, ...],
                                                             tuple[JoinPredicate, ...]]:
        edges = [e for e in _TPCH_JOIN_GRAPH
                 if e[0] in self._schema and e[2] in self._schema]
        if not edges:
            table = rng.choice(self._schema.table_names)
            return (table,), ()
        first = rng.choice(edges)
        tables: list[str] = [first[0], first[2]]
        joins: list[JoinPredicate] = [JoinPredicate(ColumnRef(first[0], first[1]),
                                                    ColumnRef(first[2], first[3]))]
        target_size = rng.randint(1, self._max_tables)
        if target_size == 1:
            table = rng.choice([first[0], first[2]])
            return (table,), ()
        while len(tables) < target_size:
            extensions = [e for e in edges
                          if (e[0] in tables) != (e[2] in tables)]
            if not extensions:
                break
            edge = rng.choice(extensions)
            joins.append(JoinPredicate(ColumnRef(edge[0], edge[1]),
                                       ColumnRef(edge[2], edge[3])))
            new_table = edge[2] if edge[0] in tables else edge[0]
            tables.append(new_table)
        return tuple(tables), tuple(joins)

    def _random_filters(self, rng: random.Random,
                        tables: tuple[str, ...]) -> tuple[SimplePredicate, ...]:
        predicates: list[SimplePredicate] = []
        for table in tables:
            candidates = [c for c in _FILTERABLE_COLUMNS.get(table, ())
                          if self._schema.has_column(table, c)]
            if not candidates:
                continue
            filter_count = rng.randint(0, min(2, len(candidates)))
            for column in rng.sample(candidates, filter_count):
                selectivity = rng.uniform(0.01, 0.4)
                if rng.random() < 0.5:
                    predicate = SimplePredicate(
                        ColumnRef(table, column), ComparisonOperator.EQ,
                        rng.randint(0, 100), selectivity_hint=selectivity)
                else:
                    low = rng.uniform(0, 1000)
                    predicate = SimplePredicate(
                        ColumnRef(table, column), ComparisonOperator.BETWEEN,
                        (low, low + rng.uniform(1, 500)),
                        selectivity_hint=selectivity)
                predicates.append(predicate)
        return tuple(predicates)

    def _random_shape(self, rng: random.Random, tables: tuple[str, ...]):
        group_by: list[ColumnRef] = []
        order_by: list[ColumnRef] = []
        aggregates: list[Aggregate] = []
        projections: list[ColumnRef] = []
        anchor_table = rng.choice(tables)
        anchor_columns = [c for c in _FILTERABLE_COLUMNS.get(anchor_table, ())
                          if self._schema.has_column(anchor_table, c)]
        if anchor_columns and rng.random() < 0.7:
            group_column = ColumnRef(anchor_table, rng.choice(anchor_columns))
            group_by.append(group_column)
            aggregates.append(Aggregate(AggregateFunction.COUNT, None))
            if rng.random() < 0.5:
                order_by.append(group_column)
        else:
            project_table = rng.choice(tables)
            project_columns = [c for c in _FILTERABLE_COLUMNS.get(project_table, ())
                               if self._schema.has_column(project_table, c)]
            for column in rng.sample(project_columns,
                                     min(len(project_columns), rng.randint(1, 3))):
                projections.append(ColumnRef(project_table, column))
            if projections and rng.random() < 0.4:
                order_by.append(projections[0])
        if rng.random() < 0.5 and anchor_columns:
            aggregates.append(Aggregate(AggregateFunction.SUM,
                                        ColumnRef(anchor_table,
                                                  rng.choice(anchor_columns))))
        return tuple(group_by), tuple(order_by), tuple(aggregates), tuple(projections)


def generate_homogeneous_workload(size: int, seed: int = 0,
                                  update_fraction: float = 0.1,
                                  name: str | None = None) -> Workload:
    """Convenience wrapper: ``W_hom`` workload of ``size`` statements."""
    generator = HomogeneousWorkloadGenerator(seed=seed,
                                             update_fraction=update_fraction)
    return generator.generate(size, name=name)


def generate_heterogeneous_workload(size: int, seed: int = 0,
                                    update_fraction: float = 0.1,
                                    schema: Schema | None = None,
                                    name: str | None = None) -> Workload:
    """Convenience wrapper: ``W_het`` workload of ``size`` statements."""
    generator = HeterogeneousWorkloadGenerator(schema=schema, seed=seed,
                                               update_fraction=update_fraction)
    return generator.generate(size, name=name)
