"""A small SQL-subset parser producing the structural query model.

CoPhy's prototype parses SQL text before handing statements to INUM; we
provide the same convenience for the subset of SQL the workloads need:

* ``SELECT <item, ...> FROM <table, ...> [WHERE ...] [GROUP BY ...] [ORDER BY ...]``
* ``UPDATE <table> SET col = value [, ...] [WHERE ...]``

Supported WHERE conjuncts: ``t.c <op> constant``, ``t.c BETWEEN a AND b``,
``t.c IN (v, ...)``, ``t.c LIKE 'pattern'``, ``t.c IS NULL`` and equi-joins
``t1.c1 = t2.c2``.  Only conjunctions (AND) are supported, mirroring the SPJ
queries of the paper's workloads.  Column references may be unqualified when
a :class:`~repro.catalog.schema.Schema` is provided, in which case they are
resolved against the FROM list.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.catalog.schema import Schema
from repro.exceptions import ParseError
from repro.workload.predicates import (
    ColumnRef,
    ComparisonOperator,
    JoinPredicate,
    SimplePredicate,
)
from repro.workload.query import (
    Aggregate,
    AggregateFunction,
    Query,
    SelectQuery,
    UpdateQuery,
)

__all__ = ["parse_statement", "parse_workload"]

_TOKEN_PATTERN = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')      # quoted string
      | (?P<number>-?\d+(?:\.\d+)?)     # numeric literal
      | (?P<identifier>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)
      | (?P<operator><=|>=|<>|!=|=|<|>)
      | (?P<punct>[(),*;])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "group", "order", "by", "and", "between",
    "in", "like", "is", "null", "update", "set", "asc", "desc", "as",
    "sum", "count", "avg", "min", "max", "not",
}

_AGGREGATES = {
    "sum": AggregateFunction.SUM,
    "count": AggregateFunction.COUNT,
    "avg": AggregateFunction.AVG,
    "min": AggregateFunction.MIN,
    "max": AggregateFunction.MAX,
}

_OPERATORS = {
    "=": ComparisonOperator.EQ,
    "<>": ComparisonOperator.NE,
    "!=": ComparisonOperator.NE,
    "<": ComparisonOperator.LT,
    "<=": ComparisonOperator.LE,
    ">": ComparisonOperator.GT,
    ">=": ComparisonOperator.GE,
}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_PATTERN.match(sql, position)
        if match is None:
            remainder = sql[position:].strip()
            if not remainder:
                break
            raise ParseError(f"Unexpected input near {remainder[:25]!r}")
        position = match.end()
        if match.lastgroup is None:
            continue
        text = match.group(match.lastgroup)
        kind = match.lastgroup
        if kind == "identifier" and text.lower() in _KEYWORDS:
            kind = "keyword"
            text = text.lower()
        tokens.append(_Token(kind, text))
    return tokens


class _TokenStream:
    """A cursor over the token list with the usual peek/expect helpers."""

    def __init__(self, tokens: Sequence[_Token]):
        self._tokens = list(tokens)
        self._index = 0

    def peek(self, offset: int = 0) -> _Token | None:
        index = self._index + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("Unexpected end of statement")
        self._index += 1
        return token

    def accept_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "keyword" and token.text in keywords:
            self._index += 1
            return True
        return False

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            found = self.peek()
            raise ParseError(f"Expected keyword {keyword!r}, found "
                             f"{found.text if found else 'end of statement'!r}")

    def accept_punct(self, punct: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "punct" and token.text == punct:
            self._index += 1
            return True
        return False

    def expect_punct(self, punct: str) -> None:
        if not self.accept_punct(punct):
            found = self.peek()
            raise ParseError(f"Expected {punct!r}, found "
                             f"{found.text if found else 'end of statement'!r}")

    def at_end(self) -> bool:
        token = self.peek()
        return token is None or (token.kind == "punct" and token.text == ";")


class _StatementParser:
    """Recursive-descent parser for the SQL subset."""

    def __init__(self, sql: str, schema: Schema | None = None,
                 name: str | None = None):
        self._stream = _TokenStream(_tokenize(sql))
        self._schema = schema
        self._name = name
        self._from_tables: list[str] = []

    # ------------------------------------------------------------------ entry
    def parse(self) -> Query:
        if self._stream.accept_keyword("select"):
            return self._parse_select()
        if self._stream.accept_keyword("update"):
            return self._parse_update()
        token = self._stream.peek()
        raise ParseError(f"Statement must start with SELECT or UPDATE, found "
                         f"{token.text if token else 'nothing'!r}")

    # ----------------------------------------------------------------- select
    def _parse_select(self) -> SelectQuery:
        # The SELECT list is parsed before the FROM clause, so unqualified
        # column references stay deferred until the table list is known.
        select_items = self._parse_select_items()
        self._stream.expect_keyword("from")
        self._from_tables = self._parse_table_list()
        predicates, joins = self._parse_where()
        group_by = self._parse_column_list_clause("group")
        order_by = self._parse_column_list_clause("order")
        projections: list[ColumnRef] = []
        aggregates: list[Aggregate] = []
        for item in select_items:
            if isinstance(item, _DeferredColumn):
                projections.append(self._resolve_deferred(item))
            elif isinstance(item, _DeferredAggregate):
                column = (None if item.column is None
                          else self._resolve_deferred(item.column))
                aggregates.append(Aggregate(item.function, column))
        return SelectQuery(
            tables=self._from_tables,
            projections=projections,
            predicates=predicates,
            joins=joins,
            group_by=group_by,
            order_by=order_by,
            aggregates=aggregates,
            name=self._name,
        )

    def _parse_select_items(self) -> list["_DeferredColumn | _DeferredAggregate | None"]:
        items: list[_DeferredColumn | _DeferredAggregate | None] = []
        while True:
            token = self._stream.peek()
            if token is None:
                raise ParseError("Unexpected end of SELECT list")
            if token.kind == "punct" and token.text == "*":
                self._stream.next()
            elif token.kind == "keyword" and token.text in _AGGREGATES:
                items.append(self._parse_aggregate())
            else:
                items.append(self._parse_deferred_column())
            self._maybe_alias()
            if not self._stream.accept_punct(","):
                break
        return [item for item in items if item is not None]

    def _parse_aggregate(self) -> "_DeferredAggregate":
        function_token = self._stream.next()
        function = _AGGREGATES[function_token.text]
        self._stream.expect_punct("(")
        token = self._stream.peek()
        column: _DeferredColumn | None
        if token is not None and token.kind == "punct" and token.text == "*":
            self._stream.next()
            column = None
        else:
            column = self._parse_deferred_column()
        self._stream.expect_punct(")")
        return _DeferredAggregate(function, column)

    def _maybe_alias(self) -> None:
        if self._stream.accept_keyword("as"):
            self._stream.next()  # the alias identifier itself
        else:
            token = self._stream.peek()
            if token is not None and token.kind == "identifier" and "." not in token.text:
                # A bare identifier immediately after an item is an implicit alias.
                following = self._stream.peek(1)
                if following is None or (following.kind == "punct"
                                         and following.text in {",", ";"}):
                    self._stream.next()

    # ----------------------------------------------------------------- update
    def _parse_update(self) -> UpdateQuery:
        table_token = self._stream.next()
        if table_token.kind != "identifier":
            raise ParseError("UPDATE must be followed by a table name")
        table = table_token.text
        self._from_tables = [table]
        self._stream.expect_keyword("set")
        set_columns: list[ColumnRef] = []
        while True:
            column = self._resolve_deferred(self._parse_deferred_column())
            operator = self._stream.next()
            if operator.kind != "operator" or operator.text != "=":
                raise ParseError("SET clause must assign with '='")
            self._parse_value()
            set_columns.append(column)
            if not self._stream.accept_punct(","):
                break
        predicates, joins = self._parse_where()
        if joins:
            raise ParseError("UPDATE statements may not contain join predicates")
        return UpdateQuery(table=table, set_columns=set_columns,
                           predicates=predicates, name=self._name)

    # ------------------------------------------------------------------ where
    def _parse_table_list(self) -> list[str]:
        tables: list[str] = []
        while True:
            token = self._stream.next()
            if token.kind != "identifier":
                raise ParseError(f"Expected a table name, found {token.text!r}")
            tables.append(token.text)
            self._maybe_alias()
            if not self._stream.accept_punct(","):
                break
        return tables

    def _parse_where(self) -> tuple[list[SimplePredicate], list[JoinPredicate]]:
        predicates: list[SimplePredicate] = []
        joins: list[JoinPredicate] = []
        if not self._stream.accept_keyword("where"):
            return predicates, joins
        while True:
            predicate = self._parse_condition()
            if isinstance(predicate, JoinPredicate):
                joins.append(predicate)
            else:
                predicates.append(predicate)
            if not self._stream.accept_keyword("and"):
                break
        return predicates, joins

    def _parse_condition(self) -> SimplePredicate | JoinPredicate:
        column = self._resolve_deferred(self._parse_deferred_column())
        token = self._stream.peek()
        if token is None:
            raise ParseError(f"Dangling condition on {column}")
        if token.kind == "keyword" and token.text == "between":
            self._stream.next()
            low = self._parse_value()
            self._stream.expect_keyword("and")
            high = self._parse_value()
            return SimplePredicate(column, ComparisonOperator.BETWEEN, (low, high))
        if token.kind == "keyword" and token.text == "in":
            self._stream.next()
            self._stream.expect_punct("(")
            values = [self._parse_value()]
            while self._stream.accept_punct(","):
                values.append(self._parse_value())
            self._stream.expect_punct(")")
            return SimplePredicate(column, ComparisonOperator.IN, tuple(values))
        if token.kind == "keyword" and token.text == "like":
            self._stream.next()
            pattern = self._parse_value()
            return SimplePredicate(column, ComparisonOperator.LIKE, pattern)
        if token.kind == "keyword" and token.text == "is":
            self._stream.next()
            self._stream.accept_keyword("not")
            self._stream.expect_keyword("null")
            return SimplePredicate(column, ComparisonOperator.IS_NULL)
        if token.kind == "operator":
            operator_token = self._stream.next()
            operator = _OPERATORS[operator_token.text]
            right = self._stream.peek()
            if (right is not None and right.kind == "identifier"
                    and self._looks_like_column(right.text)):
                right_column = self._resolve_deferred(self._parse_deferred_column())
                if operator is not ComparisonOperator.EQ:
                    raise ParseError("Only equi-joins between columns are supported")
                if right_column.table == column.table:
                    raise ParseError("Join predicates must connect two tables")
                return JoinPredicate(column, right_column)
            value = self._parse_value()
            return SimplePredicate(column, operator, value)
        raise ParseError(f"Unsupported condition near {token.text!r}")

    def _looks_like_column(self, text: str) -> bool:
        if "." in text:
            return True
        if self._schema is None:
            return False
        return any(self._schema.has_column(table, text) for table in self._from_tables)

    # ------------------------------------------------------------------ atoms
    def _parse_deferred_column(self) -> "_DeferredColumn":
        token = self._stream.next()
        if token.kind != "identifier":
            raise ParseError(f"Expected a column reference, found {token.text!r}")
        if "." in token.text:
            table, column = token.text.split(".", 1)
            return _DeferredColumn(table, column)
        return _DeferredColumn(None, token.text)

    def _resolve_deferred(self, deferred: "_DeferredColumn") -> ColumnRef:
        if deferred.table is not None:
            return ColumnRef(deferred.table, deferred.column)
        if self._schema is None:
            raise ParseError(
                f"Column {deferred.column!r} must be table-qualified when no "
                "schema is supplied")
        owners = [table for table in self._from_tables
                  if self._schema.has_column(table, deferred.column)]
        if not owners:
            raise ParseError(f"Column {deferred.column!r} not found in the FROM list")
        if len(owners) > 1:
            raise ParseError(f"Column {deferred.column!r} is ambiguous "
                             f"(candidates: {', '.join(owners)})")
        return ColumnRef(owners[0], deferred.column)

    def _parse_value(self):
        token = self._stream.next()
        if token.kind == "number":
            number = float(token.text)
            return int(number) if number.is_integer() else number
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "keyword" and token.text == "null":
            return None
        if token.kind == "identifier":
            return token.text
        raise ParseError(f"Expected a literal value, found {token.text!r}")

    def _parse_column_list_clause(self, keyword: str) -> list[ColumnRef]:
        if not self._stream.accept_keyword(keyword):
            return []
        self._stream.expect_keyword("by")
        columns: list[ColumnRef] = []
        while True:
            columns.append(self._resolve_deferred(self._parse_deferred_column()))
            self._stream.accept_keyword("asc")
            self._stream.accept_keyword("desc")
            if not self._stream.accept_punct(","):
                break
        return columns


@dataclass(frozen=True)
class _DeferredColumn:
    """A column reference that may still need schema-based table resolution."""

    table: str | None
    column: str


@dataclass(frozen=True)
class _DeferredAggregate:
    """An aggregate whose argument column has not been resolved yet."""

    function: AggregateFunction
    column: _DeferredColumn | None


def parse_statement(sql: str, schema: Schema | None = None,
                    name: str | None = None) -> Query:
    """Parse a single SELECT or UPDATE statement.

    Args:
        sql: Statement text in the supported SQL subset.
        schema: Optional catalog used to resolve unqualified column names and
            to validate references.
        name: Optional statement name carried into the query object.

    Returns:
        A :class:`SelectQuery` or :class:`UpdateQuery`.

    Raises:
        ParseError: If the statement falls outside the supported subset.
    """
    parser = _StatementParser(sql, schema=schema, name=name)
    query = parser.parse()
    if schema is not None:
        query.validate_against(schema)
    return query


def parse_workload(statements: Iterable[str], schema: Schema | None = None,
                   weights: Iterable[float] | None = None,
                   name: str = "parsed-workload"):
    """Parse several statements into a :class:`~repro.workload.workload.Workload`."""
    from repro.workload.workload import Workload, WorkloadStatement

    statement_list = list(statements)
    if weights is None:
        weight_list = [1.0] * len(statement_list)
    else:
        weight_list = list(weights)
        if len(weight_list) != len(statement_list):
            raise ParseError("weights must match the number of statements")
    parsed = [
        WorkloadStatement(parse_statement(sql, schema=schema, name=f"stmt{i + 1}"),
                          weight)
        for i, (sql, weight) in enumerate(zip(statement_list, weight_list))
    ]
    return Workload(parsed, name=name)
