"""Workload model: queries, predicates, workloads, a SQL-subset parser and generators.

The paper's workloads are ``W_hom`` (random instantiations of fifteen TPC-H
query templates) and ``W_het`` (a heterogeneous suite of SPJ queries with
group-by and aggregation from an index-tuning benchmark), each used at sizes
of 250, 500 and 1000 statements, with updates mixed in.  This package models
statements structurally (tables, predicates, joins, group/order by,
projections, update columns), which is what the candidate generator, the
what-if optimizer and INUM consume.
"""

from repro.workload.predicates import (
    ColumnRef,
    ComparisonOperator,
    JoinPredicate,
    Predicate,
    SimplePredicate,
)
from repro.workload.query import (
    AggregateFunction,
    Query,
    SelectQuery,
    StatementKind,
    UpdateQuery,
)
from repro.workload.workload import Workload, WorkloadStatement
from repro.workload.parser import parse_statement, parse_workload
from repro.workload.generators import (
    HeterogeneousWorkloadGenerator,
    HomogeneousWorkloadGenerator,
    generate_heterogeneous_workload,
    generate_homogeneous_workload,
)

__all__ = [
    "ColumnRef",
    "ComparisonOperator",
    "JoinPredicate",
    "Predicate",
    "SimplePredicate",
    "AggregateFunction",
    "Query",
    "SelectQuery",
    "StatementKind",
    "UpdateQuery",
    "Workload",
    "WorkloadStatement",
    "parse_statement",
    "parse_workload",
    "HomogeneousWorkloadGenerator",
    "HeterogeneousWorkloadGenerator",
    "generate_homogeneous_workload",
    "generate_heterogeneous_workload",
]
