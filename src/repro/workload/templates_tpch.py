"""Fifteen TPC-H-like query templates used by the homogeneous workload generator.

The paper's ``W_hom`` workload consists of random queries produced by the
TPC-H query generator on fifteen of the TPC-H templates (the remaining seven
were unsupported by the prototype's SQL parser).  We implement fifteen
structural templates modelled on TPC-H Q1, Q3, Q4, Q5, Q6, Q7, Q8, Q10, Q11,
Q12, Q14, Q15, Q16, Q18 and Q19, each parameterised by a random-number
generator so that repeated instantiations have different constants and
selectivities — exactly the role QGEN plays for the paper.

Update templates (used to mix UPDATE statements into the workloads) touch the
``lineitem``, ``orders``, ``customer`` and ``partsupp`` tables.
"""

from __future__ import annotations

import random
from typing import Callable


from repro.workload.predicates import ColumnRef, ComparisonOperator, JoinPredicate, SimplePredicate
from repro.workload.query import Aggregate, AggregateFunction, Query, SelectQuery, UpdateQuery

__all__ = ["SELECT_TEMPLATES", "UPDATE_TEMPLATES", "instantiate_template"]


def _col(table: str, column: str) -> ColumnRef:
    return ColumnRef(table, column)


def _eq(table: str, column: str, value, selectivity: float) -> SimplePredicate:
    return SimplePredicate(_col(table, column), ComparisonOperator.EQ, value,
                           selectivity_hint=selectivity)


def _range(table: str, column: str, low, high, selectivity: float) -> SimplePredicate:
    return SimplePredicate(_col(table, column), ComparisonOperator.BETWEEN,
                           (low, high), selectivity_hint=selectivity)


def _le(table: str, column: str, value, selectivity: float) -> SimplePredicate:
    return SimplePredicate(_col(table, column), ComparisonOperator.LE, value,
                           selectivity_hint=selectivity)


def _ge(table: str, column: str, value, selectivity: float) -> SimplePredicate:
    return SimplePredicate(_col(table, column), ComparisonOperator.GE, value,
                           selectivity_hint=selectivity)


def _join(left_table: str, left_column: str, right_table: str,
          right_column: str) -> JoinPredicate:
    return JoinPredicate(_col(left_table, left_column), _col(right_table, right_column))


def _sum(table: str, column: str) -> Aggregate:
    return Aggregate(AggregateFunction.SUM, _col(table, column))


def _count_star() -> Aggregate:
    return Aggregate(AggregateFunction.COUNT, None)


# --------------------------------------------------------------------------- templates
def template_q1(rng: random.Random, name: str) -> SelectQuery:
    """Pricing summary report (TPC-H Q1): scan lineitem with a shipdate cutoff."""
    cutoff = rng.uniform(2400, 2520)
    selectivity = rng.uniform(0.90, 0.99)
    return SelectQuery(
        tables=("lineitem",),
        predicates=(_le("lineitem", "l_shipdate", cutoff, selectivity),),
        group_by=(_col("lineitem", "l_returnflag"), _col("lineitem", "l_linestatus")),
        order_by=(_col("lineitem", "l_returnflag"), _col("lineitem", "l_linestatus")),
        aggregates=(_sum("lineitem", "l_quantity"),
                    _sum("lineitem", "l_extendedprice"),
                    _sum("lineitem", "l_discount"),
                    _count_star()),
        name=name,
    )


def template_q3(rng: random.Random, name: str) -> SelectQuery:
    """Shipping priority (TPC-H Q3): customer x orders x lineitem with date bounds."""
    segment = rng.randrange(5)
    date = rng.uniform(700, 900)
    return SelectQuery(
        tables=("customer", "orders", "lineitem"),
        projections=(_col("orders", "o_orderdate"), _col("orders", "o_shippriority")),
        predicates=(_eq("customer", "c_mktsegment", segment, 0.2),
                    SimplePredicate(_col("orders", "o_orderdate"),
                                    ComparisonOperator.LT, date,
                                    selectivity_hint=rng.uniform(0.3, 0.5)),
                    SimplePredicate(_col("lineitem", "l_shipdate"),
                                    ComparisonOperator.GT, date,
                                    selectivity_hint=rng.uniform(0.5, 0.7))),
        joins=(_join("customer", "c_custkey", "orders", "o_custkey"),
               _join("orders", "o_orderkey", "lineitem", "l_orderkey")),
        group_by=(_col("lineitem", "l_orderkey"), _col("orders", "o_orderdate"),
                  _col("orders", "o_shippriority")),
        order_by=(_col("orders", "o_orderdate"),),
        aggregates=(_sum("lineitem", "l_extendedprice"),),
        name=name,
    )


def template_q4(rng: random.Random, name: str) -> SelectQuery:
    """Order priority checking (TPC-H Q4): orders restricted to a quarter."""
    start = rng.uniform(200, 2200)
    return SelectQuery(
        tables=("orders",),
        predicates=(_range("orders", "o_orderdate", start, start + 90,
                           rng.uniform(0.02, 0.05)),),
        group_by=(_col("orders", "o_orderpriority"),),
        order_by=(_col("orders", "o_orderpriority"),),
        aggregates=(_count_star(),),
        name=name,
    )


def template_q5(rng: random.Random, name: str) -> SelectQuery:
    """Local supplier volume (TPC-H Q5): five-way join restricted to a region/year."""
    region = rng.randrange(5)
    start = rng.uniform(0, 2000)
    return SelectQuery(
        tables=("customer", "orders", "lineitem", "supplier", "nation", "region"),
        predicates=(_eq("region", "r_regionkey", region, 0.2),
                    _range("orders", "o_orderdate", start, start + 365,
                           rng.uniform(0.12, 0.18))),
        joins=(_join("customer", "c_custkey", "orders", "o_custkey"),
               _join("orders", "o_orderkey", "lineitem", "l_orderkey"),
               _join("lineitem", "l_suppkey", "supplier", "s_suppkey"),
               _join("supplier", "s_nationkey", "nation", "n_nationkey"),
               _join("nation", "n_regionkey", "region", "r_regionkey")),
        group_by=(_col("nation", "n_name"),),
        order_by=(_col("nation", "n_name"),),
        aggregates=(_sum("lineitem", "l_extendedprice"),),
        name=name,
    )


def template_q6(rng: random.Random, name: str) -> SelectQuery:
    """Forecasting revenue change (TPC-H Q6): highly selective lineitem scan."""
    start = rng.uniform(0, 2000)
    quantity = rng.uniform(24, 26)
    discount = rng.uniform(0.02, 0.09)
    return SelectQuery(
        tables=("lineitem",),
        predicates=(_range("lineitem", "l_shipdate", start, start + 365,
                           rng.uniform(0.12, 0.16)),
                    _range("lineitem", "l_discount", discount - 0.01,
                           discount + 0.01, rng.uniform(0.15, 0.3)),
                    SimplePredicate(_col("lineitem", "l_quantity"),
                                    ComparisonOperator.LT, quantity,
                                    selectivity_hint=rng.uniform(0.45, 0.55))),
        aggregates=(_sum("lineitem", "l_extendedprice"),),
        name=name,
    )


def template_q7(rng: random.Random, name: str) -> SelectQuery:
    """Volume shipping (TPC-H Q7): supplier x lineitem x orders x customer x nation."""
    nation = rng.randrange(25)
    return SelectQuery(
        tables=("supplier", "lineitem", "orders", "customer", "nation"),
        predicates=(_eq("nation", "n_nationkey", nation, 1.0 / 25.0),
                    _range("lineitem", "l_shipdate", 300, 1030,
                           rng.uniform(0.25, 0.35))),
        joins=(_join("supplier", "s_suppkey", "lineitem", "l_suppkey"),
               _join("orders", "o_orderkey", "lineitem", "l_orderkey"),
               _join("customer", "c_custkey", "orders", "o_custkey"),
               _join("supplier", "s_nationkey", "nation", "n_nationkey")),
        group_by=(_col("nation", "n_name"), _col("lineitem", "l_shipdate")),
        order_by=(_col("nation", "n_name"),),
        aggregates=(_sum("lineitem", "l_extendedprice"),),
        name=name,
    )


def template_q8(rng: random.Random, name: str) -> SelectQuery:
    """National market share (TPC-H Q8): part-centric multi-way join."""
    part_type = rng.randrange(150)
    return SelectQuery(
        tables=("part", "lineitem", "orders", "customer", "nation", "region"),
        predicates=(_eq("part", "p_type", part_type, 1.0 / 150.0),
                    _eq("region", "r_regionkey", rng.randrange(5), 0.2),
                    _range("orders", "o_orderdate", 700, 1430,
                           rng.uniform(0.28, 0.34))),
        joins=(_join("part", "p_partkey", "lineitem", "l_partkey"),
               _join("orders", "o_orderkey", "lineitem", "l_orderkey"),
               _join("customer", "c_custkey", "orders", "o_custkey"),
               _join("customer", "c_nationkey", "nation", "n_nationkey"),
               _join("nation", "n_regionkey", "region", "r_regionkey")),
        group_by=(_col("orders", "o_orderdate"),),
        order_by=(_col("orders", "o_orderdate"),),
        aggregates=(_sum("lineitem", "l_extendedprice"),),
        name=name,
    )


def template_q10(rng: random.Random, name: str) -> SelectQuery:
    """Returned item reporting (TPC-H Q10): customer revenue from returned items."""
    start = rng.uniform(0, 2300)
    return SelectQuery(
        tables=("customer", "orders", "lineitem", "nation"),
        projections=(_col("customer", "c_name"), _col("customer", "c_acctbal"),
                     _col("nation", "n_name"), _col("customer", "c_address"),
                     _col("customer", "c_phone")),
        predicates=(_range("orders", "o_orderdate", start, start + 90,
                           rng.uniform(0.02, 0.05)),
                    _eq("lineitem", "l_returnflag", 0, rng.uniform(0.2, 0.35))),
        joins=(_join("customer", "c_custkey", "orders", "o_custkey"),
               _join("orders", "o_orderkey", "lineitem", "l_orderkey"),
               _join("customer", "c_nationkey", "nation", "n_nationkey")),
        group_by=(_col("customer", "c_custkey"), _col("customer", "c_name"),
                  _col("customer", "c_acctbal"), _col("nation", "n_name")),
        order_by=(_col("customer", "c_acctbal"),),
        aggregates=(_sum("lineitem", "l_extendedprice"),),
        name=name,
    )


def template_q11(rng: random.Random, name: str) -> SelectQuery:
    """Important stock identification (TPC-H Q11): partsupp value by nation."""
    nation = rng.randrange(25)
    return SelectQuery(
        tables=("partsupp", "supplier", "nation"),
        projections=(_col("partsupp", "ps_partkey"),),
        predicates=(_eq("nation", "n_nationkey", nation, 1.0 / 25.0),),
        joins=(_join("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
               _join("supplier", "s_nationkey", "nation", "n_nationkey")),
        group_by=(_col("partsupp", "ps_partkey"),),
        order_by=(_col("partsupp", "ps_partkey"),),
        aggregates=(_sum("partsupp", "ps_supplycost"),),
        name=name,
    )


def template_q12(rng: random.Random, name: str) -> SelectQuery:
    """Shipping modes and order priority (TPC-H Q12)."""
    mode = rng.randrange(7)
    start = rng.uniform(0, 2100)
    return SelectQuery(
        tables=("orders", "lineitem"),
        predicates=(_eq("lineitem", "l_shipmode", mode, 1.0 / 7.0),
                    _range("lineitem", "l_receiptdate", start, start + 365,
                           rng.uniform(0.12, 0.16))),
        joins=(_join("orders", "o_orderkey", "lineitem", "l_orderkey"),),
        group_by=(_col("lineitem", "l_shipmode"),),
        order_by=(_col("lineitem", "l_shipmode"),),
        aggregates=(_count_star(),),
        name=name,
    )


def template_q14(rng: random.Random, name: str) -> SelectQuery:
    """Promotion effect (TPC-H Q14): part x lineitem over one month."""
    start = rng.uniform(0, 2400)
    return SelectQuery(
        tables=("lineitem", "part"),
        predicates=(_range("lineitem", "l_shipdate", start, start + 30,
                           rng.uniform(0.01, 0.02)),),
        joins=(_join("lineitem", "l_partkey", "part", "p_partkey"),),
        aggregates=(_sum("lineitem", "l_extendedprice"),
                    _sum("lineitem", "l_discount")),
        name=name,
    )


def template_q15(rng: random.Random, name: str) -> SelectQuery:
    """Top supplier (TPC-H Q15): revenue per supplier over a quarter."""
    start = rng.uniform(0, 2300)
    return SelectQuery(
        tables=("lineitem", "supplier"),
        projections=(_col("supplier", "s_name"), _col("supplier", "s_address"),
                     _col("supplier", "s_phone")),
        predicates=(_range("lineitem", "l_shipdate", start, start + 90,
                           rng.uniform(0.03, 0.05)),),
        joins=(_join("lineitem", "l_suppkey", "supplier", "s_suppkey"),),
        group_by=(_col("supplier", "s_suppkey"),),
        order_by=(_col("supplier", "s_suppkey"),),
        aggregates=(_sum("lineitem", "l_extendedprice"),),
        name=name,
    )


def template_q16(rng: random.Random, name: str) -> SelectQuery:
    """Parts/supplier relationship (TPC-H Q16): partsupp x part with filters."""
    brand = rng.randrange(25)
    sizes = tuple(sorted(rng.sample(range(1, 51), 4)))
    return SelectQuery(
        tables=("partsupp", "part"),
        projections=(_col("part", "p_brand"), _col("part", "p_type"),
                     _col("part", "p_size")),
        predicates=(SimplePredicate(_col("part", "p_brand"),
                                    ComparisonOperator.NE, brand,
                                    selectivity_hint=0.96),
                    SimplePredicate(_col("part", "p_size"),
                                    ComparisonOperator.IN, sizes,
                                    selectivity_hint=4.0 / 50.0)),
        joins=(_join("partsupp", "ps_partkey", "part", "p_partkey"),),
        group_by=(_col("part", "p_brand"), _col("part", "p_type"),
                  _col("part", "p_size")),
        order_by=(_col("part", "p_brand"),),
        aggregates=(_count_star(),),
        name=name,
    )


def template_q18(rng: random.Random, name: str) -> SelectQuery:
    """Large volume customer (TPC-H Q18): customer x orders x lineitem."""
    quantity = rng.uniform(300, 315)
    return SelectQuery(
        tables=("customer", "orders", "lineitem"),
        projections=(_col("customer", "c_name"), _col("orders", "o_orderdate"),
                     _col("orders", "o_totalprice")),
        predicates=(SimplePredicate(_col("lineitem", "l_quantity"),
                                    ComparisonOperator.GT, quantity,
                                    selectivity_hint=rng.uniform(0.005, 0.02)),),
        joins=(_join("customer", "c_custkey", "orders", "o_custkey"),
               _join("orders", "o_orderkey", "lineitem", "l_orderkey")),
        group_by=(_col("customer", "c_name"), _col("orders", "o_orderkey"),
                  _col("orders", "o_orderdate"), _col("orders", "o_totalprice")),
        order_by=(_col("orders", "o_totalprice"), _col("orders", "o_orderdate")),
        aggregates=(_sum("lineitem", "l_quantity"),),
        name=name,
    )


def template_q19(rng: random.Random, name: str) -> SelectQuery:
    """Discounted revenue (TPC-H Q19): part x lineitem with brand/quantity filters."""
    brand = rng.randrange(25)
    low_quantity = rng.uniform(1, 10)
    return SelectQuery(
        tables=("lineitem", "part"),
        predicates=(_eq("part", "p_brand", brand, 1.0 / 25.0),
                    _range("part", "p_size", 1, rng.randrange(5, 15), 0.2),
                    _range("lineitem", "l_quantity", low_quantity,
                           low_quantity + 10, rng.uniform(0.18, 0.22))),
        joins=(_join("lineitem", "l_partkey", "part", "p_partkey"),),
        aggregates=(_sum("lineitem", "l_extendedprice"),),
        name=name,
    )


# ----------------------------------------------------------------------- updates
def template_update_lineitem(rng: random.Random, name: str) -> UpdateQuery:
    """Adjust discounts of recently shipped line items."""
    start = rng.uniform(2300, 2500)
    return UpdateQuery(
        table="lineitem",
        set_columns=(_col("lineitem", "l_discount"),),
        predicates=(_range("lineitem", "l_shipdate", start, start + 14,
                           rng.uniform(0.003, 0.01)),),
        name=name,
    )


def template_update_orders(rng: random.Random, name: str) -> UpdateQuery:
    """Mark an order-date slice of orders with a new status."""
    start = rng.uniform(2300, 2400)
    return UpdateQuery(
        table="orders",
        set_columns=(_col("orders", "o_orderstatus"),),
        predicates=(_range("orders", "o_orderdate", start, start + 7,
                           rng.uniform(0.002, 0.006)),),
        name=name,
    )


def template_update_customer(rng: random.Random, name: str) -> UpdateQuery:
    """Refresh the account balance of a market segment's customers."""
    segment = rng.randrange(5)
    return UpdateQuery(
        table="customer",
        set_columns=(_col("customer", "c_acctbal"),),
        predicates=(_eq("customer", "c_mktsegment", segment, 0.2),
                    _ge("customer", "c_acctbal", rng.uniform(9000, 9900),
                        rng.uniform(0.005, 0.02))),
        name=name,
    )


def template_update_partsupp(rng: random.Random, name: str) -> UpdateQuery:
    """Restock: bump availability for low-stock part/supplier pairs."""
    return UpdateQuery(
        table="partsupp",
        set_columns=(_col("partsupp", "ps_availqty"),),
        predicates=(_le("partsupp", "ps_availqty", rng.uniform(10, 100),
                        rng.uniform(0.005, 0.02)),),
        name=name,
    )


TemplateFunction = Callable[[random.Random, str], Query]

#: The fifteen SELECT templates of ``W_hom``, keyed by template id.
SELECT_TEMPLATES: dict[str, TemplateFunction] = {
    "Q1": template_q1,
    "Q3": template_q3,
    "Q4": template_q4,
    "Q5": template_q5,
    "Q6": template_q6,
    "Q7": template_q7,
    "Q8": template_q8,
    "Q10": template_q10,
    "Q11": template_q11,
    "Q12": template_q12,
    "Q14": template_q14,
    "Q15": template_q15,
    "Q16": template_q16,
    "Q18": template_q18,
    "Q19": template_q19,
}

#: Update templates mixed into workloads when an update fraction is requested.
UPDATE_TEMPLATES: dict[str, TemplateFunction] = {
    "U_lineitem": template_update_lineitem,
    "U_orders": template_update_orders,
    "U_customer": template_update_customer,
    "U_partsupp": template_update_partsupp,
}


def instantiate_template(template_id: str, rng: random.Random,
                         instance: int) -> Query:
    """Instantiate a named template with fresh random parameters.

    Args:
        template_id: A key of :data:`SELECT_TEMPLATES` or :data:`UPDATE_TEMPLATES`.
        rng: Seeded random generator controlling the constants.
        instance: Instance counter appended to the statement name.
    """
    name = f"{template_id}#{instance}"
    if template_id in SELECT_TEMPLATES:
        return SELECT_TEMPLATES[template_id](rng, name)
    if template_id in UPDATE_TEMPLATES:
        return UPDATE_TEMPLATES[template_id](rng, name)
    raise KeyError(f"Unknown template {template_id!r}")
