"""Predicate algebra for the structural query model."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.exceptions import WorkloadError

__all__ = ["ColumnRef", "ComparisonOperator", "Predicate", "SimplePredicate",
           "JoinPredicate"]


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A reference to ``table.column``.

    The paper assumes each statement references a table at most once, so a
    plain (table, column) pair is a sufficient addressing scheme — no tuple
    variables are needed.
    """

    table: str
    column: str

    def __post_init__(self) -> None:
        if not self.table or not self.column:
            raise WorkloadError("ColumnRef needs both a table and a column name")

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


class ComparisonOperator(enum.Enum):
    """Comparison operators supported in selection predicates."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    BETWEEN = "between"
    IN = "in"
    LIKE = "like"
    IS_NULL = "is null"

    @property
    def is_equality(self) -> bool:
        return self in (ComparisonOperator.EQ, ComparisonOperator.IN)

    @property
    def is_range(self) -> bool:
        return self in (ComparisonOperator.LT, ComparisonOperator.LE,
                        ComparisonOperator.GT, ComparisonOperator.GE,
                        ComparisonOperator.BETWEEN)

    @property
    def is_sargable(self) -> bool:
        """Whether a B-tree index on the column can evaluate the predicate."""
        return self in (ComparisonOperator.EQ, ComparisonOperator.LT,
                        ComparisonOperator.LE, ComparisonOperator.GT,
                        ComparisonOperator.GE, ComparisonOperator.BETWEEN,
                        ComparisonOperator.IN)


class Predicate:
    """Marker base class for selection and join predicates."""

    __slots__ = ()


@dataclass(frozen=True)
class SimplePredicate(Predicate):
    """A predicate comparing one column to constants, e.g. ``l_shipdate <= 800``.

    Attributes:
        column: The column being restricted.
        operator: Comparison operator.
        value: Constant operand.  For ``BETWEEN`` this is a ``(low, high)``
            pair; for ``IN`` a tuple of values; for ``IS_NULL`` it is ignored.
        selectivity_hint: Optional explicit selectivity in (0, 1].  Workload
            generators set this to control how selective generated predicates
            are, and the selectivity estimator prefers it over the histogram
            when present.
    """

    column: ColumnRef
    operator: ComparisonOperator
    value: Any = None
    selectivity_hint: float | None = None

    def __post_init__(self) -> None:
        if self.operator is ComparisonOperator.BETWEEN:
            if (not isinstance(self.value, (tuple, list)) or len(self.value) != 2):
                raise WorkloadError("BETWEEN predicate needs a (low, high) pair")
        if self.operator is ComparisonOperator.IN:
            if not isinstance(self.value, (tuple, list)) or not self.value:
                raise WorkloadError("IN predicate needs a non-empty value list")
        if self.selectivity_hint is not None:
            if not 0.0 < self.selectivity_hint <= 1.0:
                raise WorkloadError("selectivity_hint must lie in (0, 1]")

    @property
    def table(self) -> str:
        return self.column.table

    @property
    def is_sargable(self) -> bool:
        return self.operator.is_sargable

    @property
    def is_equality(self) -> bool:
        return self.operator.is_equality

    def __str__(self) -> str:
        if self.operator is ComparisonOperator.BETWEEN:
            low, high = self.value
            return f"{self.column} BETWEEN {low} AND {high}"
        if self.operator is ComparisonOperator.IN:
            values = ", ".join(str(v) for v in self.value)
            return f"{self.column} IN ({values})"
        if self.operator is ComparisonOperator.IS_NULL:
            return f"{self.column} IS NULL"
        return f"{self.column} {self.operator.value} {self.value}"


@dataclass(frozen=True)
class JoinPredicate(Predicate):
    """An equi-join predicate ``left = right`` between columns of two tables."""

    left: ColumnRef
    right: ColumnRef

    def __post_init__(self) -> None:
        if self.left.table == self.right.table:
            raise WorkloadError(
                "JoinPredicate must connect two different tables "
                f"(got {self.left} and {self.right})")

    @property
    def tables(self) -> tuple[str, str]:
        return (self.left.table, self.right.table)

    def references(self, table: str) -> bool:
        return table in self.tables

    def column_for(self, table: str) -> ColumnRef:
        """Return the join column on ``table``; raises if the table is not joined."""
        if self.left.table == table:
            return self.left
        if self.right.table == table:
            return self.right
        raise WorkloadError(f"Join {self} does not reference table {table!r}")

    def other(self, table: str) -> ColumnRef:
        """Return the join column on the *other* side of ``table``."""
        if self.left.table == table:
            return self.right
        if self.right.table == table:
            return self.left
        raise WorkloadError(f"Join {self} does not reference table {table!r}")

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"
