"""The ILP baseline: a BIP with one variable per candidate atomic configuration.

This reproduces the formulation of Papadomanolakis & Ailamaki ("An integer
linear programming approach to automated database design", reference [14] of
the CoPhy paper).  The crucial difference from CoPhy is the variable space:

* ILP introduces one binary variable per (query, candidate atomic
  configuration).  The number of atomic configurations grows with
  ``prod_i |S_i|``, so the advisor must *prune* the candidate configurations
  per query before building the BIP — and that enumeration/pruning dominates
  its execution time (Figures 5 and 10 of the paper).
* CoPhy instead uses one variable per index and lets the BIP solver do the
  pruning.

To keep the comparison fair (as the paper does), ILP is interfaced with the
same INUM cache for fast cost estimation and uses the same BIP solver backend.
"""

from __future__ import annotations

import itertools
import time
from typing import Sequence

from repro.advisors.base import Advisor, Recommendation, warn_legacy_construction
from repro.catalog.schema import Schema
from repro.core.constraints import StorageBudgetConstraint, TuningConstraint
from repro.core.heuristics import ideal_lower_bound
from repro.exceptions import InfeasibleProblemError
from repro.indexes.candidate_generation import CandidateGenerator, CandidateSet
from repro.indexes.configuration import AtomicConfiguration, Configuration
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.lp.budget import SolveBudget
from repro.lp.expression import LinearExpression
from repro.lp.highs_backend import MilpBackend
from repro.lp.model import Model
from repro.lp.solution import SolutionStatus
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.query import Query, UpdateQuery
from repro.workload.workload import Workload

__all__ = ["IlpAdvisor"]


class IlpAdvisor(Advisor):
    """BIP-per-atomic-configuration index advisor (the paper's ILP baseline).

    Args:
        schema: Catalog being tuned.
        optimizer: Shared what-if optimizer (a fresh one is created otherwise).
        inum: Shared INUM cache (a fresh one is created otherwise); the paper
            interfaces ILP with INUM so that both techniques benefit from fast
            what-if optimization.
        max_indexes_per_table: Pruning knob — how many candidate indexes per
            table are retained per query when enumerating atomic
            configurations.
        max_configurations_per_query: Pruning knob — cap on the number of
            atomic configurations kept per query (the best ones by estimated
            cost are kept).
        gap_tolerance: Early-termination gap passed to the BIP solver.
    """

    name = "ilp"

    def __init__(self, schema: Schema, optimizer: WhatIfOptimizer | None = None,
                 inum: InumCache | None = None,
                 candidate_generator: CandidateGenerator | None = None,
                 max_indexes_per_table: int = 4,
                 max_configurations_per_query: int = 256,
                 gap_tolerance: float = 0.05,
                 time_limit_seconds: float | None = None):
        warn_legacy_construction(type(self))
        self.schema = schema
        self.optimizer = optimizer or WhatIfOptimizer(schema)
        self.inum = inum or InumCache(self.optimizer)
        self.candidate_generator = candidate_generator or CandidateGenerator(schema)
        self.max_indexes_per_table = max(1, max_indexes_per_table)
        self.max_configurations_per_query = max(1, max_configurations_per_query)
        self.gap_tolerance = gap_tolerance
        self.time_limit_seconds = time_limit_seconds

    # -------------------------------------------------------------------- public
    # reprolint: requires-lock (mutates the shared INUM cache; caller serializes)
    def tune(self, workload: Workload, constraints: Sequence[TuningConstraint] = (),
             candidates: CandidateSet | None = None,
             budget: SolveBudget | None = None) -> Recommendation:
        if budget is not None:
            budget.start()
        timings: dict[str, float] = {}
        started = time.perf_counter()
        if candidates is None:
            candidates = self.candidate_generator.generate(workload)

        whatif_before = self.optimizer.whatif_calls + self.inum.template_build_calls
        inum_started = time.perf_counter()
        # Pre-register every candidate in the per-query gamma matrices so the
        # atomic-configuration enumeration below runs on precomputed arrays.
        self.inum.prepare(workload, candidates)
        timings["inum"] = time.perf_counter() - inum_started

        build_started = time.perf_counter()
        model, z_variables, objective = self._build_model(workload, candidates,
                                                          budget=budget)
        storage_budget = self._storage_budget(constraints)
        if storage_budget is not None:
            sizes = [candidates.size_of(index) for index in z_variables]
            expression = LinearExpression.sum_of(list(z_variables.values()), sizes)
            model.add_constraint(expression <= storage_budget, name="storage_budget")
        timings["build"] = time.perf_counter() - build_started

        solve_started = time.perf_counter()
        backend = MilpBackend(gap_tolerance=self.gap_tolerance,
                              time_limit_seconds=self.time_limit_seconds)
        solution = backend.solve(model, budget=budget)
        timings["solve"] = time.perf_counter() - solve_started
        if solution.status is SolutionStatus.INFEASIBLE:
            raise InfeasibleProblemError("ILP tuning problem is infeasible")
        if not solution.status.has_solution and budget is not None \
                and budget.expired():
            # The deadline starved HiGHS of even one incumbent.  The no-index
            # configuration is always feasible; cost it for real and report
            # its gap against the ideal (all-candidates, maintenance-free)
            # bound so the caller still sees a finite gap.
            objective = self.inum.workload_cost(workload, Configuration(()))
            bound = ideal_lower_bound(self.inum, workload, candidates)
            timings["total"] = time.perf_counter() - started
            return Recommendation(
                configuration=Configuration((), name="ilp-recommendation"),
                advisor_name=self.name,
                objective_estimate=objective,
                timings=timings,
                candidate_count=len(candidates),
                whatif_calls=(self.optimizer.whatif_calls
                              + self.inum.template_build_calls - whatif_before),
                gap=max(0.0, (objective - bound) / max(abs(objective), 1e-9)),
                extras={"variables": model.variable_count,
                        "constraints": model.constraint_count},
                timed_out=True,
            )

        selected = [index for index, variable in z_variables.items()
                    if solution.value(variable) >= 0.5]
        timings["total"] = time.perf_counter() - started
        return Recommendation(
            configuration=Configuration(selected, name="ilp-recommendation"),
            advisor_name=self.name,
            objective_estimate=solution.objective,
            timings=timings,
            candidate_count=len(candidates),
            whatif_calls=(self.optimizer.whatif_calls
                          + self.inum.template_build_calls - whatif_before),
            gap=solution.gap,
            extras={"variables": model.variable_count,
                    "constraints": model.constraint_count},
            timed_out=solution.timed_out or (budget is not None
                                             and budget.expired()),
        )

    # ----------------------------------------------------------------- internals
    def _build_model(self, workload: Workload, candidates: CandidateSet,
                     budget: SolveBudget | None = None
                     ) -> tuple[Model, dict[Index, object], LinearExpression]:
        model = Model(name="ilp-bip")
        z_variables: dict[Index, object] = {
            index: model.add_binary(f"z[{index.name}]") for index in candidates}
        objective_terms: dict = {}

        for statement in workload:
            query = statement.query
            shell = query.query_shell() if isinstance(query, UpdateQuery) else query
            if budget is not None and budget.expired():
                # Deadline fired mid-enumeration: the remaining statements
                # get only the no-index atomic, which keeps the model
                # feasible (every query has a choice) at zero extra probes.
                atomics = [(AtomicConfiguration({}),
                            self.inum.cost(shell, Configuration(())))]
            else:
                atomics = self._pruned_atomic_configurations(shell, candidates)
            config_variables = []
            for position, (atomic, cost) in enumerate(atomics):
                variable = model.add_binary(f"p[{shell.name}][{position}]")
                config_variables.append(variable)
                objective_terms[variable] = (objective_terms.get(variable, 0.0)
                                             + statement.weight * cost)
                for index in atomic.indexes():
                    model.add_constraint(
                        (1.0 * variable) - (1.0 * z_variables[index]) <= 0.0,
                        name=f"uses[{shell.name}][{position}][{index.name}]")
            model.add_constraint(
                LinearExpression.sum_of(config_variables) == 1.0,
                name=f"one_config[{shell.name}]")
            if isinstance(query, UpdateQuery):
                for index in candidates.for_table(query.table):
                    ucost = self.optimizer.update_maintenance_cost(index, query)
                    if ucost > 0:
                        variable = z_variables[index]
                        objective_terms[variable] = (
                            objective_terms.get(variable, 0.0)
                            + statement.weight * ucost)

        objective = LinearExpression(objective_terms)
        model.set_objective(objective)
        return model, z_variables, objective

    def _pruned_atomic_configurations(self, query: Query, candidates: CandidateSet
                                      ) -> list[tuple[AtomicConfiguration, float]]:
        """Enumerate and prune candidate atomic configurations for one query.

        This is the expensive step of the ILP formulation: the cross product
        of per-table candidates is enumerated (bounded by the pruning knobs),
        each configuration is costed through INUM, and only the cheapest
        ``max_configurations_per_query`` are kept.
        """
        per_table_choices: list[list[Index | None]] = []
        for table in query.tables:
            referenced = {c.column for c in query.referenced_columns_on(table)}
            relevant = [index for index in candidates.for_table(table)
                        if index.leading_column in referenced
                        or index.covers(referenced)]
            ranked = sorted(
                relevant,
                key=lambda index: self.inum.access_cost(query, table, index))
            choices: list[Index | None] = [None]
            choices.extend(ranked[:self.max_indexes_per_table])
            per_table_choices.append(choices)

        scored: list[tuple[AtomicConfiguration, float]] = []
        for combination in itertools.product(*per_table_choices):
            atomic = AtomicConfiguration(
                {table: index for table, index in zip(query.tables, combination)})
            cost = self.inum.cost(query, Configuration(atomic.indexes()))
            scored.append((atomic, cost))
        scored.sort(key=lambda pair: pair[1])
        return scored[:self.max_configurations_per_query]

    @staticmethod
    def _storage_budget(constraints: Sequence[TuningConstraint]) -> float | None:
        for constraint in constraints:
            if isinstance(constraint, StorageBudgetConstraint):
                return constraint.budget_bytes
        return None
