"""Common advisor interface, the Recommendation result object and helpers."""

from __future__ import annotations

import abc
import contextlib
import threading
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.indexes.candidate_generation import CandidateSet
from repro.indexes.configuration import Configuration
from repro.lp.budget import SolveBudget
from repro.lp.solution import GapTracePoint
from repro.workload.workload import Workload, WorkloadStatement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (advisors <- inum)
    from repro.inum.cache import InumCache

__all__ = ["Recommendation", "Advisor", "weighted_statement_costs",
           "registry_construction", "warn_legacy_construction"]


# The advisor registry (repro.api.registry) is the canonical construction
# path since the unified tuning API landed; direct constructor calls are the
# legacy surface and emit a DeprecationWarning.  The flag lives here (not in
# repro.api) so the advisor modules need no import of the API layer.
_construction_state = threading.local()


@contextlib.contextmanager
def registry_construction() -> Iterator[None]:
    """Mark the current thread as constructing advisors through the registry.

    Construction inside this context (``repro.api.registry`` factories, the
    ``Tuner`` pipeline) is the supported path and must not trip the legacy
    deprecation warning below.
    """
    depth = getattr(_construction_state, "depth", 0)
    _construction_state.depth = depth + 1
    try:
        yield
    finally:
        _construction_state.depth = depth


def warn_legacy_construction(cls: type) -> None:
    """Emit the legacy-construction DeprecationWarning outside the registry."""
    if getattr(_construction_state, "depth", 0):
        return
    warnings.warn(
        f"Constructing {cls.__name__} directly is deprecated; resolve it "
        f"through the advisor registry instead (repro.api.make_advisor(...) "
        f"or Tuner.tune(TuningRequest(...)))",
        DeprecationWarning, stacklevel=3)


def weighted_statement_costs(inum: "InumCache",
                             statements: Sequence[WorkloadStatement],
                             eval_workload: Workload,
                             configuration: Configuration
                             ) -> dict[WorkloadStatement, float]:
    """Per-statement ``weight * statement_cost`` from one tensor reduction.

    The shared fast path of the greedy advisors' probe loops: one batched
    ``InumCache.statement_costs`` call per probed configuration, bit-identical
    per statement to the per-query loop it replaces.  ``statements`` must be
    the statements of ``eval_workload``, in order.
    """
    costs = inum.statement_costs(eval_workload, configuration)
    return {statement: statement.weight * float(cost)
            for statement, cost in zip(statements, costs)}


@dataclass
class Recommendation:
    """The result of one index-tuning session.

    Attributes:
        configuration: The recommended index set ``X*``.
        advisor_name: Which advisor produced it.
        objective_estimate: The advisor's own estimate of the weighted
            workload cost under ``X*`` (not the ground-truth what-if cost —
            the evaluation harness recomputes that separately).
        timings: Per-phase wall-clock seconds.  CoPhy and ILP report the
            ``inum`` / ``build`` / ``solve`` breakdown of Figures 5 and 10;
            every advisor reports ``total``.
        candidate_count: Number of candidate indexes the advisor examined
            (the §5.2 observation: 1933 for CoPhy vs. 170 / 45 for the
            commercial tools).
        whatif_calls: What-if optimizer invocations consumed.
        gap: Reported optimality gap (solver-based advisors only).
        gap_trace: Gap-over-time feedback points (CoPhy's early-termination
            feature; empty for advisors that cannot provide it).
        extras: Advisor-specific extra results (e.g. the Pareto set).
        timed_out: True when a :class:`~repro.lp.budget.SolveBudget` deadline
            interrupted the run; the recommendation is the best-so-far
            feasible configuration and ``gap`` its optimality bound.
        solve_tier: The anytime tier that actually produced the result
            (``"exact"`` when no budget was involved).
        degraded: True when part of the pipeline was lost to faults (e.g. a
            shard whose retries were exhausted) and the recommendation
            covers only the surviving work — loud, flagged degradation.
        retries: Retries the reliability layer took while producing this
            recommendation (timing-only jitter: not part of fingerprints).
        faults_survived: Failures absorbed — retried or degraded around —
            instead of propagated.
    """

    configuration: Configuration
    advisor_name: str
    objective_estimate: float = float("nan")
    timings: dict[str, float] = field(default_factory=dict)
    candidate_count: int = 0
    whatif_calls: int = 0
    gap: float = 0.0
    gap_trace: tuple[GapTracePoint, ...] = ()
    extras: dict = field(default_factory=dict)
    timed_out: bool = False
    solve_tier: str = "exact"
    degraded: bool = False
    retries: int = 0
    faults_survived: int = 0

    @property
    def total_seconds(self) -> float:
        return self.timings.get("total", sum(self.timings.values()))

    @property
    def index_count(self) -> int:
        return len(self.configuration)

    def summary(self) -> dict[str, float | int | str]:
        """Flat summary used by the benchmark reports."""
        return {
            "advisor": self.advisor_name,
            "indexes": self.index_count,
            "candidates": self.candidate_count,
            "whatif_calls": self.whatif_calls,
            "objective": self.objective_estimate,
            "gap": self.gap,
            "total_seconds": round(self.total_seconds, 4),
        }


class Advisor(abc.ABC):
    """Interface every index advisor implements.

    An advisor takes a workload, a candidate set (or generates its own) and a
    set of constraints, and returns a :class:`Recommendation`.
    """

    name: str = "advisor"

    @abc.abstractmethod
    def tune(self, workload: Workload, constraints: Sequence = (),
             candidates: CandidateSet | None = None,
             budget: "SolveBudget | None" = None) -> Recommendation:
        """Run one tuning session and return the recommendation.

        ``budget`` (an optional :class:`~repro.lp.budget.SolveBudget`) is the
        anytime contract: advisors honoring it stop at the deadline and
        return the best-so-far feasible result with ``timed_out=True``.
        """

    def recommend(self, workload: Workload, constraints: Sequence = (),
                  candidates: CandidateSet | None = None) -> Recommendation:
        """Deprecated alias of :meth:`tune` (the pre-registry entry point)."""
        warnings.warn(
            f"{type(self).__name__}.recommend() is deprecated; call tune() "
            "or go through repro.api.Tuner.tune(TuningRequest(...))",
            DeprecationWarning, stacklevel=2)
        return self.tune(workload, constraints, candidates=candidates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
