"""A Tool-A-like advisor: greedy search with relaxation, driven by what-if calls.

This models the behaviour of the commercial advisor the paper calls Tool-A,
which follows the relaxation-based approach of Bruno & Chaudhuri (SIGMOD
2005, reference [3]):

1. per-query candidate selection with aggressive pruning (the paper traces
   Tool-A using only ~170 candidates for ``W_hom``, an order of magnitude
   fewer than CoPhy's 1933);
2. construction of an "ideal" configuration from the best per-query indexes;
3. relaxation: while the configuration violates the storage budget, remove or
   merge the index whose removal hurts the workload the least, re-costing the
   affected queries with direct what-if optimizer calls.

Because every evaluation step issues real what-if optimizations, the advisor's
running time grows quickly with the workload size; a what-if call budget
forces it to evaluate benefits on a shrinking sample of the workload as the
input grows, which is what degrades its recommendation quality for large
workloads (the effect behind Table 1 / Figure 7 of the paper).
"""

from __future__ import annotations

import random
import time
from typing import Sequence

from repro.advisors.base import (
    Advisor,
    Recommendation,
    warn_legacy_construction,
    weighted_statement_costs,
)
from repro.bench.metrics import baseline_configuration
from repro.catalog.schema import Schema
from repro.core.constraints import StorageBudgetConstraint, TuningConstraint
from repro.indexes.candidate_generation import CandidateGenerator, CandidateSet
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index, index_size_bytes
from repro.inum.cache import InumCache
from repro.lp.budget import SolveBudget
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.query import UpdateQuery
from repro.workload.workload import Workload, WorkloadStatement

__all__ = ["RelaxationAdvisor"]


class RelaxationAdvisor(Advisor):
    """Tool-A-like greedy/relaxation index advisor using direct what-if calls.

    Args:
        schema: Catalog being tuned.
        optimizer: What-if optimizer used for every cost evaluation.
        max_candidates: Cap on the pruned candidate set size (Tool-A used ~170).
        whatif_call_budget: Budget of what-if optimizations per tuning session;
            when the workload is too large to evaluate within the budget, the
            advisor falls back to costing a sample of the statements.
        seed: Seed for the sampling fallback.
        inum: Optional INUM cache.  When given, the greedy/relaxation search
            costs every probed configuration through the workload gamma
            tensor (one batched reduction per probe) instead of direct
            what-if optimizations.  This departs from the paper-faithful
            Tool-A model (whose cost is *defined* by its black-box optimizer
            calls), so the per-figure benchmarks leave it off; it exists for
            sessions that want a fast Tool-A-shaped search.
    """

    name = "tool-a"

    def __init__(self, schema: Schema, optimizer: WhatIfOptimizer | None = None,
                 candidate_generator: CandidateGenerator | None = None,
                 max_candidates: int = 170,
                 whatif_call_budget: int = 4000,
                 seed: int = 17,
                 inum: "InumCache | None" = None):
        warn_legacy_construction(type(self))
        self.schema = schema
        self.optimizer = optimizer or WhatIfOptimizer(schema)
        self.candidate_generator = candidate_generator or CandidateGenerator(
            schema, clustered=False, max_key_columns=2, max_include_columns=3)
        self.max_candidates = max(1, max_candidates)
        self.whatif_call_budget = max(100, whatif_call_budget)
        self.seed = seed
        self.inum = inum
        # The existing physical design (clustered primary keys) is always
        # available; benefits are measured on top of it, as a real advisor
        # would measure them on top of the deployed design.
        self._baseline = baseline_configuration(schema)

    # -------------------------------------------------------------------- public
    def tune(self, workload: Workload, constraints: Sequence[TuningConstraint] = (),
             candidates: CandidateSet | None = None,
             budget: SolveBudget | None = None) -> Recommendation:
        if budget is not None:
            budget.start()
        timings: dict[str, float] = {}
        started = time.perf_counter()
        # Count template builds like CoPhy/ILP/DTA do, so cross-advisor
        # optimizer-call comparisons stay apples to apples with INUM costing.
        whatif_before = self.optimizer.whatif_calls + (
            self.inum.template_build_calls if self.inum is not None else 0)

        if candidates is None:
            candidates = self.candidate_generator.generate(workload)
        pruned = self._prune_candidates(workload, candidates)

        evaluation_sample = self._evaluation_sample(workload, pruned)
        storage_budget = self._storage_budget(constraints)
        # Optional fast path: cost probes through the workload gamma tensor.
        eval_workload = None
        if self.inum is not None and self.inum.uses_gamma_matrix:
            eval_workload = Workload(evaluation_sample,
                                     name=f"{workload.name}/evaluated")

        configuration = self._greedy_build(evaluation_sample, pruned,
                                           storage_budget, eval_workload,
                                           budget=budget)
        configuration = self._relax(evaluation_sample, configuration,
                                    storage_budget, eval_workload,
                                    budget=budget)

        objective = self._workload_cost(evaluation_sample, configuration,
                                        eval_workload)
        timings["total"] = time.perf_counter() - started
        return Recommendation(
            configuration=configuration,
            advisor_name=self.name,
            objective_estimate=objective,
            timings=timings,
            candidate_count=len(pruned),
            whatif_calls=(self.optimizer.whatif_calls
                          + (self.inum.template_build_calls
                             if self.inum is not None else 0) - whatif_before),
            extras={"evaluated_statements": len(evaluation_sample)},
            timed_out=budget is not None and budget.expired(),
            solve_tier=budget.tier if budget is not None else "exact",
        )

    # ----------------------------------------------------------------- internals
    def _prune_candidates(self, workload: Workload,
                          candidates: CandidateSet) -> list[Index]:
        """Aggressive candidate pruning: keep the most frequently useful indexes."""
        usefulness: dict[Index, float] = {}
        for statement in workload:
            query = statement.query
            shell = query.query_shell() if isinstance(query, UpdateQuery) else query
            for table in shell.tables:
                referenced = {c.column for c in shell.referenced_columns_on(table)}
                sargable = {p.column.column for p in shell.sargable_predicates_on(table)}
                for index in candidates.for_table(table):
                    if index.leading_column in sargable:
                        usefulness[index] = usefulness.get(index, 0.0) + 2.0 * statement.weight
                    elif index.leading_column in referenced:
                        usefulness[index] = usefulness.get(index, 0.0) + statement.weight
        ranked = sorted(usefulness, key=lambda index: -usefulness[index])
        return ranked[:self.max_candidates]

    def _evaluation_sample(self, workload: Workload,
                           pruned: list[Index]) -> tuple[WorkloadStatement, ...]:
        """The statements actually costed during the search.

        The search needs roughly ``|candidates| * rounds`` evaluations per
        statement; when that exceeds the what-if budget the workload is
        sampled down, trading recommendation quality for bounded running time
        (exactly the scale-down behaviour the paper attributes to Tool-A).
        """
        statements = workload.statements
        per_statement_calls = max(1, len(pruned) // 2)
        affordable = max(5, self.whatif_call_budget // per_statement_calls)
        if len(statements) <= affordable:
            return statements
        rng = random.Random(self.seed)
        sampled = rng.sample(list(statements), affordable)
        return tuple(sampled)

    def _storage_budget(self, constraints: Sequence[TuningConstraint]) -> float | None:
        for constraint in constraints:
            if isinstance(constraint, StorageBudgetConstraint):
                return constraint.budget_bytes
        return None

    def _index_size(self, index: Index) -> float:
        return index_size_bytes(index, self.schema.table(index.table))

    def _workload_cost(self, statements: Sequence[WorkloadStatement],
                       configuration: Configuration,
                       eval_workload: Workload | None = None) -> float:
        if eval_workload is not None:
            return sum(self._weighted_costs(statements, eval_workload,
                                            configuration).values())
        effective = self._baseline.union(configuration)
        return sum(statement.weight
                   * self.optimizer.statement_cost(statement.query, effective)
                   for statement in statements)

    def _statement_cost(self, statement: WorkloadStatement,
                        configuration: Configuration) -> float:
        effective = self._baseline.union(configuration)
        return statement.weight * self.optimizer.statement_cost(statement.query,
                                                                effective)

    def _weighted_costs(self, statements: Sequence[WorkloadStatement],
                        eval_workload: Workload, configuration: Configuration
                        ) -> dict[WorkloadStatement, float]:
        """Per-statement weighted deployed costs from one tensor reduction."""
        return weighted_statement_costs(self.inum, statements, eval_workload,
                                        self._baseline.union(configuration))

    def _greedy_build(self, statements: Sequence[WorkloadStatement],
                      pruned: list[Index], storage_budget: float | None,
                      eval_workload: Workload | None = None,
                      budget: SolveBudget | None = None) -> Configuration:
        """Greedily fill the budget with the highest benefit/size candidates.

        Each candidate is scored *in isolation* against the deployed design —
        the greedy does not re-evaluate marginal benefits as the configuration
        grows, so it cannot see index interactions (two candidates that are
        redundant with each other both look attractive).  This is exactly the
        structural weakness of greedy advisors the paper's introduction calls
        out, and the reason Tool-A's recommendations trail CoPhy's even when
        it is given plenty of time.
        """
        if eval_workload is not None:
            baseline_costs = self._weighted_costs(statements, eval_workload,
                                                  Configuration())
        else:
            baseline_costs = {statement: self._statement_cost(statement,
                                                              Configuration())
                              for statement in statements}
        scored: list[tuple[float, Index]] = []
        for index in pruned:
            # Anytime check: candidates scored so far still yield a feasible
            # (possibly smaller) configuration below.
            if budget is not None and budget.expired():
                break
            relevant = [s for s in statements if s.query.references(index.table)]
            if not relevant:
                continue
            candidate_config = Configuration([index])
            if eval_workload is not None:
                probed = self._weighted_costs(statements, eval_workload,
                                              candidate_config)
                benefit = sum(baseline_costs[s] - probed[s] for s in relevant)
            else:
                benefit = sum(baseline_costs[s] - self._statement_cost(s, candidate_config)
                              for s in relevant)
            size = self._index_size(index)
            if benefit > 0:
                scored.append((benefit / max(size, 1.0), index))
        scored.sort(key=lambda pair: -pair[0])

        selected: list[Index] = []
        used_bytes = 0.0
        for _, index in scored:
            size = self._index_size(index)
            if storage_budget is not None and used_bytes + size > storage_budget:
                continue
            selected.append(index)
            used_bytes += size
        return Configuration(selected, name="tool-a")

    def _relax(self, statements: Sequence[WorkloadStatement],
               configuration: Configuration, storage_budget: float | None,
               eval_workload: Workload | None = None,
               budget: SolveBudget | None = None) -> Configuration:
        """Remove indexes while the configuration exceeds the storage budget.

        The relaxation loop restores *feasibility*, so an expired anytime
        budget cannot stop it early — it switches to the cheapest valid exit
        instead: dropping the largest remaining indexes without re-costing.
        """
        if storage_budget is None:
            return configuration
        used = sum(self._index_size(index) for index in configuration)
        while used > storage_budget and len(configuration) > 0:
            if budget is not None and budget.expired():
                largest = max(configuration, key=self._index_size)
                configuration = configuration.without_index(largest)
                used -= self._index_size(largest)
                continue
            best_choice = None
            best_penalty = float("inf")
            for index in configuration:
                reduced = configuration.without_index(index)
                relevant = [s for s in statements if s.query.references(index.table)]
                if eval_workload is not None:
                    probed = self._weighted_costs(statements, eval_workload,
                                                  reduced)
                    penalty = sum(probed[s] for s in relevant)
                else:
                    penalty = sum(self._statement_cost(s, reduced)
                                  for s in relevant)
                if penalty < best_penalty:
                    best_penalty = penalty
                    best_choice = index
            if best_choice is None:
                break
            configuration = configuration.without_index(best_choice)
            used -= self._index_size(best_choice)
        return configuration
