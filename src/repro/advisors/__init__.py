"""Index advisors: the common interface and the paper's comparison baselines.

* :class:`~repro.advisors.base.Advisor` / :class:`~repro.advisors.base.Recommendation`
  — the shared interface (CoPhy implements it too).
* :class:`~repro.advisors.ilp_advisor.IlpAdvisor` — the BIP-per-atomic-
  configuration formulation of Papadomanolakis & Ailamaki [14], with the
  pruning of candidate atomic configurations it requires.
* :class:`~repro.advisors.relaxation.RelaxationAdvisor` — a Tool-A-like
  greedy/relaxation-based advisor in the spirit of Bruno & Chaudhuri [3],
  driven by direct what-if optimizer calls.
* :class:`~repro.advisors.dta.DtaAdvisor` — a Tool-B-like advisor in the
  spirit of the DB2 Design Advisor [20]: per-query candidate selection, a
  knapsack-style greedy under the storage budget, and workload compression by
  sampling.
* :class:`~repro.advisors.scaleout.ScaleOutAdvisor` — divide-and-conquer
  CoPhy (PR 3): workload compression into weighted representatives, BIP
  partitioning along the query–candidate interaction graph, process-parallel
  shard solves and a merge BIP over the per-shard winners.
"""

from repro.advisors.base import Advisor, Recommendation
from repro.advisors.ilp_advisor import IlpAdvisor
from repro.advisors.relaxation import RelaxationAdvisor
from repro.advisors.dta import DtaAdvisor
from repro.advisors.scaleout import ScaleOutAdvisor

__all__ = [
    "Advisor",
    "Recommendation",
    "IlpAdvisor",
    "RelaxationAdvisor",
    "DtaAdvisor",
    "ScaleOutAdvisor",
]
