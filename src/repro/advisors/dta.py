"""A Tool-B-like advisor: per-query best indexes, knapsack greedy and workload
compression by sampling.

This models the behaviour of the commercial advisor the paper calls Tool-B —
the DB2 Design Advisor (Zilio et al., VLDB 2004, reference [20]):

1. **Workload compression**: when the workload exceeds the compression
   threshold, a random sample of statements is tuned in its place.  Sampling
   works well for homogeneous workloads (few distinct templates — each one is
   almost surely represented in the sample) but poorly for heterogeneous
   workloads (many shapes are simply never seen), which is exactly the
   quality pattern Table 1 and Figure 9 of the paper show.
2. **Per-query candidate selection**: for every (compressed) statement the
   advisor asks the what-if optimizer which of a small set of candidate
   indexes helps it most — the paper traces Tool-B using only ~45 candidates.
3. **Knapsack-style greedy** under the storage budget, ranking indexes by
   total benefit per byte.
"""

from __future__ import annotations

import random
import time
from typing import Sequence

from repro.advisors.base import (
    Advisor,
    Recommendation,
    warn_legacy_construction,
    weighted_statement_costs,
)
from repro.bench.metrics import baseline_configuration
from repro.catalog.schema import Schema
from repro.core.constraints import StorageBudgetConstraint, TuningConstraint
from repro.indexes.candidate_generation import CandidateGenerator, CandidateSet
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index, index_size_bytes
from repro.inum.cache import InumCache
from repro.lp.budget import SolveBudget
from repro.optimizer.whatif import WhatIfOptimizer
from repro.workload.query import UpdateQuery
from repro.workload.workload import Workload, WorkloadStatement

__all__ = ["DtaAdvisor"]


class DtaAdvisor(Advisor):
    """Tool-B-like advisor with workload compression by sampling.

    Args:
        schema: Catalog being tuned.
        optimizer: What-if optimizer used to measure per-query index benefits.
        compression_size: Maximum number of statements tuned directly; larger
            workloads are compressed by random sampling.
        max_candidates: Cap on the candidate set examined (Tool-B used ~45).
        candidates_per_query: How many of a query's best indexes are kept.
        seed: Sampling seed.
        inum: Optional INUM cache; when given, per-query benefits and the
            knapsack re-evaluations are answered from its vectorized gamma
            matrices instead of full what-if optimizations, which makes the
            greedy loop's many cost probes cheap.  The cache should wrap
            this advisor's own ``optimizer`` — the reported ``whatif_calls``
            metric only counts that optimizer's work plus the cache's
            template builds.
    """

    name = "tool-b"

    def __init__(self, schema: Schema, optimizer: WhatIfOptimizer | None = None,
                 candidate_generator: CandidateGenerator | None = None,
                 compression_size: int = 25,
                 max_candidates: int = 45,
                 candidates_per_query: int = 3,
                 seed: int = 29,
                 inum: "InumCache | None" = None):
        warn_legacy_construction(type(self))
        self.schema = schema
        self.optimizer = optimizer or WhatIfOptimizer(schema)
        self.candidate_generator = candidate_generator or CandidateGenerator(
            schema, clustered=False, max_key_columns=2)
        self.compression_size = max(1, compression_size)
        self.max_candidates = max(1, max_candidates)
        self.candidates_per_query = max(1, candidates_per_query)
        self.seed = seed
        self.inum = inum
        # Benefits are measured on top of the deployed design (clustered PKs).
        self._baseline = baseline_configuration(schema)

    # ------------------------------------------------------------------ costing
    def _query_cost(self, shell, configuration: Configuration) -> float:
        """Cost of one query shell, via INUM when available."""
        if self.inum is not None:
            return self.inum.cost(shell, configuration)
        return self.optimizer.cost(shell, configuration)

    def _full_statement_cost(self, query, configuration: Configuration) -> float:
        """Full statement cost (maintenance included), via INUM when available."""
        if self.inum is not None:
            return self.inum.statement_cost(query, configuration)
        return self.optimizer.statement_cost(query, configuration)

    # -------------------------------------------------------------------- public
    # reprolint: requires-lock (mutates the shared INUM cache; caller serializes)
    def tune(self, workload: Workload, constraints: Sequence[TuningConstraint] = (),
             candidates: CandidateSet | None = None,
             budget: SolveBudget | None = None) -> Recommendation:
        if budget is not None:
            budget.start()
        timings: dict[str, float] = {}
        started = time.perf_counter()
        # Count template builds like CoPhy/ILP do, so cross-advisor optimizer
        # call comparisons stay apples to apples when INUM costing is used.
        whatif_before = self.optimizer.whatif_calls + (
            self.inum.template_build_calls if self.inum is not None else 0)

        compressed = self._compress(workload)
        per_query_best = self._per_query_candidates(compressed, candidates)
        storage_budget = self._storage_budget(constraints)
        # With INUM available the greedy's many workload costings run through
        # the workload gamma tensor: one batched reduction per probed
        # configuration instead of a Python loop over the statements.
        eval_workload = None
        if self.inum is not None and self.inum.uses_gamma_matrix:
            eval_workload = Workload(compressed,
                                     name=f"{workload.name}/compressed")
        configuration = self._knapsack(compressed, per_query_best,
                                       storage_budget, eval_workload,
                                       budget=budget)

        deployed = self._baseline.union(configuration)
        if eval_workload is not None:
            objective = sum(self._weighted_costs(compressed, eval_workload,
                                                 configuration).values())
        else:
            objective = sum(
                statement.weight
                * self._full_statement_cost(statement.query, deployed)
                for statement in compressed)
        timings["total"] = time.perf_counter() - started
        return Recommendation(
            configuration=configuration,
            advisor_name=self.name,
            objective_estimate=objective,
            timings=timings,
            candidate_count=len(per_query_best),
            whatif_calls=(self.optimizer.whatif_calls
                          + (self.inum.template_build_calls
                             if self.inum is not None else 0) - whatif_before),
            extras={"compressed_statements": len(compressed),
                    "original_statements": len(workload)},
            timed_out=budget is not None and budget.expired(),
            solve_tier=budget.tier if budget is not None else "exact",
        )

    # ----------------------------------------------------------------- internals
    def _compress(self, workload: Workload) -> tuple[WorkloadStatement, ...]:
        statements = workload.statements
        if len(statements) <= self.compression_size:
            return statements
        rng = random.Random(self.seed)
        return tuple(rng.sample(list(statements), self.compression_size))

    def _per_query_candidates(self, statements: Sequence[WorkloadStatement],
                              candidates: CandidateSet | None) -> list[Index]:
        """Pick each statement's best few indexes, capped globally."""
        benefit_by_index: dict[Index, float] = {}
        for statement in statements:
            query = statement.query
            shell = query.query_shell() if isinstance(query, UpdateQuery) else query
            if candidates is None:
                per_query = self.candidate_generator.candidates_for_query(shell)
            else:
                per_query = tuple(
                    index for table in shell.tables
                    for index in candidates.for_table(table))
            if not per_query:
                continue
            if self.inum is not None and self.inum.uses_gamma_matrix:
                # One batched column registration instead of growing the
                # query's gamma matrix by one column per scored candidate.
                self.inum.gamma_matrix(shell).ensure_columns(
                    (*self._baseline, *per_query))
            baseline = self._query_cost(shell, self._baseline)
            scored: list[tuple[float, Index]] = []
            for index in per_query:
                with_index = self._query_cost(shell, self._baseline.with_index(index))
                benefit = baseline - with_index
                if benefit > 0:
                    scored.append((benefit, index))
            scored.sort(key=lambda pair: -pair[0])
            for benefit, index in scored[:self.candidates_per_query]:
                benefit_by_index[index] = (benefit_by_index.get(index, 0.0)
                                           + statement.weight * benefit)
        ranked = sorted(benefit_by_index, key=lambda index: -benefit_by_index[index])
        return ranked[:self.max_candidates]

    def _storage_budget(self, constraints: Sequence[TuningConstraint]) -> float | None:
        for constraint in constraints:
            if isinstance(constraint, StorageBudgetConstraint):
                return constraint.budget_bytes
        return None

    def _index_size(self, index: Index) -> float:
        return index_size_bytes(index, self.schema.table(index.table))

    def _statement_cost(self, statement: WorkloadStatement,
                        configuration: Configuration) -> float:
        effective = self._baseline.union(configuration)
        return statement.weight * self._full_statement_cost(statement.query,
                                                            effective)

    def _weighted_costs(self, statements: Sequence[WorkloadStatement],
                        eval_workload: Workload, configuration: Configuration
                        ) -> dict[WorkloadStatement, float]:
        """Per-statement weighted deployed costs from one tensor reduction."""
        return weighted_statement_costs(self.inum, statements, eval_workload,
                                        self._baseline.union(configuration))

    def _knapsack(self, statements: Sequence[WorkloadStatement],
                  candidates: list[Index], storage_budget: float | None,
                  eval_workload: Workload | None = None,
                  budget: SolveBudget | None = None) -> Configuration:
        """Marginal-benefit greedy knapsack over the *compressed* workload.

        Unlike Tool-A's one-shot ranking, the benefit of every remaining
        candidate is re-evaluated after each pick, so index interactions
        within the compressed workload are accounted for.  The compression is
        the advisor's Achilles heel instead: whatever the sample misses (the
        heterogeneous-workload case) cannot influence the selection.

        When ``eval_workload`` is given (INUM with gamma matrices), every
        probed configuration is costed with one batched tensor reduction;
        the per-statement values are bit-identical to the loop, so the
        greedy's picks are unchanged.
        """
        configuration = Configuration(name="tool-b")
        if eval_workload is not None:
            per_statement = self._weighted_costs(statements, eval_workload,
                                                 configuration)
        else:
            per_statement = {statement: self._statement_cost(statement, configuration)
                             for statement in statements}
        used = 0.0
        remaining = list(candidates)
        while remaining:
            # Anytime check at pick granularity: the configuration built so
            # far is always feasible, so stopping here is safe.
            if budget is not None and budget.expired():
                break
            best_index = None
            best_ratio = 0.0
            best_costs: dict[WorkloadStatement, float] = {}
            for index in remaining:
                if budget is not None and budget.expired():
                    break
                size = self._index_size(index)
                if storage_budget is not None and used + size > storage_budget:
                    continue
                relevant = [s for s in statements
                            if s.query.references(index.table)]
                if not relevant:
                    continue
                candidate_config = configuration.with_index(index)
                if eval_workload is not None:
                    probed = self._weighted_costs(statements, eval_workload,
                                                  candidate_config)
                    new_costs = {s: probed[s] for s in relevant}
                else:
                    new_costs = {s: self._statement_cost(s, candidate_config)
                                 for s in relevant}
                benefit = sum(per_statement[s] - new_costs[s] for s in relevant)
                ratio = benefit / max(size, 1.0)
                if ratio > best_ratio:
                    best_ratio = ratio
                    best_index = index
                    best_costs = new_costs
            if best_index is None or best_ratio <= 0.0:
                break
            configuration = configuration.with_index(best_index)
            used += self._index_size(best_index)
            per_statement.update(best_costs)
            remaining.remove(best_index)
        return configuration
