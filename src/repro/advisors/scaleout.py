"""The scale-out advisor: compress, partition, solve shards, merge.

Wires the :mod:`repro.scale` subsystem (PR 3) into an end-to-end advisor for
workloads too large for one monolithic BIP solve:

1. **Compress** the workload into weighted representatives
   (:func:`repro.scale.compress.compress_workload`) — only representatives
   ever reach the optimizer, so INUM preprocessing and BIP size scale with
   the number of *distinct* statement shapes, not the statement count.
2. **Partition** the BIP along the query–candidate interaction graph into
   balanced shards with a water-filled storage-budget split
   (:mod:`repro.scale.partition`).
3. **Solve** the per-shard BIPs inline or in a process pool
   (:class:`repro.scale.executor.ShardExecutor`).
4. **Merge**: a final BIP over the representative workload restricted to the
   union of per-shard winners, under the *global* constraints — restoring
   feasibility (the shard budget split is only a search heuristic) and
   re-deciding overlaps between shards.

The recommendation quality is bounded by the compression error and the
sharding of connected components; with the exact compression fallback
(``max_cost_error=0.0``) and one shard per component the pipeline reproduces
the monolithic recommendation up to solver gap tolerance.
"""

from __future__ import annotations

import logging
import time
from typing import Sequence

from repro.advisors.base import Advisor, Recommendation, warn_legacy_construction
from repro.catalog.schema import Schema
from repro.core.bip_builder import BipBuilder
from repro.core.constraints import (
    StorageBudgetConstraint,
    TuningConstraint,
    split_constraints,
)
from repro.core.heuristics import greedy_knapsack, unsupported_constraint
from repro.core.solver import CoPhySolver, SolverBackend
from repro.exceptions import ConstraintError
from repro.indexes.candidate_generation import CandidateGenerator, CandidateSet
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.inum.cache import InumCache
from repro.lp.budget import SolveBudget
from repro.obs.log import log_event
from repro.obs.trace import adopt, span
from repro.optimizer.whatif import WhatIfOptimizer
from repro.scale.compress import compress_workload
from repro.scale.executor import ShardExecutor
from repro.scale.partition import partition_workload, split_budget
from repro.workload.workload import Workload

__all__ = ["ScaleOutAdvisor"]


class ScaleOutAdvisor(Advisor):
    """Divide-and-conquer CoPhy for workloads beyond a single solve.

    Args:
        schema: Catalog being tuned.
        optimizer: Optional shared what-if optimizer.
        inum: Optional shared INUM cache (one is created otherwise).
        candidate_generator: Optional custom CGen instance (run on the
            *compressed* workload, so the candidate universe also scales with
            distinct shapes).
        signature: Compression signature mode (``"structural"`` needs no
            optimizer work; ``"gamma"`` clusters on measured INUM cost
            vectors).
        max_cost_error: Relative cost-error bound of the compression;
            ``0.0`` is the exact fallback.
        compress: Disable compression entirely with ``False`` (partitioning
            and the process pool still apply).
        shard_count: Desired number of shards (``None`` = one per connected
            component of the interaction graph).
        shard_workers: Process count for shard solves (``None`` uses
            ``os.cpu_count()``; 1 solves inline sharing this advisor's INUM
            cache).
        budget_oversubscription: Pool factor for the water-filled storage
            budget split (``None`` lets every shard fill up to the global
            budget; ``1.0`` partitions the budget strictly — see
            :func:`repro.scale.partition.split_budget`).
        build_processes: Process count for sharded gamma-matrix builds during
            gamma-signature compression.
        backend / gap_tolerance / time_limit_seconds: Solver settings for the
            shard and merge solves.
        retry_policy / fault_plan: Reliability knobs forwarded to the
            :class:`~repro.scale.executor.ShardExecutor` (``None`` defers to
            the executor defaults / the process-wide armed fault plan).
    """

    name = "scaleout"

    def __init__(self, schema: Schema, optimizer: WhatIfOptimizer | None = None,
                 inum: InumCache | None = None,
                 candidate_generator: CandidateGenerator | None = None,
                 signature: str = "structural",
                 max_cost_error: float = 0.0,
                 compress: bool = True,
                 shard_count: int | None = None,
                 shard_workers: int | None = None,
                 budget_oversubscription: float | None = None,
                 build_processes: int | None = None,
                 backend: SolverBackend = SolverBackend.MILP,
                 gap_tolerance: float = 0.05,
                 time_limit_seconds: float | None = None,
                 retry_policy=None, fault_plan=None):
        warn_legacy_construction(type(self))
        self.schema = schema
        self.optimizer = optimizer or WhatIfOptimizer(schema)
        self.inum = inum or InumCache(self.optimizer)
        self.candidate_generator = candidate_generator or CandidateGenerator(schema)
        self.signature = signature
        self.max_cost_error = max_cost_error
        self.compress = compress
        self.shard_count = shard_count
        self.shard_workers = shard_workers
        self.budget_oversubscription = budget_oversubscription
        self.build_processes = build_processes
        self.backend = backend
        self.gap_tolerance = gap_tolerance
        self.time_limit_seconds = time_limit_seconds
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan

    # -------------------------------------------------------------------- public
    # reprolint: requires-lock (mutates the shared INUM cache; caller serializes)
    def tune(self, workload: Workload,
             constraints: Sequence[TuningConstraint] = (),
             candidates: CandidateSet | None = None,
             budget: SolveBudget | None = None) -> Recommendation:
        hard, soft = split_constraints(constraints)
        if soft:
            raise ConstraintError(
                "ScaleOutAdvisor does not support soft constraints; "
                "use CoPhyAdvisor for Pareto exploration")
        if budget is not None:
            budget.start()
        timings: dict[str, float] = {}
        extras: dict = {}
        started = time.perf_counter()
        whatif_before = self.optimizer.whatif_calls + self.inum.template_build_calls

        # 1. Compression: everything downstream sees representatives only.
        compress_started = time.perf_counter()
        with span("compress", enabled=self.compress,
                  statements=len(workload)) as compress_span:
            if self.compress:
                if self.signature == "gamma":
                    # Gamma signatures read every statement's templates and
                    # heap gamma columns: batch-build them up front (across
                    # processes when configured) instead of one statement at
                    # a time inside the signature loop.
                    self.inum.build_workload(
                        workload, build_processes=self.build_processes)
                compressed = compress_workload(
                    workload, signature=self.signature,
                    max_cost_error=self.max_cost_error,
                    inum=self.inum if self.signature == "gamma" else None)
                tuned = compressed.workload
                extras["compression"] = compressed.summary()
                compress_span.set(representatives=len(tuned))
            else:
                compressed = None
                tuned = workload
        timings["compress"] = time.perf_counter() - compress_started

        if candidates is None:
            candidates = self.candidate_generator.generate(tuned)

        # Anytime handling: the heuristic tier (and a cascade whose deadline
        # already fired during compression) answers with the greedy knapsack
        # over the representative workload — no shard/merge BIPs at all.
        if budget is not None and budget.tier != "exact":
            blocker = unsupported_constraint(hard)
            if blocker is not None and budget.tier == "heuristic":
                raise ConstraintError(
                    f"Constraint {getattr(blocker, 'name', blocker)!r} is "
                    "not supported by solve_tier='heuristic'; use 'cascade' "
                    "or 'exact'")
            if blocker is None and (budget.tier == "heuristic"
                                    or budget.expired()):
                self.inum.prepare(tuned, candidates)
                heuristic_started = time.perf_counter()
                heuristic = greedy_knapsack(self.inum, tuned, candidates,
                                            hard, budget=budget)
                timings["heuristic"] = time.perf_counter() - heuristic_started
                timings["total"] = time.perf_counter() - started
                extras["heuristic"] = {
                    "objective": heuristic.objective,
                    "lower_bound": heuristic.lower_bound,
                    "probes": heuristic.probes,
                }
                return Recommendation(
                    configuration=Configuration(
                        heuristic.configuration.indexes,
                        name="scaleout-recommendation"),
                    advisor_name=self.name,
                    objective_estimate=heuristic.objective,
                    timings=timings,
                    candidate_count=len(candidates),
                    whatif_calls=(self.optimizer.whatif_calls
                                  + self.inum.template_build_calls
                                  - whatif_before),
                    gap=heuristic.gap,
                    extras=extras,
                    timed_out=budget.expired(),
                    solve_tier="heuristic",
                )

        # 2. Partitioning along the interaction graph + budget water-filling.
        partition_started = time.perf_counter()
        with span("partition", candidates=len(candidates)) as partition_span:
            plan = partition_workload(tuned, candidates,
                                      shard_count=self.shard_count)
            storage_budget = self._storage_budget(hard)
            plan = split_budget(plan, candidates, storage_budget,
                                oversubscription=self.budget_oversubscription)
            partition_span.set(shards=plan.shard_count)
        timings["partition"] = time.perf_counter() - partition_started
        extras["partition"] = plan.summary()

        # 3. Per-shard solves (inline below 2 effective workers, else a
        #    process pool; INUM preprocessing happens per shard, so it also
        #    scales with the representatives).  An anytime budget is
        #    apportioned into equal wall-clock slices per shard wave, with a
        #    reserved fraction left over for the merge BIP.
        solve_started = time.perf_counter()
        executor = ShardExecutor(workers=self.shard_workers,
                                 backend=self.backend,
                                 gap_tolerance=self.gap_tolerance,
                                 time_limit_seconds=self.time_limit_seconds,
                                 retry_policy=self.retry_policy,
                                 fault_plan=self.fault_plan)
        shard_time_limit = None
        if budget is not None:
            shard_time_limit = budget.shard_slice_seconds(
                plan.shard_count,
                workers=executor.effective_workers(plan.shard_count))
        with span("solve", shards=plan.shard_count,
                  workers=executor.effective_workers(plan.shard_count)):
            results = executor.solve_shards(plan, self.schema,
                                            inum=self.inum,
                                            shard_time_limit=shard_time_limit,
                                            budget=budget)
            # Pool shards solved under their own worker-side tracers; graft
            # each exported tree here so the request trace stays one tree
            # (inline shards already nested themselves under this span).
            for result in results:
                adopt(result.trace)
        timings["solve"] = time.perf_counter() - solve_started
        extras["shard_workers"] = executor.effective_workers(plan.shard_count)
        extras["shards"] = [
            {"position": result.position,
             "statements": int(result.statistics.get("statements", 0)),
             "candidates": int(result.statistics.get("candidates", 0)),
             "selected": len(result.indexes),
             "objective": result.objective,
             "gap": result.gap,
             "seconds": round(result.solve_seconds, 4),
             "retries": result.retries,
             "recovered_inline": result.recovered_inline,
             "failed": result.failed}
            for result in results]

        # Graceful degradation: shards whose every attempt failed contribute
        # no winners; the merge proceeds over the survivors and the result is
        # flagged degraded instead of the whole tune erroring out.
        survivors = [result for result in results if not result.failed]
        lost = [result for result in results if result.failed]
        retries = sum(result.retries for result in results)
        faults_survived = sum(result.faults_survived for result in results)
        if retries or faults_survived or lost:
            extras["faults"] = {
                "retries": retries,
                "faults_survived": faults_survived,
                "failed_shards": [result.position for result in lost],
                "failures": {result.position: result.failure
                             for result in lost},
            }
        if lost:
            log_event(logging.WARNING, "scaleout_degraded",
                      failed_shards=[result.position for result in lost],
                      surviving_shards=len(survivors))

        # 4. Merge BIP over the union of winners under the global constraints
        #    (running on whatever wall clock the budget has left).
        merge_started = time.perf_counter()
        winners = self._union_of_winners(survivors)
        merge_timed_out = False
        with span("merge", winners=len(winners)) as merge_span:
            if winners:
                configuration, objective, gap, gap_trace, merge_stats, \
                    merge_timed_out = self._merge(tuned, winners, hard,
                                                  budget=budget)
            else:
                configuration = Configuration(name="scaleout-recommendation")
                objective = self.inum.workload_cost(tuned, configuration)
                gap, gap_trace, merge_stats = 0.0, (), {}
            merge_span.set(indexes=len(configuration),
                           timed_out=merge_timed_out)
        timings["merge"] = time.perf_counter() - merge_started
        extras["merge"] = merge_stats
        timings["total"] = time.perf_counter() - started

        # Process-pool shard solves run on worker-side optimizers whose work
        # the local counters never see; the results report it explicitly.
        worker_calls = sum(result.worker_optimizer_calls for result in results)
        return Recommendation(
            configuration=configuration,
            advisor_name=self.name,
            objective_estimate=objective,
            timings=timings,
            candidate_count=len(candidates),
            whatif_calls=(self.optimizer.whatif_calls
                          + self.inum.template_build_calls
                          + worker_calls - whatif_before),
            gap=gap,
            gap_trace=gap_trace,
            extras=extras,
            timed_out=(any(result.timed_out for result in results)
                       or merge_timed_out
                       or (budget is not None and budget.expired())),
            degraded=bool(lost),
            retries=retries,
            faults_survived=faults_survived,
        )

    # ----------------------------------------------------------------- internals
    def _union_of_winners(self, results) -> list[Index]:
        """Deduplicated per-shard winners, in shard order (deterministic)."""
        winners: dict[Index, None] = {}
        for result in results:
            for index in result.indexes:
                winners.setdefault(index)
        return list(winners)

    def _merge(self, tuned: Workload, winners: list[Index],
               hard: Sequence[TuningConstraint],
               budget: SolveBudget | None = None):
        """The final merge BIP: global constraints over the winner union."""
        merge_candidates = CandidateSet(self.schema, winners)
        self.inum.prepare(tuned, merge_candidates)
        bip = BipBuilder(self.inum).build(tuned, merge_candidates,
                                          model_name="scaleout-merge-bip")
        solver = CoPhySolver(backend=self.backend,
                             gap_tolerance=self.gap_tolerance,
                             time_limit_seconds=self.time_limit_seconds)
        report = solver.solve(bip, hard_constraints=hard, budget=budget)
        configuration = Configuration(report.configuration.indexes,
                                      name="scaleout-recommendation")
        stats = {"winners": len(winners),
                 "variables": bip.statistics.get("variables", 0.0),
                 "constraints": bip.statistics.get("constraints", 0.0),
                 "seconds": round(report.solve_seconds, 4)}
        return (configuration, report.objective, report.gap, report.gap_trace,
                stats, report.timed_out)

    @staticmethod
    def _storage_budget(constraints: Sequence[TuningConstraint]) -> float | None:
        for constraint in constraints:
            if isinstance(constraint, StorageBudgetConstraint):
                return constraint.budget_bytes
        return None
