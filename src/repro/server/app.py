"""The HTTP front-end: ``TuningServer`` over a shared ``TuningService``.

Built entirely on the stdlib (``http.server.ThreadingHTTPServer`` — one
thread per connection, which composes with the service's per-context
locking), so the tuning server adds zero dependencies.

Endpoints (all JSON, all under :data:`~repro.server.protocol.API_PREFIX`):

======  ==========================  ===========================================
Method  Path                        Semantics
======  ==========================  ===========================================
POST    ``/v1/tune``                One encoded request -> one result payload.
POST    ``/v1/tune_batch``          ``{"requests": [...]}`` served via
                                    ``TuningService.tune_many`` (concurrent;
                                    all-or-nothing on error).
POST    ``/v1/sessions``            Open an interactive session; returns
                                    ``{"session_id": ...}``.
POST    ``/v1/sessions/{id}/tune``  One session step: ``{"operation":
                                    "recommend" | "add_candidates" |
                                    "remove_candidates" |
                                    "update_constraints", ...}``.
DELETE  ``/v1/sessions/{id}``       Close a session.
GET     ``/v1/health``              Liveness + advisor registry.
GET     ``/v1/stats``               Service counters: contexts, cache sizes,
                                    LRU/TTL evictions, namespacing.
GET     ``/v1/metrics``             The tuner's metrics registry in Prometheus
                                    text exposition format (the one non-JSON
                                    endpoint).
GET     ``/v1/traces``              Newest-first summaries of the bounded
                                    trace store (``?limit=N`` truncates).
GET     ``/v1/traces/{id}``         One stored trace: full span tree plus the
                                    sampled hotspot table when captured; 404
                                    once evicted.
======  ==========================  ===========================================

Observability (PR 8): a client-supplied ``X-Repro-Trace-Id`` header becomes
the pending trace id for the dispatched pipeline — the returned result's
``trace`` payload carries the same id, and the header is echoed on every
response.  Each dispatch records ``repro_http_requests_total`` /
``repro_http_request_seconds`` under a bounded-cardinality route pattern
(``/v1/sessions/{id}/tune``, never raw paths), and error paths that used to
be silent (client disconnects, 5xx envelopes) log structured warnings with
the trace id attached.

Errors travel as the structured envelope of :mod:`repro.server.protocol`.
Equal client schema payloads are canonicalized through a
:class:`~repro.server.wire.SchemaCache` so repeated traffic shares one
``SchemaContext`` (optimizer, templates, tensors) — which is exactly why the
service-level eviction (``max_contexts`` / ``context_ttl_s``) and statement
auto-namespacing exist.
"""

from __future__ import annotations

import argparse
import itertools
import json
import logging
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.api.registry import available_advisors
from repro.api.result import index_from_payload
from repro.api.service import TuningService, TuningSession
from repro.api.specs import TuningRequest
from repro.obs.log import configure as configure_logging
from repro.obs.log import log_event
from repro.obs.metrics import METRICS_CONTENT_TYPE, use_registry
from repro.obs.trace import trace_context
from repro.server.protocol import (
    API_PREFIX,
    TRACE_HEADER,
    TuningServerError,
    envelope_for_exception,
    error_envelope,
    response_headers_for,
)
from repro.server.wire import (
    WIRE_VERSION,
    SchemaCache,
    WireFormatError,
    decode_constraint,
    decode_request,
)

__all__ = ["TuningServer", "install_signal_handlers", "main"]

#: Session tune operations and the request-body key carrying their argument.
_SESSION_OPERATIONS = {
    "recommend": None,
    "add_candidates": "indexes",
    "remove_candidates": "indexes",
    "update_constraints": "constraints",
}


class TuningServer:
    """A threaded HTTP server over one shared :class:`TuningService`.

    Args:
        service: An existing service to front; a fresh one (with the given
            ``namespace_statements`` / eviction knobs) is created when
            omitted.
        host, port: Bind address.  ``port=0`` picks a free port — read it
            back from :attr:`port` (the pattern tests and in-process examples
            use).
        namespace_statements / max_contexts / context_ttl_s: Forwarded to the
            created :class:`TuningService` (ignored when ``service`` is
            supplied).  ``max_contexts`` *defaults to 64* here — unlike the
            embedded service — because a server's schema contexts are born
            from decoded payloads: once the schema cache rotates an entry
            out, the orphaned context would be unreachable yet retained
            forever without a cap.
        max_schemas: LRU cap of the schema canonicalization cache.
        session_ttl_s: Idle TTL for interactive sessions.  A client that
            opens a session and vanishes would otherwise pin its workload,
            candidate set and delta-BIP state for the process lifetime;
            sessions idle for longer than the TTL are reaped on the next
            session/stat touch (like schema contexts) and report 404 from
            then on.
        default_time_budget_ms: Anytime budget applied to requests that do
            not set one themselves (``None`` leaves them unbudgeted).
        max_time_budget_ms: Upper clamp on client-requested budgets, so one
            request cannot reserve a worker thread for an arbitrary wall
            time.
        max_pending / retry_after_s: Admission control, forwarded to the
            created :class:`TuningService` (ignored when ``service`` is
            supplied): at most ``max_pending`` tuning requests in flight,
            beyond which the server answers 429 with a ``Retry-After``
            header of ``retry_after_s``.
        drain_timeout_s: Upper bound :meth:`stop` waits for in-flight
            requests to finish before closing (graceful shutdown).
        trace_store_size / slow_threshold_ms / profile_every: Performance
            introspection, forwarded to the created :class:`TuningService`
            (ignored when ``service`` is supplied): the ``/v1/traces`` ring
            capacity (0 disables it), the slow-request pinning threshold,
            and the sampled-``cProfile`` cadence.
    """

    def __init__(self, service: TuningService | None = None,
                 host: str = "127.0.0.1", port: int = 0, *,
                 namespace_statements: bool = False,
                 max_contexts: int | None = 64,
                 context_ttl_s: float | None = None,
                 max_schemas: int | None = 32,
                 session_ttl_s: float | None = None,
                 default_time_budget_ms: float | None = None,
                 max_time_budget_ms: float | None = None,
                 max_pending: int | None = None,
                 retry_after_s: float = 1.0,
                 drain_timeout_s: float = 10.0,
                 trace_store_size: int = 128,
                 slow_threshold_ms: float | None = None,
                 profile_every: int | None = None):
        if session_ttl_s is not None and session_ttl_s <= 0:
            raise ValueError("session_ttl_s must be positive (or None)")
        if default_time_budget_ms is not None and default_time_budget_ms <= 0:
            raise ValueError("default_time_budget_ms must be positive (or None)")
        if max_time_budget_ms is not None and max_time_budget_ms <= 0:
            raise ValueError("max_time_budget_ms must be positive (or None)")
        if drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be non-negative")
        if service is None:
            service = TuningService(namespace_statements=namespace_statements,
                                    max_contexts=max_contexts,
                                    context_ttl_s=context_ttl_s,
                                    max_pending=max_pending,
                                    retry_after_s=retry_after_s,
                                    trace_store_size=trace_store_size,
                                    slow_threshold_ms=slow_threshold_ms,
                                    profile_every=profile_every)
        self.service = service
        self.schema_cache = SchemaCache(max_schemas=max_schemas)
        self.session_ttl_s = session_ttl_s
        self.default_time_budget_ms = default_time_budget_ms
        self.max_time_budget_ms = max_time_budget_ms
        self.drain_timeout_s = drain_timeout_s
        #: session id -> (session, decoded request, last-used monotonic time).
        self._sessions: dict[str, list] = {}
        self._sessions_lock = threading.Lock()
        self._session_ids = itertools.count(1)
        self._httpd = _TuningHTTPServer((host, port), _TuningRequestHandler,
                                        owner=self)
        self._thread: threading.Thread | None = None
        self._serving = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        #: Serializes stop(): signal handlers and the main thread may race it.
        self._stop_lock = threading.Lock()

    # ---------------------------------------------------------------- accessors
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def session_count(self) -> int:
        with self._sessions_lock:
            self._reap_sessions()
            return len(self._sessions)

    def _reap_sessions(self) -> None:
        """Drop sessions idle past the TTL (caller holds the sessions lock)."""
        if self.session_ttl_s is None:
            return
        now = time.monotonic()
        expired = [session_id
                   for session_id, (_, _, last_used) in self._sessions.items()
                   if now - last_used > self.session_ttl_s]
        for session_id in expired:
            del self._sessions[session_id]
        if expired:
            self.service.note_sessions_reaped(len(expired))

    # ---------------------------------------------------------------- lifecycle
    def start(self) -> "TuningServer":
        """Serve on a daemon thread (in-process servers: tests, examples)."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(target=self._httpd.serve_forever,
                                            name="tuning-server", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._serving = True
        self._httpd.serve_forever()

    # In-flight request accounting for graceful shutdown; bumped by the
    # request handler around every dispatch.
    def _request_started(self) -> None:
        with self._inflight_lock:
            self._inflight += 1

    def _request_finished(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight_requests(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def stop(self, drain_timeout_s: float | None = None) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, then close.

        New connections stop being accepted immediately; requests already
        being served get up to ``drain_timeout_s`` (the constructor value
        when ``None``) to finish before the listening socket and the
        service's thread pool are torn down — no mid-solve connection
        resets on deploy.  Idempotent, and safe to call from a signal
        handler's helper thread while ``serve_forever`` runs elsewhere.
        """
        timeout = (self.drain_timeout_s if drain_timeout_s is None
                   else drain_timeout_s)
        with self._stop_lock:
            if self._serving:
                # shutdown() waits on an event only serve_forever() sets;
                # calling it on a never-started server would block forever.
                self._httpd.shutdown()
                self._serving = False
            deadline = time.monotonic() + max(0.0, timeout)
            while self.inflight_requests > 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            self._httpd.server_close()
            if self._thread is not None:
                self._thread.join(timeout=10)
                self._thread = None
            self.service.close()

    def close(self) -> None:
        """Stop serving and shut the service's thread pool down (idempotent)."""
        self.stop()

    def __enter__(self) -> "TuningServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- endpoints
    def handle_health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "wire_version": WIRE_VERSION,
            "advisors": list(available_advisors()),
            "sessions_open": self.session_count,
        }

    def handle_metrics(self) -> str:
        """The ``/v1/metrics`` body: Prometheus text over the tuner registry."""
        return self.service.tuner.metrics.render()

    def handle_stats(self) -> dict[str, Any]:
        # session_count reaps first, so a stats-polling monitor doubles as
        # the session reaper on an otherwise idle server.
        return {
            "wire_version": WIRE_VERSION,
            "service": self.service.stats(),
            "cached_schemas": len(self.schema_cache),
            "sessions_open": self.session_count,
            "session_ttl_s": self.session_ttl_s,
            "default_time_budget_ms": self.default_time_budget_ms,
            "max_time_budget_ms": self.max_time_budget_ms,
        }

    def handle_traces(self, limit: int | None = None) -> dict[str, Any]:
        """The ``/v1/traces`` listing: newest-first store summaries."""
        store = self.service.tuner.trace_store
        if store is None:
            return {"enabled": False, "traces": [], "count": 0,
                    "capacity": 0, "slow_threshold_ms": None}
        return {
            "enabled": True,
            "traces": store.summaries(limit),
            "count": len(store),
            "capacity": store.capacity,
            "slow_threshold_ms": store.slow_threshold_ms,
        }

    def handle_trace(self, trace_id: str) -> dict[str, Any]:
        """One stored trace by id; 404 once evicted (or never recorded)."""
        store = self.service.tuner.trace_store
        entry = store.get(trace_id) if store is not None else None
        if entry is None:
            raise TuningServerError(
                f"Unknown trace {trace_id!r} (evicted or never recorded)",
                status=404, error_type="UnknownTrace")
        return entry

    def _budgeted(self, request: TuningRequest) -> TuningRequest:
        """Apply the server's anytime-budget policy to one decoded request.

        The default budget only fills in for requests that carry none; the
        clamp overrides client budgets above the server's ceiling.  Both
        rewrite the advisor spec, so the applied budget lands in the result's
        provenance exactly as if the client had asked for it.
        """
        spec = request.resolved_advisor()
        budget_ms = spec.time_budget_ms
        if budget_ms is None:
            budget_ms = self.default_time_budget_ms
        if self.max_time_budget_ms is not None and budget_ms is not None:
            budget_ms = min(budget_ms, self.max_time_budget_ms)
        if budget_ms == spec.time_budget_ms:
            return request
        return replace(request,
                       advisor=replace(spec, time_budget_ms=budget_ms))

    def handle_tune(self, body: Any) -> dict[str, Any]:
        request = self._budgeted(
            decode_request(body, schema_cache=self.schema_cache))
        result = self.service.tune(request)
        return {"result": result.to_payload()}

    def handle_tune_batch(self, body: Any) -> dict[str, Any]:
        payloads = body.get("requests") if isinstance(body, dict) else None
        if not isinstance(payloads, list):
            raise WireFormatError(
                "tune_batch body must be {\"requests\": [<request>, ...]}")
        requests = [self._budgeted(
                        decode_request(entry, schema_cache=self.schema_cache))
                    for entry in payloads]
        results = self.service.tune_many(requests)
        return {"results": [result.to_payload() for result in results]}

    def handle_open_session(self, body: Any) -> dict[str, Any]:
        request = decode_request(body, schema_cache=self.schema_cache)
        session = self.service.open_session(request)
        with self._sessions_lock:
            self._reap_sessions()
            session_id = f"s{next(self._session_ids)}"
            self._sessions[session_id] = [session, request, time.monotonic()]
        return {"session_id": session_id}

    def handle_session_tune(self, session_id: str, body: Any
                            ) -> dict[str, Any]:
        session, request = self._session(session_id)
        operation = (body.get("operation", "recommend")
                     if isinstance(body, dict) else "recommend")
        if operation not in _SESSION_OPERATIONS:
            raise WireFormatError(
                f"Unknown session operation {operation!r}; expected one of "
                f"{sorted(_SESSION_OPERATIONS)}")
        argument_key = _SESSION_OPERATIONS[operation]
        if argument_key is None:
            result = session.recommend()
        else:
            entries = body.get(argument_key)
            if not isinstance(entries, list):
                raise WireFormatError(
                    f"Session operation {operation!r} needs a "
                    f"{argument_key!r} list in the body")
            if argument_key == "indexes":
                argument = [index_from_payload(entry) for entry in entries]
            else:
                argument = [decode_constraint(entry, request.workload)
                            for entry in entries]
            result = getattr(session, operation)(argument)
        return {"result": result.to_payload()}

    def handle_close_session(self, session_id: str) -> dict[str, Any]:
        with self._sessions_lock:
            self._reap_sessions()
            closed = self._sessions.pop(session_id, None)
        if closed is None:
            # Matches the documented contract: 404 = unknown session (the
            # client SDK guards against double-DELETE itself).  A TTL-reaped
            # session is indistinguishable from an unknown one on purpose.
            raise TuningServerError(f"Unknown session {session_id!r}",
                                    status=404, error_type="UnknownSession")
        return {"closed": True, "session_id": session_id}

    def _session(self, session_id: str) -> tuple[TuningSession, TuningRequest]:
        with self._sessions_lock:
            self._reap_sessions()
            entry = self._sessions.get(session_id)
            if entry is not None:
                entry[2] = time.monotonic()
                session, request, _ = entry
        if entry is None:
            raise TuningServerError(f"Unknown session {session_id!r}",
                                    status=404, error_type="UnknownSession")
        return session, request


class _TuningHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    #: Restart accept() on transient socket errors instead of dying.
    allow_reuse_address = True

    def __init__(self, address, handler_class, owner: TuningServer):
        self.owner = owner
        super().__init__(address, handler_class)


#: Upper bound on request bodies; large TPC-H-sized requests are ~1 MB, so
#: this is generous while keeping a hostile Content-Length from buffering
#: arbitrary amounts of memory.
MAX_BODY_BYTES = 64 * 1024 * 1024


def _endpoint_pattern(method: str, path: str) -> str:
    """Collapse a raw request path onto its route pattern for metric labels.

    Session ids would make ``repro_http_requests_total`` unbounded, so they
    are folded into ``{id}``; anything unroutable is ``unknown`` (one label
    value no matter what paths a scanner probes).
    """
    fixed = {f"{API_PREFIX}/health", f"{API_PREFIX}/stats",
             f"{API_PREFIX}/metrics", f"{API_PREFIX}/tune",
             f"{API_PREFIX}/tune_batch", f"{API_PREFIX}/sessions",
             f"{API_PREFIX}/traces"}
    if path in fixed:
        return path
    sessions_root = f"{API_PREFIX}/sessions/"
    if path.startswith(sessions_root):
        rest = path[len(sessions_root):].split("/")
        if len(rest) == 1:
            return f"{API_PREFIX}/sessions/{{id}}"
        if len(rest) == 2 and rest[1] == "tune":
            return f"{API_PREFIX}/sessions/{{id}}/tune"
    traces_root = f"{API_PREFIX}/traces/"
    if path.startswith(traces_root) and "/" not in path[len(traces_root):]:
        return f"{API_PREFIX}/traces/{{id}}"
    return "unknown"


class _TuningRequestHandler(BaseHTTPRequestHandler):
    #: Advertised through the Server header.
    server_version = "repro-tuning-server/1"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a client that stalls mid-body cannot pin a worker
    #: thread forever (solves run server-side *after* the body is read).
    timeout = 120

    # ------------------------------------------------------------------- verbs
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # ---------------------------------------------------------------- plumbing
    def _dispatch(self, method: str) -> None:
        owner = self.server.owner  # type: ignore[attr-defined]
        owner._request_started()
        started = time.perf_counter()
        # Ignore any query string (health probes commonly append one).
        path = self.path.split("?", 1)[0].rstrip("/")
        endpoint = _endpoint_pattern(method, path)
        self._status_sent = 500
        self._trace_id = None
        header = (self.headers.get(TRACE_HEADER) or "").strip()
        try:
            # The client's trace id (or a fresh one) becomes the pending id:
            # the pipeline's Tracer picks it up, so the whole request traces
            # under one id end to end, echoed back on the response.  The
            # tuner's registry is made ambient for the same stretch so
            # metrics recorded before the facade activates it itself (wire
            # decoding, schema-cache hits) land on /v1/metrics too.
            with trace_context(header or None) as trace_id, \
                    use_registry(owner.service.tuner.metrics):
                self._trace_id = trace_id
                try:
                    if method == "GET" and path == f"{API_PREFIX}/metrics":
                        self._write_text(200, owner.handle_metrics(),
                                         METRICS_CONTENT_TYPE)
                        return
                    payload = self._route(method, path)
                except Exception as exc:  # noqa: BLE001 — errors → envelopes
                    self._write_error(exc, endpoint=endpoint)
                else:
                    try:
                        self._write_json(200, payload)
                    except (TypeError, ValueError) as exc:
                        # The handler's payload failed to encode — a
                        # server-side bug, but the client still deserves a
                        # well-formed envelope instead of a bare connection
                        # reset.  (_write_json encodes before sending any
                        # bytes, so the socket is still clean here.)
                        self._write_error(
                            TuningServerError(
                                f"Response encoding failed: {exc}",
                                status=500,
                                error_type="ResponseEncodingError"),
                            endpoint=endpoint)
                    except OSError:
                        log_event(logging.WARNING, "client_disconnected",
                                  endpoint=endpoint, method=method,
                                  trace_id=self._trace_id,
                                  phase="response")
        finally:
            owner._request_finished()
            registry = owner.service.tuner.metrics
            registry.counter(
                "repro_http_requests_total",
                "HTTP requests served, by route pattern and status",
                ("endpoint", "method", "status"),
            ).inc(endpoint=endpoint, method=method,
                  # HTTP status codes are a closed set.
                  status=str(self._status_sent))  # reprolint: disable=metric-label-cardinality
            registry.histogram(
                "repro_http_request_seconds",
                "Wall-clock seconds per HTTP request",
                ("endpoint",),
            ).observe(time.perf_counter() - started, endpoint=endpoint)

    def _write_error(self, exc: BaseException, *,
                     endpoint: str = "unknown") -> None:
        status, envelope = envelope_for_exception(exc)
        if status >= 500:
            log_event(logging.ERROR, "http_error", endpoint=endpoint,
                      status=status, error=repr(exc),
                      trace_id=getattr(self, "_trace_id", None))
        try:
            self._write_json(status, envelope,
                             headers=response_headers_for(exc))
        except (TypeError, ValueError):
            # Envelope encoding itself failed (it never should: envelopes
            # are built from str/int only) — last-resort minimal envelope.
            self._write_json(500, error_envelope(
                type(exc).__name__, "error envelope encoding failed", 500))
        except OSError:
            log_event(logging.WARNING, "client_disconnected",
                      endpoint=endpoint, status=status,
                      trace_id=getattr(self, "_trace_id", None),
                      phase="error_response")

    def _route(self, method: str, path: str) -> dict[str, Any]:
        owner = self.server.owner  # type: ignore[attr-defined]
        if method == "GET" and path == f"{API_PREFIX}/health":
            return owner.handle_health()
        if method == "GET" and path == f"{API_PREFIX}/stats":
            return owner.handle_stats()
        if method == "GET" and path == f"{API_PREFIX}/traces":
            return owner.handle_traces(self._limit_param())
        traces_root = f"{API_PREFIX}/traces/"
        if (method == "GET" and path.startswith(traces_root)
                and "/" not in path[len(traces_root):]):
            return owner.handle_trace(path[len(traces_root):])
        if method == "POST" and path == f"{API_PREFIX}/tune":
            return owner.handle_tune(self._read_json())
        if method == "POST" and path == f"{API_PREFIX}/tune_batch":
            return owner.handle_tune_batch(self._read_json())
        sessions_root = f"{API_PREFIX}/sessions"
        if method == "POST" and path == sessions_root:
            return owner.handle_open_session(self._read_json())
        if path.startswith(sessions_root + "/"):
            rest = path[len(sessions_root) + 1:].split("/")
            if method == "POST" and len(rest) == 2 and rest[1] == "tune":
                return owner.handle_session_tune(rest[0], self._read_json())
            if method == "DELETE" and len(rest) == 1:
                return owner.handle_close_session(rest[0])
        raise TuningServerError(f"No such endpoint: {method} {self.path}",
                                status=404, error_type="NotFound")

    def _limit_param(self) -> int | None:
        """The ``?limit=N`` query parameter of the current request."""
        from urllib.parse import parse_qs, urlparse

        values = parse_qs(urlparse(self.path).query).get("limit")
        if not values:
            return None
        try:
            return int(values[0])
        except ValueError:
            raise WireFormatError("limit must be an integer") from None

    def _read_json(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise WireFormatError("Content-Length must be an integer") \
                from None
        if length < 0:
            # rfile.read(-1) would block until the client closes the socket.
            raise WireFormatError("Content-Length must be non-negative")
        if length > MAX_BODY_BYTES:
            raise TuningServerError(
                f"Request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit", status=413,
                error_type="PayloadTooLarge")
        body = self.rfile.read(length) if length else b""
        if not body:
            raise WireFormatError("Request body must be a JSON document")
        return json.loads(body)

    def _write_json(self, status: int, payload: dict[str, Any],
                    headers: dict[str, str] | None = None) -> None:
        # Encode BEFORE any byte hits the socket: an encoding failure must
        # leave the response unstarted so an error envelope can still be
        # written in its place.
        body = json.dumps(payload).encode("utf-8")
        self._write_body(status, body, "application/json", headers)

    def _write_text(self, status: int, text: str, content_type: str) -> None:
        self._write_body(status, text.encode("utf-8"), content_type, None)

    def _write_body(self, status: int, body: bytes, content_type: str,
                    headers: dict[str, str] | None) -> None:
        self._status_sent = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header(TRACE_HEADER, trace_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        # One request per connection: an error response may leave an unread
        # request body on the socket, which a kept-alive connection would
        # misparse as the next request line.
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr lines (the service keeps the counters)."""


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.server --port 8080``."""
    parser = argparse.ArgumentParser(description="repro tuning server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--namespace-statements", action="store_true",
                        help="auto-namespace colliding statement names "
                             "instead of rejecting them (WorkloadError)")
    parser.add_argument("--max-contexts", type=int, default=64,
                        help="LRU cap on live schema contexts")
    parser.add_argument("--context-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="idle TTL for schema contexts")
    parser.add_argument("--session-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="idle TTL for interactive sessions; abandoned "
                             "sessions are reaped on the next session/stats "
                             "touch")
    parser.add_argument("--default-time-budget", type=float, default=None,
                        metavar="MS",
                        help="anytime budget (milliseconds) applied to "
                             "requests that set none")
    parser.add_argument("--max-time-budget", type=float, default=None,
                        metavar="MS",
                        help="upper clamp on client-requested anytime "
                             "budgets (milliseconds)")
    parser.add_argument("--max-pending", type=int, default=None,
                        help="admission-control bound on in-flight tuning "
                             "requests; beyond it the server answers 429 "
                             "with a Retry-After header")
    parser.add_argument("--retry-after", type=float, default=1.0,
                        metavar="SECONDS",
                        help="Retry-After hint attached to 429 rejections")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        metavar="SECONDS",
                        help="maximum wait for in-flight requests to finish "
                             "on graceful shutdown (SIGTERM/SIGINT)")
    parser.add_argument("--log-level", default=None,
                        metavar="LEVEL",
                        help="structured-log threshold (DEBUG/INFO/WARNING/"
                             "ERROR); defaults to $REPRO_LOG_LEVEL or "
                             "WARNING")
    parser.add_argument("--trace-store-size", type=int, default=128,
                        help="completed traces retained for GET /v1/traces "
                             "(ring buffer; 0 disables the store)")
    parser.add_argument("--slow-threshold-ms", type=float, default=None,
                        metavar="MS",
                        help="requests at least this slow are pinned in the "
                             "trace store's slow ring so outliers survive "
                             "rotation")
    parser.add_argument("--profile-every", type=int, default=None,
                        metavar="N",
                        help="capture a sampled cProfile hotspot table on "
                             "every Nth request (rides the result and the "
                             "stored trace; off by default)")
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    server = TuningServer(host=args.host, port=args.port,
                          namespace_statements=args.namespace_statements,
                          max_contexts=args.max_contexts,
                          context_ttl_s=args.context_ttl,
                          session_ttl_s=args.session_ttl,
                          default_time_budget_ms=args.default_time_budget,
                          max_time_budget_ms=args.max_time_budget,
                          max_pending=args.max_pending,
                          retry_after_s=args.retry_after,
                          drain_timeout_s=args.drain_timeout,
                          trace_store_size=args.trace_store_size,
                          slow_threshold_ms=args.slow_threshold_ms,
                          profile_every=args.profile_every)
    install_signal_handlers(server)
    print(f"Serving index tuning on {server.url} "
          f"(advisors: {', '.join(available_advisors())})")
    server.serve_forever()
    # serve_forever returns once the signal handler's helper thread called
    # shutdown(); this second stop() is idempotent and blocks until the
    # helper finishes draining, so the process exits only when clean.
    server.stop()


def install_signal_handlers(server: TuningServer) -> None:
    """Route SIGTERM/SIGINT to a graceful :meth:`TuningServer.stop`.

    ``shutdown()`` must never run on the thread executing
    ``serve_forever`` (it would deadlock waiting for the serve loop it is
    blocking), and a Python signal handler runs exactly there — so the
    handler only spawns a helper thread and returns.
    """
    import signal

    def _graceful(signum, frame):  # pragma: no cover - signal delivery
        threading.Thread(target=server.stop, name="tuning-server-stop",
                         daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
