"""Versioned JSON wire formats for the network tuning server.

``TuningResult`` has serialized since PR 4 (:meth:`TuningResult.to_json`);
this module supplies the *request* side: codecs for :class:`Schema` (tables,
columns, statistics), :class:`Workload` (statements, weights, predicates,
updates), the DBA constraint language and the three request specs, composing
into :func:`encode_request` / :func:`decode_request`.

The contract is **bit-identical round-tripping**: for any encodable request,
tuning ``decode_request(encode_request(request))`` produces a result whose
``fingerprint()`` equals the in-process result for ``request`` (pinned in
``tests/test_wire.py`` and ``tests/test_server.py``).  Three properties make
that hold:

* floats survive exactly — Python's ``json`` emits shortest-repr floats,
  which round-trip bit-identically;
* tuple-valued predicate operands (``BETWEEN`` / ``IN``) are restored to
  tuples on decode, so statement digests (which ``repr`` the operands) match;
* statement and workload *names* are part of the payload — the canonical
  workload LRU and the shared INUM cache key on them.

Every payload carries ``wire_version``; :func:`decode_request` rejects
versions it does not understand with :class:`WireFormatError` instead of
silently partial-loading.  Constraints carrying live callables (selectors,
filters) have no wire representation and are rejected at *encode* time.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import fields
from typing import Any, Mapping

from repro.api.result import index_from_payload, index_to_payload
from repro.obs.metrics import active_registry
from repro.api.specs import AdvisorSpec, CostingSpec, ScaleSpec, TuningRequest
from repro.catalog.column import Column, ColumnType
from repro.catalog.schema import Schema
from repro.catalog.statistics import ColumnStatistics
from repro.catalog.table import Table
from repro.core.constraints import (
    ClusteredIndexConstraint,
    ComparisonSense,
    IndexCountConstraint,
    IndexWidthConstraint,
    QueryCostConstraint,
    QuerySpeedupGenerator,
    SoftConstraint,
    StorageBudgetConstraint,
    TuningConstraint,
    UpdateCostConstraint,
)
from repro.exceptions import ReproError
from repro.indexes.candidate_generation import CandidateSet
from repro.workload.predicates import (
    ColumnRef,
    ComparisonOperator,
    JoinPredicate,
    SimplePredicate,
)
from repro.workload.query import (
    Aggregate,
    AggregateFunction,
    Query,
    SelectQuery,
    UpdateQuery,
)
from repro.workload.workload import Workload, WorkloadStatement

__all__ = [
    "WIRE_VERSION",
    "WireFormatError",
    "SchemaCache",
    "encode_schema",
    "decode_schema",
    "encode_workload",
    "decode_workload",
    "encode_query",
    "decode_query",
    "encode_constraint",
    "decode_constraint",
    "encode_request",
    "decode_request",
]

#: Version of the request wire format.  Bump on any incompatible change; the
#: decoder rejects versions it does not understand.
#:
#: Version history:
#:
#: * 1 — PR 5 baseline.
#: * 2 — anytime tuning: the advisor spec may carry ``time_budget_ms`` /
#:   ``solve_tier``.  The encoder still emits version 1 when neither field
#:   is set, so budget-less clients keep interoperating with version-1
#:   servers; the decoder accepts both versions but rejects budget fields
#:   arriving under version 1.
WIRE_VERSION = 2

#: Wire versions :func:`decode_request` understands.
_ACCEPTED_WIRE_VERSIONS = frozenset({1, WIRE_VERSION})


class WireFormatError(ReproError):
    """Raised when a payload cannot be encoded to / decoded from the wire."""


# --------------------------------------------------------------------- helpers
def _require(payload: Mapping[str, Any], key: str, context: str) -> Any:
    try:
        return payload[key]
    except (KeyError, TypeError):
        raise WireFormatError(
            f"{context} payload is missing required field {key!r}") from None


def _check_fields(payload: Any, allowed: frozenset, context: str) -> None:
    """Reject unknown payload fields loudly.

    A misspelled optional field (``"sence"`` for ``"sense"``) would otherwise
    be dropped and its default silently enforced — the partial-load failure
    mode this module promises never to have.
    """
    if not isinstance(payload, Mapping):
        raise WireFormatError(
            f"{context} payload must be a JSON object, got "
            f"{type(payload).__name__}")
    unknown = set(payload) - allowed
    if unknown:
        raise WireFormatError(
            f"{context} payload has unknown fields {sorted(unknown)}; "
            f"known fields: {sorted(allowed)}")


_REQUEST_FIELDS = frozenset({
    "wire_version", "kind", "request_id", "schema", "workload", "constraints",
    "candidates", "dba_indexes", "advisor", "costing", "scale",
    "per_statement_costs"})
_SCHEMA_FIELDS = frozenset({"name", "tables"})
_TABLE_FIELDS = frozenset({"name", "row_count", "page_size", "primary_key",
                           "columns", "statistics"})
_COLUMN_FIELDS = frozenset({"name", "type", "width", "nullable"})
_STATISTICS_FIELDS = frozenset({"distinct_values", "null_fraction",
                                "correlation", "average_width", "histogram"})
_HISTOGRAM_FIELDS = frozenset({"buckets"})
_WORKLOAD_FIELDS = frozenset({"name", "statements"})
_STATEMENT_FIELDS = frozenset({"weight", "query"})
_SELECT_FIELDS = frozenset({"kind", "name", "tables", "projections",
                            "predicates", "joins", "group_by", "order_by",
                            "aggregates"})
_UPDATE_FIELDS = frozenset({"kind", "name", "table", "set_columns",
                            "predicates", "update_fraction"})
_PREDICATE_FIELDS = frozenset({"column", "operator", "value",
                               "selectivity_hint"})
_JOIN_FIELDS = frozenset({"left", "right"})
_AGGREGATE_FIELDS = frozenset({"function", "column"})
_ADVISOR_FIELDS_V1 = frozenset({"name", "options"})
_ADVISOR_FIELDS = _ADVISOR_FIELDS_V1 | frozenset({"time_budget_ms",
                                                  "solve_tier"})
#: Allowed fields per constraint payload type.
_CONSTRAINT_FIELDS = {
    "soft": frozenset({"type", "target", "inner"}),
    "storage_budget": frozenset({"type", "budget_bytes", "name"}),
    "index_count": frozenset({"type", "limit", "sense", "name"}),
    "index_width": frozenset({"type", "max_columns", "name"}),
    "clustered_index": frozenset({"type", "name"}),
    "query_cost": frozenset({"type", "query", "reference_cost", "factor",
                             "name"}),
    "speedup_generator": frozenset({"type", "reference_costs", "factor",
                                    "name"}),
    "update_cost": frozenset({"type", "limit", "name"}),
}


def _scalar(value: Any, context: str) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise WireFormatError(
        f"{context} value {value!r} of type {type(value).__name__} has no "
        f"JSON wire representation")


def _encode_operand(value: Any, context: str) -> Any:
    if isinstance(value, (tuple, list)):
        return [_scalar(item, context) for item in value]
    return _scalar(value, context)


def _encode_column_ref(column: ColumnRef) -> list[str]:
    return [column.table, column.column]


def _decode_column_ref(payload: Any, context: str) -> ColumnRef:
    if not isinstance(payload, (list, tuple)) or len(payload) != 2:
        raise WireFormatError(
            f"{context}: a column reference must be a [table, column] pair, "
            f"got {payload!r}")
    return ColumnRef(payload[0], payload[1])


# ---------------------------------------------------------------------- schema
def encode_schema(schema: Schema) -> dict[str, Any]:
    """A :class:`Schema` (tables, columns, statistics) as a JSON payload."""
    return {
        "name": schema.name,
        "tables": [_encode_table(table) for table in schema],
    }


def _encode_table(table: Table) -> dict[str, Any]:
    return {
        "name": table.name,
        "row_count": table.row_count,
        "page_size": table.page_size,
        "primary_key": list(table.primary_key),
        "columns": [
            {"name": column.name, "type": column.column_type.value,
             "width": column.width, "nullable": column.nullable}
            for column in table.columns
        ],
        "statistics": {name: stats.to_payload()
                       for name, stats in table.statistics.items()},
    }


def decode_schema(payload: Mapping[str, Any]) -> Schema:
    _check_fields(payload, _SCHEMA_FIELDS, "schema")
    tables = [_decode_table(entry)
              for entry in _require(payload, "tables", "schema")]
    return Schema(tables, name=_require(payload, "name", "schema"))


def _decode_table(payload: Mapping[str, Any]) -> Table:
    _check_fields(payload, _TABLE_FIELDS, "table")
    columns = []
    for entry in _require(payload, "columns", "table"):
        _check_fields(entry, _COLUMN_FIELDS, "column")
        try:
            column_type = ColumnType(_require(entry, "type", "column"))
        except ValueError as exc:
            raise WireFormatError(f"Unknown column type: {exc}") from None
        columns.append(Column(
            name=_require(entry, "name", "column"),
            column_type=column_type,
            width=int(entry.get("width", 0)),
            nullable=bool(entry.get("nullable", False)),
        ))
    statistics = {}
    for name, stats in payload.get("statistics", {}).items():
        _check_fields(stats, _STATISTICS_FIELDS, f"statistics[{name}]")
        if stats.get("histogram") is not None:
            _check_fields(stats["histogram"], _HISTOGRAM_FIELDS,
                          f"statistics[{name}].histogram")
        try:
            statistics[name] = ColumnStatistics.from_payload(stats)
        except (KeyError, TypeError) as exc:
            raise WireFormatError(
                f"Malformed statistics for column {name!r}: {exc}") from None
    return Table(
        name=_require(payload, "name", "table"),
        columns=columns,
        row_count=float(_require(payload, "row_count", "table")),
        statistics=statistics,
        primary_key=tuple(payload.get("primary_key", ())),
        page_size=int(payload.get("page_size", 8192)),
    )


def _schema_cache_event(event: str) -> None:
    active_registry().counter(
        "repro_cache_events_total",
        "Hits and misses of the tuning-stack caches",
        ("cache", "event")).inc(cache="schema_payload", event=event)


class SchemaCache:
    """Canonicalizes equal schema payloads onto one decoded :class:`Schema`.

    The Tuner keys its per-schema contexts by *object identity*, so a server
    decoding every request's schema afresh would never share an optimizer, a
    template or a tensor between requests.  This cache maps the canonical
    JSON digest of a schema payload to the first decoded object, so equal
    client schemas resolve to one :class:`Schema` — and therefore one
    :class:`~repro.api.tuner.SchemaContext` — for as long as the entry lives.

    Entries are LRU-bounded by ``max_schemas``; evicting one only means the
    next equal payload decodes a fresh object (and gets a fresh context — the
    Tuner's own ``max_contexts`` / ``context_ttl_s`` reap the orphan).
    """

    def __init__(self, max_schemas: int | None = 32):
        if max_schemas is not None and max_schemas < 1:
            raise ValueError("max_schemas must be positive (or None)")
        self._max_schemas = max_schemas
        self._schemas: OrderedDict[str, Schema] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._schemas)

    def resolve(self, payload: Mapping[str, Any]) -> Schema:
        """Decode ``payload`` once per distinct schema, LRU-cached by digest."""
        key = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()
        with self._lock:
            schema = self._schemas.get(key)
            if schema is not None:
                self._schemas.move_to_end(key)
                _schema_cache_event("hit")
                return schema
        _schema_cache_event("miss")
        schema = decode_schema(payload)
        with self._lock:
            known = self._schemas.get(key)
            if known is not None:
                return known
            self._schemas[key] = schema
            if self._max_schemas is not None:
                while len(self._schemas) > self._max_schemas:
                    self._schemas.popitem(last=False)
        return schema


# -------------------------------------------------------------------- workload
def encode_workload(workload: Workload) -> dict[str, Any]:
    """A :class:`Workload` (statements, weights) as a JSON payload."""
    return {
        "name": workload.name,
        "statements": [
            {"weight": statement.weight,
             "query": encode_query(statement.query)}
            for statement in workload
        ],
    }


def decode_workload(payload: Mapping[str, Any]) -> Workload:
    _check_fields(payload, _WORKLOAD_FIELDS, "workload")
    statements = []
    for entry in _require(payload, "statements", "workload"):
        _check_fields(entry, _STATEMENT_FIELDS, "statement")
        statements.append(WorkloadStatement(
            decode_query(_require(entry, "query", "statement")),
            weight=float(entry.get("weight", 1.0))))
    return Workload(statements, name=_require(payload, "name", "workload"))


def encode_query(query: Query) -> dict[str, Any]:
    """A statement (SELECT or UPDATE) as a JSON payload."""
    if isinstance(query, UpdateQuery):
        return {
            "kind": "update",
            "name": query.name,
            "table": query.table,
            "set_columns": [_encode_column_ref(c) for c in query.set_columns],
            "predicates": [_encode_predicate(p) for p in query.predicates],
            "update_fraction": query.update_fraction,
        }
    return {
        "kind": "select",
        "name": query.name,
        "tables": list(query.tables),
        "projections": [_encode_column_ref(c) for c in query.projections],
        "predicates": [_encode_predicate(p) for p in query.predicates],
        "joins": [{"left": _encode_column_ref(j.left),
                   "right": _encode_column_ref(j.right)}
                  for j in query.joins],
        "group_by": [_encode_column_ref(c) for c in query.group_by],
        "order_by": [_encode_column_ref(c) for c in query.order_by],
        "aggregates": [
            {"function": a.function.value,
             "column": (None if a.column is None
                        else _encode_column_ref(a.column))}
            for a in query.aggregates
        ],
    }


def decode_query(payload: Mapping[str, Any]) -> Query:
    kind = _require(payload, "kind", "query")
    name = _require(payload, "name", "query")
    _check_fields(payload,
                  _UPDATE_FIELDS if kind == "update" else _SELECT_FIELDS,
                  f"{kind} query")
    predicates = tuple(_decode_predicate(entry)
                       for entry in payload.get("predicates", ()))
    if kind == "update":
        return UpdateQuery(
            table=_require(payload, "table", "update query"),
            set_columns=tuple(_decode_column_ref(c, name)
                              for c in _require(payload, "set_columns",
                                                "update query")),
            predicates=predicates,
            name=name,
            update_fraction=payload.get("update_fraction"),
        )
    if kind != "select":
        raise WireFormatError(
            f"Unknown statement kind {kind!r} (expected 'select' or 'update')")
    aggregates = []
    for entry in payload.get("aggregates", ()):
        _check_fields(entry, _AGGREGATE_FIELDS, "aggregate")
        try:
            function = AggregateFunction(_require(entry, "function",
                                                  "aggregate"))
        except ValueError as exc:
            raise WireFormatError(f"Unknown aggregate function: {exc}") from None
        column = entry.get("column")
        aggregates.append(Aggregate(
            function, None if column is None
            else _decode_column_ref(column, name)))
    return SelectQuery(
        tables=tuple(_require(payload, "tables", "query")),
        projections=tuple(_decode_column_ref(c, name)
                          for c in payload.get("projections", ())),
        predicates=predicates,
        joins=tuple(_decode_join(j, name) for j in payload.get("joins", ())),
        group_by=tuple(_decode_column_ref(c, name)
                       for c in payload.get("group_by", ())),
        order_by=tuple(_decode_column_ref(c, name)
                       for c in payload.get("order_by", ())),
        aggregates=tuple(aggregates),
        name=name,
    )


def _decode_join(payload: Mapping[str, Any], query_name: str) -> JoinPredicate:
    _check_fields(payload, _JOIN_FIELDS, "join")
    return JoinPredicate(
        _decode_column_ref(_require(payload, "left", "join"), query_name),
        _decode_column_ref(_require(payload, "right", "join"), query_name))


def _encode_predicate(predicate: SimplePredicate) -> dict[str, Any]:
    return {
        "column": _encode_column_ref(predicate.column),
        "operator": predicate.operator.value,
        "value": _encode_operand(predicate.value,
                                 f"predicate on {predicate.column}"),
        "selectivity_hint": predicate.selectivity_hint,
    }


def _decode_predicate(payload: Mapping[str, Any]) -> SimplePredicate:
    _check_fields(payload, _PREDICATE_FIELDS, "predicate")
    try:
        operator = ComparisonOperator(_require(payload, "operator",
                                               "predicate"))
    except ValueError as exc:
        raise WireFormatError(f"Unknown comparison operator: {exc}") from None
    value = payload.get("value")
    # Tuple operands (BETWEEN bounds, IN lists) arrive as JSON arrays;
    # restoring tuples keeps statement digests (which repr the operand)
    # bit-identical to the pre-encode statement.
    if isinstance(value, list):
        value = tuple(value)
    return SimplePredicate(
        column=_decode_column_ref(_require(payload, "column", "predicate"),
                                  "predicate"),
        operator=operator,
        value=value,
        selectivity_hint=payload.get("selectivity_hint"),
    )


# ----------------------------------------------------------------- constraints
def encode_constraint(constraint: TuningConstraint | SoftConstraint
                      ) -> dict[str, Any]:
    """A DBA constraint as a JSON payload.

    Constraints carrying live callables (``IndexCountConstraint`` selectors /
    weights, ``QuerySpeedupGenerator`` filters) are rejected — a callable has
    no faithful wire representation, and shipping a lossy approximation would
    silently change what the server enforces.
    """
    if isinstance(constraint, SoftConstraint):
        return {"type": "soft", "target": constraint.target,
                "inner": encode_constraint(constraint.inner)}
    if isinstance(constraint, StorageBudgetConstraint):
        return {"type": "storage_budget",
                "budget_bytes": constraint.budget_bytes,
                "name": constraint.name}
    if isinstance(constraint, IndexCountConstraint):
        if constraint.selector is not None or constraint.weight is not None:
            raise WireFormatError(
                "IndexCountConstraint with a selector/weight callable has no "
                "wire representation; apply it through the embedded API, or "
                "express the rule as IndexWidthConstraint / multiple "
                "constraints")
        return {"type": "index_count", "limit": constraint.limit,
                "sense": constraint.sense.value, "name": constraint.name}
    if isinstance(constraint, IndexWidthConstraint):
        return {"type": "index_width", "max_columns": constraint.max_columns,
                "name": constraint.name}
    if isinstance(constraint, ClusteredIndexConstraint):
        return {"type": "clustered_index", "name": constraint.name}
    if isinstance(constraint, QueryCostConstraint):
        return {"type": "query_cost", "query": constraint.query.name,
                "reference_cost": constraint.reference_cost,
                "factor": constraint.factor, "name": constraint.name}
    if isinstance(constraint, QuerySpeedupGenerator):
        if constraint.statement_filter is not None:
            raise WireFormatError(
                "QuerySpeedupGenerator with a statement_filter callable has "
                "no wire representation; pre-filter the reference_costs "
                "mapping instead")
        return {"type": "speedup_generator",
                "reference_costs": dict(constraint.reference_costs),
                "factor": constraint.factor, "name": constraint.name}
    if isinstance(constraint, UpdateCostConstraint):
        return {"type": "update_cost", "limit": constraint.limit,
                "name": constraint.name}
    raise WireFormatError(
        f"Constraint type {type(constraint).__name__} has no wire "
        f"representation")


def decode_constraint(payload: Mapping[str, Any], workload: Workload
                      ) -> TuningConstraint | SoftConstraint:
    """Decode one constraint payload.

    ``query_cost`` constraints reference their statement *by name*; the name
    is resolved against ``workload`` (the BIP keys cost expressions by
    statement name, so the resolved object only needs the right name and a
    shape that is part of the tuning problem).
    """
    kind = _require(payload, "type", "constraint")
    allowed = _CONSTRAINT_FIELDS.get(kind)
    if allowed is None:
        raise WireFormatError(f"Unknown constraint type {kind!r}")
    _check_fields(payload, allowed, f"{kind} constraint")
    if kind == "soft":
        inner = decode_constraint(_require(payload, "inner", "soft constraint"),
                                  workload)
        if isinstance(inner, SoftConstraint):
            raise WireFormatError("Soft constraints cannot nest")
        return SoftConstraint(inner, target=payload.get("target"))
    if kind == "storage_budget":
        return StorageBudgetConstraint(
            budget_bytes=float(_require(payload, "budget_bytes", kind)),
            name=payload.get("name", "storage_budget"))
    if kind == "index_count":
        try:
            sense = ComparisonSense(payload.get("sense", "<="))
        except ValueError as exc:
            raise WireFormatError(f"Unknown comparison sense: {exc}") from None
        return IndexCountConstraint(
            limit=float(_require(payload, "limit", kind)), sense=sense,
            name=payload.get("name", "index_count"))
    if kind == "index_width":
        return IndexWidthConstraint(
            max_columns=int(_require(payload, "max_columns", kind)),
            name=payload.get("name", "index_width"))
    if kind == "clustered_index":
        return ClusteredIndexConstraint(
            name=payload.get("name", "one_clustered_per_table"))
    if kind == "query_cost":
        query_name = _require(payload, "query", kind)
        for statement in workload:
            if statement.query.name == query_name:
                return QueryCostConstraint(
                    query=statement.query,
                    reference_cost=float(_require(payload, "reference_cost",
                                                  kind)),
                    factor=float(payload.get("factor", 1.0)),
                    name=payload.get("name", "query_cost"))
        raise WireFormatError(
            f"query_cost constraint references unknown statement "
            f"{query_name!r} (not in workload {workload.name!r})")
    if kind == "speedup_generator":
        return QuerySpeedupGenerator(
            reference_costs={str(name): float(cost) for name, cost in
                             _require(payload, "reference_costs",
                                      kind).items()},
            factor=float(payload.get("factor", 0.75)),
            name=payload.get("name", "speedup_generator"))
    return UpdateCostConstraint(
        limit=float(_require(payload, "limit", kind)),
        name=payload.get("name", "update_cost"))


# ----------------------------------------------------------------------- specs
def _encode_options(options: Mapping[str, Any], context: str
                    ) -> dict[str, Any]:
    """Strictly-JSON projection of spec options (live objects are rejected)."""
    encoded: dict[str, Any] = {}
    for key, value in options.items():
        if isinstance(value, (tuple, list)):
            encoded[key] = [_scalar(item, f"{context}.{key}") for item in value]
        elif isinstance(value, dict):
            encoded[key] = _encode_options(value, f"{context}.{key}")
        else:
            encoded[key] = _scalar(value, f"{context}.{key}")
    return encoded


def _decode_spec(cls, payload: Mapping[str, Any], context: str):
    known = {f.name for f in fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise WireFormatError(
            f"{context} payload has unknown fields {sorted(unknown)}; "
            f"known fields: {sorted(known)}")
    return cls(**payload)


# --------------------------------------------------------------------- request
def encode_request(request: TuningRequest) -> dict[str, Any]:
    """One :class:`TuningRequest` as a self-contained, versioned JSON payload.

    Budget-less requests are emitted as wire version 1 (they contain nothing
    a version-1 server cannot understand); any anytime field on the advisor
    spec upgrades the payload to version 2.
    """
    advisor = request.advisor
    candidates = request.candidates
    advisor_payload = None
    version = 1
    if advisor is not None:
        advisor_payload = {
            "name": advisor.name,
            "options": _encode_options(advisor.options, "advisor option"),
        }
        if advisor.time_budget_ms is not None or advisor.solve_tier is not None:
            advisor_payload["time_budget_ms"] = advisor.time_budget_ms
            advisor_payload["solve_tier"] = advisor.solve_tier
            version = WIRE_VERSION
    return {
        "wire_version": version,
        "kind": "tuning_request",
        "request_id": request.request_id,
        "schema": encode_schema(request.schema),
        "workload": encode_workload(request.workload),
        "constraints": [encode_constraint(constraint)
                        for constraint in request.constraints],
        "candidates": (None if candidates is None else
                       [index_to_payload(index) for index in candidates]),
        "dba_indexes": [index_to_payload(index)
                        for index in request.dba_indexes],
        "advisor": advisor_payload,
        "costing": {f.name: getattr(request.costing, f.name)
                    for f in fields(CostingSpec)},
        "scale": (None if request.scale is None else
                  {f.name: getattr(request.scale, f.name)
                   for f in fields(ScaleSpec)}),
        "per_statement_costs": request.per_statement_costs,
    }


def decode_request(payload: Mapping[str, Any],
                   schema_cache: SchemaCache | None = None) -> TuningRequest:
    """Decode a request payload back into a :class:`TuningRequest`.

    Args:
        payload: The JSON-shaped payload produced by :func:`encode_request`.
        schema_cache: Optional :class:`SchemaCache`; when given, equal schema
            payloads resolve to one shared :class:`Schema` object so the
            serving Tuner can share one context (optimizer, INUM cache,
            tensors) across requests.

    Raises:
        WireFormatError: On unknown wire versions, missing fields or
            malformed sub-payloads — never a silent partial load.
    """
    if not isinstance(payload, Mapping):
        raise WireFormatError(
            f"A tuning request payload must be a JSON object, got "
            f"{type(payload).__name__}")
    version = payload.get("wire_version")
    if version not in _ACCEPTED_WIRE_VERSIONS:
        raise WireFormatError(
            f"Unsupported wire_version {version!r}; this build understands "
            f"versions {sorted(_ACCEPTED_WIRE_VERSIONS)}")
    _check_fields(payload, _REQUEST_FIELDS, "request")
    schema_payload = _require(payload, "schema", "request")
    if schema_cache is not None:
        schema = schema_cache.resolve(schema_payload)
    else:
        schema = decode_schema(schema_payload)
    workload = decode_workload(_require(payload, "workload", "request"))
    workload.validate_against(schema)
    constraints = tuple(decode_constraint(entry, workload)
                        for entry in payload.get("constraints", ()))
    candidates_payload = payload.get("candidates")
    candidates = (None if candidates_payload is None else
                  CandidateSet(schema, (index_from_payload(entry)
                                        for entry in candidates_payload)))
    dba_indexes = tuple(index_from_payload(entry)
                        for entry in payload.get("dba_indexes", ()))
    advisor_payload = payload.get("advisor")
    advisor = None
    if advisor_payload is not None:
        # Anytime fields are a version-2 addition; under version 1 they are
        # unknown fields and rejected like any other (a version-1 payload
        # must mean exactly what a version-1 server would make of it).
        _check_fields(advisor_payload,
                      _ADVISOR_FIELDS if version >= 2 else _ADVISOR_FIELDS_V1,
                      "advisor")
        time_budget_ms = advisor_payload.get("time_budget_ms")
        solve_tier = advisor_payload.get("solve_tier")
        try:
            advisor = AdvisorSpec(
                _require(advisor_payload, "name", "advisor"),
                advisor_payload.get("options", {}),
                time_budget_ms=(None if time_budget_ms is None
                                else float(time_budget_ms)),
                solve_tier=None if solve_tier is None else str(solve_tier))
        except ValueError as exc:
            raise WireFormatError(f"Malformed advisor spec: {exc}") from None
    scale_payload = payload.get("scale")
    return TuningRequest(
        workload=workload,
        schema=schema,
        constraints=constraints,
        candidates=candidates,
        dba_indexes=dba_indexes,
        advisor=advisor,
        costing=_decode_spec(CostingSpec, payload.get("costing", {}),
                             "costing spec"),
        scale=(None if scale_payload is None else
               _decode_spec(ScaleSpec, scale_payload, "scale spec")),
        per_statement_costs=payload.get("per_statement_costs"),
        request_id=str(payload.get("request_id", "")),
    )
