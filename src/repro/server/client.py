"""``TuningClient`` — the stdlib-``urllib`` SDK over the tuning server.

The client mirrors the embedded API surface one-for-one, so calling code is
agnostic about where the advisor runs::

    tuner  = Tuner();                 result = tuner.tune(request)
    client = TuningClient(server_url); result = client.tune(request)

``tune`` / ``tune_many`` / ``open_session`` accept the same
:class:`~repro.api.specs.TuningRequest` objects, return the same
:class:`~repro.api.result.TuningResult`, and raise the same exceptions
(:class:`~repro.exceptions.WorkloadError` on statement-name collisions, …)
reconstructed from the server's error envelope; only transport-level
failures surface as :class:`~repro.server.protocol.TuningServerError`.
"""

from __future__ import annotations

import json
import logging
import socket
import urllib.error
import urllib.request
from typing import Any, Iterable, Sequence

from repro.api.result import TuningResult, index_to_payload
from repro.api.specs import TuningRequest
from repro.exceptions import ServerOverloaded
from repro.lp.budget import SolveBudget
from repro.obs.log import log_event
from repro.obs.metrics import active_registry
from repro.obs.trace import current_trace_id, new_trace_id, pending_trace_id
from repro.reliability.faults import FaultPlan, InjectedFault, armed_plan
from repro.reliability.retry import RetryPolicy
from repro.server.protocol import (
    API_PREFIX,
    TRACE_HEADER,
    TuningClientTimeout,
    TuningServerError,
    TuningServerUnavailable,
    raise_remote_error,
)
from repro.server.wire import encode_constraint, encode_request

__all__ = ["DEFAULT_RETRY_POLICY", "TuningClient", "RemoteTuningSession"]

#: The client's default backoff schedule for idempotent calls.
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.2,
                                   cap_delay_s=5.0)


class TuningClient:
    """A remote :class:`~repro.api.tuner.Tuner` / ``TuningService`` facade.

    Args:
        base_url: The server root, e.g. ``"http://127.0.0.1:8080"`` (any
            trailing slash is ignored).
        timeout: Per-request socket timeout in seconds.  Tuning solves can
            legitimately take a while; the default is generous.  Requests
            that carry an anytime budget (``AdvisorSpec.time_budget_ms``)
            derive a tighter per-call timeout from it instead — the budget
            plus ``budget_slack_s`` of transport/serialisation headroom.
        budget_slack_s: Headroom added on top of a request's own time budget
            when deriving its socket timeout.
        retry_policy: Backoff schedule for *idempotent* calls (``tune``,
            ``tune_batch``, GETs) on connect failures, 5xx answers and 429
            overload rejections (whose ``Retry-After`` floors the delay).
            Session steps are never retried — a lost response leaves the
            step's server-side fate unknown.  ``None`` disables retries.
            Budgeted requests never retry past their own derived deadline.
        fault_plan: Explicit fault-injection plan for the ``http_request``
            site; ``None`` defers to the process-wide armed plan.
    """

    def __init__(self, base_url: str, timeout: float = 300.0,
                 budget_slack_s: float = 30.0,
                 retry_policy: RetryPolicy | None = DEFAULT_RETRY_POLICY,
                 fault_plan: FaultPlan | None = None):
        if budget_slack_s < 0:
            raise ValueError("budget_slack_s must be non-negative")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.budget_slack_s = budget_slack_s
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------ tuning
    def tune(self, request: TuningRequest) -> TuningResult:
        """Serve one declarative request remotely (mirrors ``Tuner.tune``)."""
        payload = self._post(f"{API_PREFIX}/tune", encode_request(request),
                             timeout=self._derived_timeout([request]),
                             idempotent=True)
        return TuningResult.from_payload(payload["result"])

    def tune_many(self, requests: Iterable[TuningRequest]
                  ) -> list[TuningResult]:
        """Serve a batch concurrently on the server; results in order."""
        requests = list(requests)
        payload = self._post(
            f"{API_PREFIX}/tune_batch",
            {"requests": [encode_request(request) for request in requests]},
            timeout=self._derived_timeout(requests), idempotent=True)
        return [TuningResult.from_payload(entry)
                for entry in payload["results"]]

    def _derived_timeout(self, requests: Sequence[TuningRequest]
                         ) -> float | None:
        """The socket timeout implied by the requests' anytime budgets.

        Only kicks in when *every* request carries a budget — one unbudgeted
        request makes the batch unbounded, so the configured default applies.
        Budgets are summed (the server may serialise same-schema requests on
        the context lock) and padded with the configured slack.
        """
        budgets = [request.resolved_advisor().time_budget_ms
                   for request in requests]
        if not budgets or any(budget is None for budget in budgets):
            return None
        return sum(budgets) / 1000.0 + self.budget_slack_s

    # ---------------------------------------------------------------- sessions
    def open_session(self, request: TuningRequest) -> "RemoteTuningSession":
        """Open a server-held interactive session (delta-BIP re-tuning)."""
        payload = self._post(f"{API_PREFIX}/sessions", encode_request(request))
        return RemoteTuningSession(self, payload["session_id"], request)

    # ------------------------------------------------------------- diagnostics
    def health(self) -> dict[str, Any]:
        return self._get(f"{API_PREFIX}/health")

    def stats(self) -> dict[str, Any]:
        return self._get(f"{API_PREFIX}/stats")

    def traces(self, limit: int | None = None) -> dict[str, Any]:
        """Newest-first summaries of the server's bounded trace store."""
        path = f"{API_PREFIX}/traces"
        if limit is not None:
            path = f"{path}?limit={int(limit)}"
        return self._get(path)

    def trace(self, trace_id: str) -> dict[str, Any]:
        """One stored trace (full span tree + hotspot table when sampled).

        Raises the server's 404 envelope
        (``TuningServerError``/``UnknownTrace``) once the id has rotated out
        of the store.
        """
        return self._get(f"{API_PREFIX}/traces/{trace_id}")

    # ---------------------------------------------------------------- plumbing
    def _get(self, path: str) -> dict[str, Any]:
        return self._call("GET", path, None, idempotent=True)

    def _post(self, path: str, payload: Any, timeout: float | None = None,
              idempotent: bool = False) -> dict[str, Any]:
        return self._call("POST", path, payload, timeout=timeout,
                          idempotent=idempotent)

    def _delete(self, path: str) -> dict[str, Any]:
        return self._call("DELETE", path, None)

    @staticmethod
    def _retryable(exc: BaseException) -> bool:
        """Whether a failed call is safe *and* worthwhile to repeat.

        Connect failures (the request never reached a handler), injected
        transport faults, overload rejections and 5xx answers are transient;
        a client-side timeout is not — the server may still be working on
        the original request, and re-sending doubles its load exactly when
        it is slowest.
        """
        if isinstance(exc, (TuningServerUnavailable, InjectedFault,
                            ServerOverloaded)):
            return True
        if isinstance(exc, TuningClientTimeout):
            return False
        if isinstance(exc, TuningServerError):
            return 500 <= exc.status < 600
        return False

    def _call(self, method: str, path: str, payload: Any,
              timeout: float | None = None,
              idempotent: bool = False) -> dict[str, Any]:
        data = (None if payload is None
                else json.dumps(payload).encode("utf-8"))
        effective_timeout = self.timeout if timeout is None else timeout
        fault_plan = self.fault_plan if self.fault_plan is not None \
            else armed_plan()
        # One trace id per logical call, shared by every retry attempt: the
        # caller's active/pending id when there is one (so remote spans join
        # the caller's trace), a fresh one otherwise.
        trace_id = current_trace_id() or pending_trace_id() or new_trace_id()

        def attempt_call(attempt: int) -> dict[str, Any]:
            if fault_plan is not None:
                fault_plan.check("http_request", key=path, attempt=attempt)
            return self._request_once(method, path, data, effective_timeout,
                                      trace_id)

        if not idempotent or self.retry_policy is None:
            return attempt_call(1)
        # A request derived from an anytime budget must not retry past the
        # deadline that budget implies; unbudgeted calls retry freely.
        budget = None
        if timeout is not None:
            budget = SolveBudget(time_budget_ms=timeout * 1000.0).start()

        def on_retry(attempt: int, exc: BaseException, delay: float) -> None:
            active_registry().counter(
                "repro_retries_total",
                "Retries taken by the reliability layer, by site",
                ("site",)).inc(site="http_client")
            log_event(logging.WARNING, "http_retry", method=method,
                      path=path, attempt=attempt, error=repr(exc),
                      delay_s=round(delay, 3), trace_id=trace_id)

        return self.retry_policy.call(attempt_call, budget=budget,
                                      retryable=self._retryable,
                                      on_retry=on_retry)

    def _request_once(self, method: str, path: str, data: bytes | None,
                      effective_timeout: float,
                      trace_id: str | None = None) -> dict[str, Any]:
        headers = {"Content-Type": "application/json"}
        if trace_id:
            headers[TRACE_HEADER] = trace_id
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=headers)
        try:
            with urllib.request.urlopen(request,
                                        timeout=effective_timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                envelope = json.loads(exc.read())
            except (ValueError, OSError):
                envelope = None
            raise_remote_error(exc.code, envelope, headers=exc.headers)
            raise  # unreachable — raise_remote_error always raises
        except urllib.error.URLError as exc:
            # Connect-phase timeouts arrive wrapped in URLError; read-phase
            # timeouts (below) come through as bare socket.timeout.
            if isinstance(exc.reason, socket.timeout):
                raise TuningClientTimeout(
                    f"Tuning server at {self.base_url} did not answer "
                    f"{method} {path} within {effective_timeout} s",
                    timeout_seconds=effective_timeout) from exc
            raise TuningServerUnavailable(
                f"Cannot reach tuning server at {self.base_url}: "
                f"{exc.reason}") from exc
        except socket.timeout as exc:
            raise TuningClientTimeout(
                f"Tuning server at {self.base_url} did not answer "
                f"{method} {path} within {effective_timeout} s",
                timeout_seconds=effective_timeout) from exc


class RemoteTuningSession:
    """The client half of a server-held interactive tuning session.

    Mirrors :class:`~repro.api.service.TuningSession`: every call returns a
    :class:`TuningResult`, and the locally-kept :attr:`history` /
    :attr:`last_result` match what the server's session recorded.
    """

    def __init__(self, client: TuningClient, session_id: str,
                 request: TuningRequest):
        self._client = client
        self.session_id = session_id
        self.request = request
        self._history: list[TuningResult] = []
        self._closed = False

    # ---------------------------------------------------------------- accessors
    @property
    def history(self) -> tuple[TuningResult, ...]:
        return tuple(self._history)

    @property
    def last_result(self) -> TuningResult | None:
        return self._history[-1] if self._history else None

    # ------------------------------------------------------------------ tuning
    def recommend(self) -> TuningResult:
        return self._step({"operation": "recommend"})

    def add_candidates(self, new_indexes: Sequence) -> TuningResult:
        return self._step({"operation": "add_candidates",
                           "indexes": [index_to_payload(index)
                                       for index in new_indexes]})

    def remove_candidates(self, removed_indexes: Sequence) -> TuningResult:
        return self._step({"operation": "remove_candidates",
                           "indexes": [index_to_payload(index)
                                       for index in removed_indexes]})

    def update_constraints(self, constraints: Sequence) -> TuningResult:
        return self._step({"operation": "update_constraints",
                           "constraints": [encode_constraint(constraint)
                                           for constraint in constraints]})

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> bool:
        """Release the server-side session (idempotent)."""
        if self._closed:
            return False
        payload = self._client._delete(
            f"{API_PREFIX}/sessions/{self.session_id}")
        self._closed = True
        return bool(payload.get("closed"))

    def __enter__(self) -> "RemoteTuningSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- internals
    def _step(self, body: dict[str, Any]) -> TuningResult:
        if self._closed:
            raise TuningServerError(
                f"Session {self.session_id!r} is closed", status=404,
                error_type="UnknownSession")
        payload = self._client._post(
            f"{API_PREFIX}/sessions/{self.session_id}/tune", body)
        result = TuningResult.from_payload(payload["result"])
        self._history.append(result)
        return result
