"""The network tuning subsystem: wire formats, HTTP server, client SDK.

The paper's index-tuning-as-a-service vision over the unified API (PR 4):

* :mod:`repro.server.wire` — complete, versioned JSON codecs for schemas,
  workloads, constraints and the request specs, composing into
  :func:`encode_request` / :func:`decode_request` that round-trip a
  :class:`~repro.api.specs.TuningRequest` bit-identically (fingerprint-pinned
  in the tests);
* :mod:`repro.server.app` — :class:`TuningServer`, a zero-dependency
  ``http.server``-based HTTP front-end over a shared
  :class:`~repro.api.service.TuningService` (``POST /v1/tune``,
  ``POST /v1/tune_batch``, session endpoints, ``GET /v1/health`` /
  ``GET /v1/stats``) with a structured error envelope;
* :mod:`repro.server.client` — :class:`TuningClient`, a stdlib-``urllib``
  SDK mirroring ``Tuner.tune`` / ``TuningService.tune_many`` /
  ``open_session`` so the same calling code runs in-process or remote.
"""

from repro.server.client import RemoteTuningSession, TuningClient
from repro.server.app import TuningServer
from repro.server.protocol import TuningClientTimeout, TuningServerError
from repro.server.wire import (
    WIRE_VERSION,
    SchemaCache,
    WireFormatError,
    decode_request,
    decode_schema,
    decode_workload,
    encode_request,
    encode_schema,
    encode_workload,
)

__all__ = [
    "RemoteTuningSession",
    "SchemaCache",
    "TuningClient",
    "TuningClientTimeout",
    "TuningServer",
    "TuningServerError",
    "WIRE_VERSION",
    "WireFormatError",
    "decode_request",
    "decode_schema",
    "decode_workload",
    "encode_request",
    "encode_schema",
    "encode_workload",
]
