"""``python -m repro.server`` — CLI entry point for the tuning server."""

from repro.server.app import main

if __name__ == "__main__":
    main()
