"""``python -m repro.server`` — CLI entry point for the tuning server.

``main`` installs SIGTERM/SIGINT handlers
(:func:`repro.server.app.install_signal_handlers`) so a deploy's stop
signal drains in-flight requests (bounded by ``--drain-timeout``) instead
of resetting mid-solve connections.
"""

from repro.server.app import main

if __name__ == "__main__":
    main()
