"""HTTP protocol glue shared by the tuning server and the client SDK.

One structured **error envelope** travels in both directions::

    {"error": {"type": "WorkloadError", "message": "...", "status": 422}}

The server maps exceptions onto it (:func:`envelope_for_exception`) and the
client maps it back onto the exception the embedded API would have raised
(:func:`raise_remote_error`), so error handling code is the same in-process
and over the wire.  Status mapping:

* ``400`` — the request itself is broken: malformed JSON, unknown wire
  version / advisor name, invalid spec combinations (``ValueError``);
* ``422`` — the request parsed but describes an unservable tuning problem:
  :class:`WorkloadError` (e.g. statement-name collisions), catalog and
  constraint errors, infeasible problems;
* ``404`` — unknown endpoint, session, or stored trace (evicted trace ids
  answer 404 exactly like never-recorded ones);
* ``429`` — admission control rejected the request
  (:class:`~repro.exceptions.ServerOverloaded`); the response carries a
  ``Retry-After`` header and the envelope a ``retry_after_s`` hint;
* ``500`` — everything else (a server-side bug, never the client's fault).
"""

from __future__ import annotations

import json
import math
from typing import Any, Mapping

from repro import exceptions as _exceptions
from repro.exceptions import (
    CatalogError,
    ConstraintError,
    IndexDefinitionError,
    InfeasibleProblemError,
    ReproError,
    ServerOverloaded,
    WorkloadError,
)
from repro.server.wire import WireFormatError

__all__ = ["API_PREFIX", "TRACE_HEADER", "TuningClientTimeout",
           "TuningServerError", "TuningServerUnavailable", "error_envelope",
           "envelope_for_exception", "raise_remote_error",
           "response_headers_for"]

#: URL prefix of every endpoint; bumping it is a wire-format break.
API_PREFIX = "/v1"

#: Request/response header carrying the trace id: the client sends it, the
#: server plants it as the pending trace id for the pipeline (so the whole
#: request traces under the client's id) and echoes it back on the response.
TRACE_HEADER = "X-Repro-Trace-Id"


class TuningServerError(ReproError):
    """A server-reported error with no embedded-API equivalent.

    Raised by the client SDK for transport failures, unknown endpoints /
    sessions, and any envelope whose ``type`` does not name a
    :mod:`repro.exceptions` class.  ``status`` is the HTTP status code
    (``0`` for transport failures that never reached the server).
    """

    def __init__(self, message: str, *, status: int = 500,
                 error_type: str = "InternalError"):
        super().__init__(message)
        self.status = int(status)
        self.error_type = error_type


class TuningServerUnavailable(TuningServerError):
    """The tuning server could not be reached at all (connection refused,
    DNS failure, dropped connection before any response).

    ``status`` is 0 — no HTTP exchange happened.  Transient by definition,
    so the client's retry policy treats it as retryable.
    """

    def __init__(self, message: str):
        super().__init__(message, status=0, error_type="ServerUnavailable")


class TuningClientTimeout(TuningServerError):
    """The client-side socket timeout fired before the server answered.

    Distinct from a server-applied anytime budget: the server may well have
    finished the solve and produced a (partial or complete) result that the
    client never received.  ``timeout_seconds`` is the deadline that fired.
    """

    def __init__(self, message: str, *, timeout_seconds: float | None = None):
        super().__init__(message, status=0, error_type="ClientTimeout")
        self.timeout_seconds = timeout_seconds


def error_envelope(error_type: str, message: str, status: int
                   ) -> dict[str, Any]:
    return {"error": {"type": error_type, "message": message,
                      "status": int(status)}}


def envelope_for_exception(exc: BaseException) -> tuple[int, dict[str, Any]]:
    """Map one exception onto ``(status, envelope)`` for the HTTP response."""
    if isinstance(exc, TuningServerError):
        return exc.status, error_envelope(exc.error_type, str(exc), exc.status)
    if isinstance(exc, ServerOverloaded):
        status, envelope = 429, error_envelope("ServerOverloaded", str(exc),
                                               429)
        if exc.retry_after_s is not None:
            envelope["error"]["retry_after_s"] = exc.retry_after_s
        return status, envelope
    if isinstance(exc, WireFormatError):
        return 400, error_envelope("WireFormatError", str(exc), 400)
    if isinstance(exc, (json.JSONDecodeError, UnicodeDecodeError)):
        # UnicodeDecodeError: a body that is not even valid UTF-8 is as
        # malformed as one that is not valid JSON.
        return 400, error_envelope("MalformedJSON", str(exc), 400)
    if isinstance(exc, KeyError):
        # The registry reports unknown advisors as a KeyError whose message
        # starts with a fixed prefix; any other KeyError reaching this point
        # escaped the wire layer's validation and is a server-side bug.
        message = exc.args[0] if exc.args else str(exc)
        if isinstance(message, str) and message.startswith(
                "No advisor registered"):
            return 400, error_envelope("UnknownAdvisor", message, 400)
        return 500, error_envelope("KeyError", str(message), 500)
    if isinstance(exc, (ValueError, TypeError)):
        return 400, error_envelope(type(exc).__name__, str(exc), 400)
    if isinstance(exc, (WorkloadError, CatalogError, ConstraintError,
                        IndexDefinitionError, InfeasibleProblemError)):
        return 422, error_envelope(type(exc).__name__, str(exc), 422)
    return 500, error_envelope(type(exc).__name__, str(exc), 500)


def response_headers_for(exc: BaseException) -> dict[str, str]:
    """Extra HTTP response headers implied by an exception.

    A :class:`~repro.exceptions.ServerOverloaded` rejection carries its
    backoff hint as a standard ``Retry-After`` (integer delta-seconds,
    rounded up so the client never comes back early).
    """
    retry_after = getattr(exc, "retry_after_s", None)
    if retry_after is None:
        return {}
    return {"Retry-After": str(max(1, math.ceil(float(retry_after))))}


#: Builtin exception types the embedded API raises for bad requests; the
#: client resurrects them so ``except ValueError`` handlers work remotely.
_BUILTIN_ERROR_TYPES = {"ValueError": ValueError, "TypeError": TypeError}


def raise_remote_error(status: int, payload: Mapping[str, Any] | None,
                       headers: Mapping[str, str] | None = None) -> None:
    """Re-raise a server error envelope as the matching local exception.

    Envelope types naming a :mod:`repro.exceptions` class — or one of the
    builtin types the embedded API raises for invalid requests
    (``ValueError``, ``TypeError``) — are raised as that class, so remote
    error handling matches the in-process API; everything else becomes
    :class:`TuningServerError`.  ``headers`` lets ``Retry-After`` survive
    the round trip when the envelope carries no ``retry_after_s``.
    """
    envelope = (payload or {}).get("error", {})
    error_type = str(envelope.get("type", "InternalError"))
    message = str(envelope.get("message", f"HTTP {status}"))
    if error_type == "ServerOverloaded":
        retry_after = envelope.get("retry_after_s")
        if retry_after is None and headers is not None:
            header = headers.get("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
        raise ServerOverloaded(
            message, retry_after_s=(None if retry_after is None
                                    else float(retry_after)))
    exception_class = getattr(_exceptions, error_type, None)
    if (isinstance(exception_class, type)
            and issubclass(exception_class, ReproError)
            and exception_class is not ReproError):
        raise exception_class(message)
    if error_type == "WireFormatError":
        raise WireFormatError(message)
    if error_type in _BUILTIN_ERROR_TYPES:
        raise _BUILTIN_ERROR_TYPES[error_type](message)
    raise TuningServerError(message, status=status, error_type=error_type)
