"""HTTP protocol glue shared by the tuning server and the client SDK.

One structured **error envelope** travels in both directions::

    {"error": {"type": "WorkloadError", "message": "...", "status": 422}}

The server maps exceptions onto it (:func:`envelope_for_exception`) and the
client maps it back onto the exception the embedded API would have raised
(:func:`raise_remote_error`), so error handling code is the same in-process
and over the wire.  Status mapping:

* ``400`` — the request itself is broken: malformed JSON, unknown wire
  version / advisor name, invalid spec combinations (``ValueError``);
* ``422`` — the request parsed but describes an unservable tuning problem:
  :class:`WorkloadError` (e.g. statement-name collisions), catalog and
  constraint errors, infeasible problems;
* ``404`` — unknown endpoint or session;
* ``500`` — everything else (a server-side bug, never the client's fault).
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro import exceptions as _exceptions
from repro.exceptions import (
    CatalogError,
    ConstraintError,
    IndexDefinitionError,
    InfeasibleProblemError,
    ReproError,
    WorkloadError,
)
from repro.server.wire import WireFormatError

__all__ = ["API_PREFIX", "TuningClientTimeout", "TuningServerError",
           "error_envelope", "envelope_for_exception", "raise_remote_error"]

#: URL prefix of every endpoint; bumping it is a wire-format break.
API_PREFIX = "/v1"


class TuningServerError(ReproError):
    """A server-reported error with no embedded-API equivalent.

    Raised by the client SDK for transport failures, unknown endpoints /
    sessions, and any envelope whose ``type`` does not name a
    :mod:`repro.exceptions` class.  ``status`` is the HTTP status code
    (``0`` for transport failures that never reached the server).
    """

    def __init__(self, message: str, *, status: int = 500,
                 error_type: str = "InternalError"):
        super().__init__(message)
        self.status = int(status)
        self.error_type = error_type


class TuningClientTimeout(TuningServerError):
    """The client-side socket timeout fired before the server answered.

    Distinct from a server-applied anytime budget: the server may well have
    finished the solve and produced a (partial or complete) result that the
    client never received.  ``timeout_seconds`` is the deadline that fired.
    """

    def __init__(self, message: str, *, timeout_seconds: float | None = None):
        super().__init__(message, status=0, error_type="ClientTimeout")
        self.timeout_seconds = timeout_seconds


def error_envelope(error_type: str, message: str, status: int
                   ) -> dict[str, Any]:
    return {"error": {"type": error_type, "message": message,
                      "status": int(status)}}


def envelope_for_exception(exc: BaseException) -> tuple[int, dict[str, Any]]:
    """Map one exception onto ``(status, envelope)`` for the HTTP response."""
    if isinstance(exc, TuningServerError):
        return exc.status, error_envelope(exc.error_type, str(exc), exc.status)
    if isinstance(exc, WireFormatError):
        return 400, error_envelope("WireFormatError", str(exc), 400)
    if isinstance(exc, json.JSONDecodeError):
        return 400, error_envelope("MalformedJSON", str(exc), 400)
    if isinstance(exc, KeyError):
        # The registry reports unknown advisors as a KeyError whose message
        # starts with a fixed prefix; any other KeyError reaching this point
        # escaped the wire layer's validation and is a server-side bug.
        message = exc.args[0] if exc.args else str(exc)
        if isinstance(message, str) and message.startswith(
                "No advisor registered"):
            return 400, error_envelope("UnknownAdvisor", message, 400)
        return 500, error_envelope("KeyError", str(message), 500)
    if isinstance(exc, (ValueError, TypeError)):
        return 400, error_envelope(type(exc).__name__, str(exc), 400)
    if isinstance(exc, (WorkloadError, CatalogError, ConstraintError,
                        IndexDefinitionError, InfeasibleProblemError)):
        return 422, error_envelope(type(exc).__name__, str(exc), 422)
    return 500, error_envelope(type(exc).__name__, str(exc), 500)


#: Builtin exception types the embedded API raises for bad requests; the
#: client resurrects them so ``except ValueError`` handlers work remotely.
_BUILTIN_ERROR_TYPES = {"ValueError": ValueError, "TypeError": TypeError}


def raise_remote_error(status: int, payload: Mapping[str, Any] | None) -> None:
    """Re-raise a server error envelope as the matching local exception.

    Envelope types naming a :mod:`repro.exceptions` class — or one of the
    builtin types the embedded API raises for invalid requests
    (``ValueError``, ``TypeError``) — are raised as that class, so remote
    error handling matches the in-process API; everything else becomes
    :class:`TuningServerError`.
    """
    envelope = (payload or {}).get("error", {})
    error_type = str(envelope.get("type", "InternalError"))
    message = str(envelope.get("message", f"HTTP {status}"))
    exception_class = getattr(_exceptions, error_type, None)
    if (isinstance(exception_class, type)
            and issubclass(exception_class, ReproError)
            and exception_class is not ReproError):
        raise exception_class(message)
    if error_type == "WireFormatError":
        raise WireFormatError(message)
    if error_type in _BUILTIN_ERROR_TYPES:
        raise _BUILTIN_ERROR_TYPES[error_type](message)
    raise TuningServerError(message, status=status, error_type=error_type)
