"""Fault injection, retry policies and degradation plumbing (PR 7).

The reliability layer threads three guarantees through the stack:

* **deterministic chaos** — :class:`~repro.reliability.faults.FaultPlan`
  replays exact failure schedules (armed per-process or via the
  ``REPRO_FAULT_PLAN`` env var, the chaos CI lane's switch);
* **uniform retries** — :class:`~repro.reliability.retry.RetryPolicy` backs
  off exponentially with jitter and never sleeps past the request's
  :class:`~repro.lp.budget.SolveBudget`;
* **graceful degradation** — a worker crash never changes a
  recommendation, only its timing; exhausted retries degrade the result
  (``TuningDiagnostics.degraded``) instead of losing it.
"""

from repro.reliability.faults import (
    ENV_VAR,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    InjectedFault,
    arm,
    armed,
    armed_plan,
    disarm,
)
from repro.reliability.retry import RetryPolicy, default_retryable

__all__ = [
    "ENV_VAR",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "RetryPolicy",
    "arm",
    "armed",
    "armed_plan",
    "default_retryable",
    "disarm",
]
