"""Deterministic fault injection for the tuning stack (PR 7).

A :class:`FaultPlan` is a seeded, replayable schedule of failures.  Code on
the hot paths of the three execution layers calls ``plan.check(site, ...)``
at a named **fault site**; the plan decides — deterministically, from its
rules, seed and per-site call counters — whether that call crashes, stalls,
or kills its worker process.  Because the decision is a pure function of the
plan (never of wall-clock time or global randomness), a failing chaos run
can be replayed exactly by re-arming the same plan.

Fault sites wired through the stack:

* ``shard_solve``  — one per-shard BIP solve (key: shard position), both in
  worker processes and on the inline path;
* ``matrix_build`` — one worker-side gamma-matrix build chunk;
* ``http_request`` — one client-side HTTP call (key: URL path);
* ``solver``       — the advisor invocation inside ``tune_in_context``
  (key: canonical advisor name).

Activation, strongest first:

1. an explicit ``fault_plan=...`` argument (``Tuner``, ``ShardExecutor``,
   ``TuningClient``) — also how tests stay hermetic under the chaos lane:
   passing an empty ``FaultPlan()`` masks any armed/env plan;
2. a process-wide plan armed via :func:`arm` / the :func:`armed` context
   manager;
3. the ``REPRO_FAULT_PLAN`` environment variable (a JSON plan), which worker
   processes inherit — the chaos CI lane's switch.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.exceptions import ReproError

__all__ = ["ENV_VAR", "FAULT_SITES", "FaultRule", "FaultPlan",
           "InjectedFault", "arm", "disarm", "armed", "armed_plan"]

#: Environment variable holding a JSON-encoded plan for the chaos CI lane.
ENV_VAR = "REPRO_FAULT_PLAN"

#: The named fault sites wired through the stack.
FAULT_SITES = ("shard_solve", "matrix_build", "http_request", "solver")

_ACTIONS = ("raise", "latency", "kill")

#: Worker-process exit code of a ``kill`` fault (recognizable in CI logs).
KILL_EXIT_CODE = 86


class InjectedFault(ReproError):
    """A failure raised on purpose by an armed :class:`FaultPlan`.

    Message-only ``args`` keep it pickle-safe across process boundaries
    (worker-side injections travel back through the future machinery).
    """

    def __init__(self, message: str = "Injected fault"):
        super().__init__(message)


@dataclass(frozen=True)
class FaultRule:
    """One entry of a fault schedule.

    Args:
        site: Which fault site this rule arms (one of :data:`FAULT_SITES`).
        action: ``"raise"`` (raise :class:`InjectedFault`), ``"latency"``
            (sleep ``latency_s``, then proceed) or ``"kill"`` (``os._exit``
            the *worker* process mid-call; outside a worker the rule
            degrades to ``"raise"`` — a plan must never take down the host).
        calls: 1-based per-process call indices of the site at which the
            rule may fire (``None`` = every call).  Counters are per plan
            object, so worker processes — which rebuild the plan from the
            pickled jobs or the environment — count their own calls.
        attempts: Retry attempts (1-based) at which the rule may fire;
            ``(1,)`` makes a fault that every retry recovers from, ``None``
            fires on every attempt (retry-exhaustion schedules).
        key: Exact-match filter on the call's key (shard position, URL
            path, advisor name); ``None`` matches any key.  Exact, not
            substring: a rule for ``"/v1/tune"`` does not catch
            ``"/v1/sessions/s1/tune"``.
        latency_s: Sleep applied before the action fires (the whole action
            for ``"latency"``).
        probability: Chance the matching rule actually fires, drawn from
            the plan's seeded RNG — deterministic for a given plan/seed and
            call sequence.
    """

    site: str
    action: str = "raise"
    calls: tuple[int, ...] | None = None
    attempts: tuple[int, ...] | None = (1,)
    key: str | None = None
    latency_s: float = 0.0
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(f"Unknown fault site {self.site!r}; expected one "
                             f"of {', '.join(FAULT_SITES)}")
        if self.action not in _ACTIONS:
            raise ValueError(f"Unknown fault action {self.action!r}; expected "
                             f"one of {', '.join(_ACTIONS)}")
        if self.calls is not None:
            object.__setattr__(self, "calls",
                               tuple(int(call) for call in self.calls))
        if self.attempts is not None:
            object.__setattr__(self, "attempts",
                               tuple(int(a) for a in self.attempts))
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")

    def matches(self, site: str, key: str | None, attempt: int,
                call_index: int) -> bool:
        if site != self.site:
            return False
        if self.key is not None and key != self.key:
            return False
        if self.calls is not None and call_index not in self.calls:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True

    def to_payload(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "action": self.action,
            "calls": None if self.calls is None else list(self.calls),
            "attempts": (None if self.attempts is None
                         else list(self.attempts)),
            "key": self.key,
            "latency_s": self.latency_s,
            "probability": self.probability,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FaultRule":
        calls = payload.get("calls")
        attempts = payload.get("attempts", [1])
        return cls(
            site=payload["site"],
            action=payload.get("action", "raise"),
            calls=None if calls is None else tuple(calls),
            attempts=None if attempts is None else tuple(attempts),
            key=payload.get("key"),
            latency_s=float(payload.get("latency_s", 0.0)),
            probability=float(payload.get("probability", 1.0)),
        )


@dataclass
class FaultPlan:
    """A seeded, thread-safe schedule of injected failures.

    The plan is picklable (its lock is rebuilt on unpickling) so the
    executor can ship it into worker processes inside shard jobs; the
    worker's copy counts its own calls, which is exactly the per-process
    semantics the ``calls`` filter documents.
    """

    rules: Sequence[FaultRule] = ()
    seed: int = 0
    _calls: dict[str, int] = field(default_factory=dict, repr=False,
                                   compare=False)
    _injected: dict[str, int] = field(default_factory=dict, repr=False,
                                      compare=False)

    def __post_init__(self) -> None:
        self.rules = tuple(
            rule if isinstance(rule, FaultRule)
            else FaultRule.from_payload(rule)
            for rule in self.rules)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- checking
    def check(self, site: str, key: Any = None, attempt: int = 1,
              in_worker: bool = False) -> None:
        """Count one call of ``site`` and fire a matching rule, if any.

        Raises :class:`InjectedFault` (action ``"raise"``, and ``"kill"``
        outside a worker), exits the process (``"kill"`` inside a worker),
        sleeps (``"latency"``), or returns untouched.
        """
        key = None if key is None else str(key)
        with self._lock:
            call_index = self._calls.get(site, 0) + 1
            self._calls[site] = call_index
            fired = None
            for rule in self.rules:
                if not rule.matches(site, key, attempt, call_index):
                    continue
                if rule.probability < 1.0 and \
                        self._rng.random() >= rule.probability:
                    continue
                fired = rule
                self._injected[site] = self._injected.get(site, 0) + 1
                break
        if fired is None:
            return
        from repro.obs.metrics import active_registry

        active_registry().counter(
            "repro_faults_injected_total",
            "Fault-plan injections observed in this process",
            ("site",)).inc(site=site)
        if fired.latency_s > 0:
            time.sleep(fired.latency_s)
        if fired.action == "latency":
            return
        if fired.action == "kill" and in_worker:
            os._exit(KILL_EXIT_CODE)
        raise InjectedFault(
            f"Injected {fired.action!r} fault at site {site!r} "
            f"(key={key!r}, call={call_index}, attempt={attempt})")

    # ---------------------------------------------------------------- counters
    @property
    def injected_total(self) -> int:
        """Faults fired *in this process* (worker-side firings are counted
        by the worker's copy and surface as ``faults_survived`` instead)."""
        with self._lock:
            return sum(self._injected.values())

    def counters(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {"checks": dict(self._calls),
                    "injected": dict(self._injected)}

    # ----------------------------------------------------------- serialization
    def to_json(self) -> str:
        return json.dumps({"seed": self.seed,
                           "rules": [rule.to_payload()
                                     for rule in self.rules]})

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        return cls(rules=tuple(FaultRule.from_payload(entry)
                               for entry in payload.get("rules", ())),
                   seed=int(payload.get("seed", 0)))

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None
                 ) -> "FaultPlan | None":
        raw = (environ if environ is not None else os.environ).get(ENV_VAR)
        if not raw:
            return None
        return cls.from_json(raw)

    # --------------------------------------------------------------- pickling
    def __getstate__(self) -> dict[str, Any]:
        # Counters and RNG are per-process state (the ``calls`` filter is
        # documented per-process): a worker unpickling the plan starts its
        # own fresh sequence from the same rules and seed.
        state = self.__dict__.copy()
        del state["_lock"]
        del state["_rng"]
        state["_calls"] = {}
        state["_injected"] = {}
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()


# ----------------------------------------------------------- process arming
_armed_lock = threading.Lock()
_armed: FaultPlan | None = None
_env_plan: FaultPlan | None = None
_env_read = False


def arm(plan: FaultPlan | None) -> FaultPlan | None:
    """Arm ``plan`` process-wide; returns the previously armed plan."""
    global _armed
    with _armed_lock:
        previous = _armed
        _armed = plan
        return previous


def disarm() -> FaultPlan | None:
    """Disarm any explicitly armed plan (the env plan stays reachable)."""
    return arm(None)


class armed:
    """Context manager arming a plan for a block (restores the previous).

    ``with armed(FaultPlan()): ...`` masks the chaos lane's env plan, which
    is how tests that assert exact fault schedules stay hermetic.
    """

    def __init__(self, plan: FaultPlan | None):
        self._plan = plan
        self._previous: FaultPlan | None = None

    def __enter__(self) -> FaultPlan | None:
        self._previous = arm(self._plan)
        return self._plan

    def __exit__(self, *exc_info) -> None:
        arm(self._previous)


def armed_plan() -> FaultPlan | None:
    """The plan governing this process: explicitly armed, else from the env.

    The environment is parsed once (lazily); worker processes re-read it
    themselves, since they start with fresh module state.
    """
    global _env_plan, _env_read
    with _armed_lock:
        if _armed is not None:
            return _armed
        if not _env_read:
            _env_read = True
            _env_plan = FaultPlan.from_env()
        return _env_plan


def maybe_check(plan: FaultPlan | None, site: str, key: Any = None,
                attempt: int = 1, in_worker: bool = False) -> None:
    """``plan.check(...)`` tolerant of ``plan=None`` (no plan armed)."""
    if plan is not None:
        plan.check(site, key=key, attempt=attempt, in_worker=in_worker)
