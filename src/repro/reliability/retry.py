"""``RetryPolicy`` — one reusable exponential-backoff retry loop (PR 7).

Every retrying layer (shard executor, HTTP client, matrix builds) shares
this policy object, so retry semantics are uniform:

* exponential backoff with a cap and symmetric jitter (seeded for
  deterministic tests);
* a *retryable* predicate — programming errors always propagate on the
  first attempt;
* **deadline awareness**: given the request's
  :class:`~repro.lp.budget.SolveBudget`, the loop never sleeps past the
  budget's deadline — an exhausted budget re-raises immediately instead of
  burning wall clock the caller no longer has;
* a ``Retry-After`` floor: exceptions carrying a ``retry_after_s``
  attribute (:class:`~repro.exceptions.ServerOverloaded`) raise the delay
  to at least what the server asked for.
"""

from __future__ import annotations

import random
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable

from repro.reliability.faults import InjectedFault

__all__ = ["RetryPolicy", "default_retryable"]

#: Exception types that signal a transient failure worth retrying.
_TRANSIENT_TYPES = (InjectedFault, BrokenProcessPool, ConnectionError,
                    TimeoutError, OSError)


def default_retryable(exc: BaseException) -> bool:
    """Whether an exception looks transient (crash/connectivity, not a bug)."""
    return isinstance(exc, _TRANSIENT_TYPES)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter, capped attempts and budget awareness.

    Args:
        max_attempts: Total tries including the first (1 = no retries).
        base_delay_s: Backoff before the first retry.
        cap_delay_s: Upper bound on any single backoff sleep.
        multiplier: Exponential growth factor per retry.
        jitter: Symmetric jitter fraction (0.1 = each delay drawn from
            ±10 % around the exponential value).
        seed: Seed for the jitter RNG; ``None`` uses the module RNG
            (tests pass a seed for reproducible delay sequences).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    cap_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.cap_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    # ----------------------------------------------------------------- delays
    def backoff_delay(self, attempt: int,
                      rng: random.Random | None = None) -> float:
        """The sleep before retrying after failed attempt ``attempt``."""
        delay = min(self.cap_delay_s,
                    self.base_delay_s * self.multiplier ** (attempt - 1))
        if self.jitter and delay > 0:
            draw = (rng.random() if rng is not None else random.random())
            delay *= 1.0 + self.jitter * (2.0 * draw - 1.0)
        return max(0.0, delay)

    # ------------------------------------------------------------------- loop
    def call(self, fn: Callable[[int], Any], *, budget: Any = None,
             retryable: Callable[[BaseException], bool] | None = None,
             on_retry: Callable[[int, BaseException, float], None]
             | None = None) -> Any:
        """Run ``fn(attempt)`` with retries; attempts are 1-based.

        ``budget`` is an optional started
        :class:`~repro.lp.budget.SolveBudget`: a retry whose backoff sleep
        would cross the deadline (or whose budget already expired) is not
        taken — the triggering exception propagates instead.  ``on_retry``
        observes every retry actually taken (for counters).
        """
        predicate = retryable if retryable is not None else default_retryable
        rng = random.Random(self.seed) if self.seed is not None else None
        attempt = 1
        while True:
            try:
                return fn(attempt)
            except Exception as exc:
                if attempt >= self.max_attempts or not predicate(exc):
                    raise
                delay = self.backoff_delay(attempt, rng)
                retry_after = getattr(exc, "retry_after_s", None)
                if retry_after is not None:
                    delay = max(delay, float(retry_after))
                if budget is not None and (budget.expired()
                                           or not budget.can_spend(delay)):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
