"""The uniform result side of the unified tuning API.

Every advisor's outcome is normalised into one :class:`TuningResult`: the
chosen :class:`Configuration`, per-statement costs, solver diagnostics
(bound gap, node counts, optimizer/template-build calls, stage timings) and
a machine-readable ``provenance`` of the resolved pipeline.  The payload is
JSON round-trippable (:meth:`TuningResult.to_json` /
:meth:`TuningResult.from_json`) so results can be shipped over a wire,
archived next to benchmark reports, and diffed across sessions; and
:meth:`TuningResult.fingerprint` hashes the payload with every wall-clock
field stripped, giving a determinism check that is stable across machines.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Sequence

from repro.advisors.base import Recommendation
from repro.indexes.configuration import Configuration
from repro.indexes.index import Index
from repro.lp.solution import GapTracePoint

__all__ = ["RESULT_PAYLOAD_VERSION", "StatementCost", "TuningDiagnostics",
           "TuningResult"]

#: Version of the serialized ``TuningResult`` payload.  Bump on incompatible
#: payload changes; ``from_payload`` rejects versions it does not understand.
RESULT_PAYLOAD_VERSION = 1

#: Payload keys holding wall-clock measurements; stripped by the fingerprint.
_TIMING_KEYS = frozenset({
    "timings", "elapsed_seconds", "solve_seconds", "total_seconds", "seconds"})

#: Keys that vary with machine-local fault/retry luck but never with the
#: recommendation itself; stripped by the fingerprint alongside the timings.
#: ``degraded`` is deliberately NOT here: a degraded result is semantically
#: different from a complete one and must not fingerprint-match it.
#: ``trace`` is: span trees are pure timing observation, so a result must
#: fingerprint identically with tracing on or off.  ``profile`` likewise:
#: sampled hotspot tables are observation, never recommendation.
_VOLATILE_KEYS = frozenset({"retries", "faults_survived", "trace", "profile"})


def index_to_payload(index: Index) -> dict[str, Any]:
    """An :class:`Index` as a JSON-representable dict."""
    return {
        "table": index.table,
        "key_columns": list(index.key_columns),
        "include_columns": list(index.include_columns),
        "clustered": index.clustered,
        "name": index.name,
    }


def index_from_payload(payload: Mapping[str, Any]) -> Index:
    return Index(payload["table"], tuple(payload["key_columns"]),
                 include_columns=tuple(payload["include_columns"]),
                 clustered=bool(payload["clustered"]),
                 name=payload["name"] or None)


@dataclass(frozen=True)
class StatementCost:
    """One statement's cost under the chosen configuration.

    ``cost`` is the full unweighted INUM statement cost (maintenance terms
    included for updates); the weighted contribution to the workload
    objective is ``weight * cost``.
    """

    statement: str
    weight: float
    cost: float


@dataclass
class TuningDiagnostics:
    """Solver and pipeline diagnostics, uniform across advisors.

    Fields an advisor cannot provide are zero/empty (e.g. greedy advisors
    have no bound gap and no node counts).
    """

    gap: float = 0.0
    whatif_calls: int = 0
    candidate_count: int = 0
    nodes_explored: int = 0
    iterations: int = 0
    #: Advisor-reported per-stage seconds plus the facade's own stages
    #: (``facade.prepare`` / ``facade.evaluate`` / ``facade.total``).
    timings: dict[str, float] = field(default_factory=dict)
    gap_trace: tuple[GapTracePoint, ...] = ()
    #: True when an anytime deadline interrupted the solve; the result is
    #: still feasible and ``gap`` bounds its distance from the optimum.
    timed_out: bool = False
    #: Which anytime tier produced the answer (``"exact"`` when no budget).
    solve_tier: str = "exact"
    #: True when faults cost part of the pipeline (e.g. a shard lost after
    #: retry exhaustion) and the result covers only the surviving work.
    degraded: bool = False
    #: Retries taken by the reliability layer (timing-like jitter: excluded
    #: from fingerprints, as is ``faults_survived``).
    retries: int = 0
    #: Failures absorbed — retried or degraded around — instead of raised.
    faults_survived: int = 0

    def to_payload(self) -> dict[str, Any]:
        return {
            "gap": self.gap,
            "whatif_calls": self.whatif_calls,
            "candidate_count": self.candidate_count,
            "nodes_explored": self.nodes_explored,
            "iterations": self.iterations,
            "timings": dict(self.timings),
            "gap_trace": [asdict(point) for point in self.gap_trace],
            "timed_out": self.timed_out,
            "solve_tier": self.solve_tier,
            "degraded": self.degraded,
            "retries": self.retries,
            "faults_survived": self.faults_survived,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TuningDiagnostics":
        return cls(
            gap=float(payload.get("gap", 0.0)),
            whatif_calls=int(payload.get("whatif_calls", 0)),
            candidate_count=int(payload.get("candidate_count", 0)),
            nodes_explored=int(payload.get("nodes_explored", 0)),
            iterations=int(payload.get("iterations", 0)),
            timings=dict(payload.get("timings", {})),
            gap_trace=tuple(GapTracePoint(**point)
                            for point in payload.get("gap_trace", ())),
            timed_out=bool(payload.get("timed_out", False)),
            solve_tier=str(payload.get("solve_tier", "exact")),
            degraded=bool(payload.get("degraded", False)),
            retries=int(payload.get("retries", 0)),
            faults_survived=int(payload.get("faults_survived", 0)),
        )


@dataclass
class TuningResult:
    """What one ``Tuner.tune(request)`` call returns, for every advisor."""

    configuration: Configuration
    advisor_name: str
    objective_estimate: float
    statement_costs: tuple[StatementCost, ...]
    diagnostics: TuningDiagnostics
    provenance: dict[str, Any]
    #: Advisor-specific live extras (Pareto points, the BIP, solve reports…).
    #: Programmatic-access only and not serialized — except ``"trace"`` (the
    #: exported span tree) and ``"profile"`` (the sampled hotspot table),
    #: which ride the payload so remote callers see the server-side view;
    #: everything else is empty after ``from_json``.
    extras: dict[str, Any] = field(default_factory=dict, repr=False)

    # ---------------------------------------------------------------- accessors
    @property
    def index_count(self) -> int:
        return len(self.configuration)

    @property
    def total_seconds(self) -> float:
        timings = self.diagnostics.timings
        return timings.get("facade.total", timings.get("total", 0.0))

    def statement_cost(self, statement_name: str) -> float:
        for entry in self.statement_costs:
            if entry.statement == statement_name:
                return entry.cost
        raise KeyError(f"No per-statement cost recorded for {statement_name!r}")

    def summary(self) -> dict[str, Any]:
        """Flat summary row (mirrors ``Recommendation.summary``)."""
        return {
            "advisor": self.advisor_name,
            "indexes": self.index_count,
            "candidates": self.diagnostics.candidate_count,
            "whatif_calls": self.diagnostics.whatif_calls,
            "objective": self.objective_estimate,
            "gap": self.diagnostics.gap,
            "total_seconds": round(self.total_seconds, 4),
        }

    # ------------------------------------------------------------ construction
    @classmethod
    def from_recommendation(cls, recommendation: Recommendation,
                            provenance: Mapping[str, Any],
                            statement_costs: Sequence[StatementCost] = (),
                            facade_timings: Mapping[str, float] | None = None,
                            trace: Mapping[str, Any] | None = None,
                            profile: Mapping[str, Any] | None = None,
                            ) -> "TuningResult":
        """Normalise a legacy :class:`Recommendation` into a result.

        Node/iteration counts are lifted from the solve report when the
        advisor recorded one in its extras.  ``trace`` (an exported span
        tree) and ``profile`` (a sampled hotspot table) land in ``extras``
        and travel with the payload; both are fingerprint-excluded.
        """
        nodes = iterations = 0
        report = recommendation.extras.get("solve_report")
        solution = getattr(report, "solution", None)
        if solution is not None:
            nodes = int(getattr(solution, "nodes_explored", 0))
            iterations = int(getattr(solution, "iterations", 0))
        timings = dict(recommendation.timings)
        for stage, seconds in (facade_timings or {}).items():
            timings[f"facade.{stage}"] = seconds
        diagnostics = TuningDiagnostics(
            gap=recommendation.gap,
            whatif_calls=recommendation.whatif_calls,
            candidate_count=recommendation.candidate_count,
            nodes_explored=nodes,
            iterations=iterations,
            timings=timings,
            gap_trace=recommendation.gap_trace,
            timed_out=recommendation.timed_out,
            solve_tier=recommendation.solve_tier,
            degraded=recommendation.degraded,
            retries=recommendation.retries,
            faults_survived=recommendation.faults_survived,
        )
        extras = dict(recommendation.extras)
        if trace is not None:
            extras["trace"] = dict(trace)
        if profile is not None:
            extras["profile"] = dict(profile)
        return cls(
            configuration=recommendation.configuration,
            advisor_name=recommendation.advisor_name,
            objective_estimate=recommendation.objective_estimate,
            statement_costs=tuple(statement_costs),
            diagnostics=diagnostics,
            provenance=dict(provenance),
            extras=extras,
        )

    # ------------------------------------------------------------ serialization
    def to_payload(self) -> dict[str, Any]:
        """The JSON-representable payload (everything except live extras)."""
        payload = {
            "version": RESULT_PAYLOAD_VERSION,
            "advisor": self.advisor_name,
            "objective_estimate": self.objective_estimate,
            "configuration": {
                "name": self.configuration.name,
                "indexes": [index_to_payload(index)
                            for index in self.configuration],
            },
            "statement_costs": [asdict(entry)
                                for entry in self.statement_costs],
            "diagnostics": self.diagnostics.to_payload(),
            "provenance": self.provenance,
        }
        trace = self.extras.get("trace")
        if trace is not None:
            payload["trace"] = trace
        profile = self.extras.get("profile")
        if profile is not None:
            payload["profile"] = profile
        return payload

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the payload (Python's JSON ``NaN``/``Infinity`` allowed)."""
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TuningResult":
        # Pre-PR 5 payloads carried no version field and are structurally
        # version 1; anything else is a payload this build cannot promise to
        # load faithfully, so fail loudly instead of partial-loading.
        version = payload.get("version", RESULT_PAYLOAD_VERSION)
        if version != RESULT_PAYLOAD_VERSION:
            raise ValueError(
                f"Unsupported TuningResult payload version {version!r}; "
                f"this build understands version {RESULT_PAYLOAD_VERSION}")
        configuration = Configuration(
            (index_from_payload(entry)
             for entry in payload["configuration"]["indexes"]),
            name=payload["configuration"].get("name", ""))
        extras: dict[str, Any] = {}
        if payload.get("trace") is not None:
            extras["trace"] = dict(payload["trace"])
        if payload.get("profile") is not None:
            extras["profile"] = dict(payload["profile"])
        return cls(
            configuration=configuration,
            advisor_name=payload["advisor"],
            objective_estimate=float(payload["objective_estimate"]),
            statement_costs=tuple(StatementCost(**entry)
                                  for entry in payload["statement_costs"]),
            diagnostics=TuningDiagnostics.from_payload(payload["diagnostics"]),
            provenance=dict(payload["provenance"]),
            extras=extras,
        )

    @classmethod
    def from_json(cls, text: str) -> "TuningResult":
        return cls.from_payload(json.loads(text))

    def fingerprint(self) -> str:
        """SHA-256 of the payload with every wall-clock field stripped.

        Two runs of the same seeded request must produce equal fingerprints
        regardless of machine speed; anything that breaks this is a
        determinism bug, not jitter.
        """
        canonical = json.dumps(_strip_timings(self.to_payload()),
                               sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _strip_timings(value: Any) -> Any:
    """Recursively drop wall-clock and fault-jitter keys from a payload.

    A recovered run (worker crashed, shard retried) must fingerprint
    identically to a clean one — retry counters are timing-like jitter.
    ``degraded`` stays in: losing a shard changes the recommendation's
    meaning, so degraded results never alias complete ones.
    """
    if isinstance(value, dict):
        return {key: _strip_timings(item) for key, item in value.items()
                if key not in _TIMING_KEYS and key not in _VOLATILE_KEYS}
    if isinstance(value, list):
        return [_strip_timings(item) for item in value]
    return value
