"""``TuningService`` — serving many concurrent ``tune()`` calls per process.

Concurrency model (see the ROADMAP design notes): every
``(schema, CostingSpec)`` resolves to one :class:`SchemaContext` whose lock
serializes *cache-mutating* pipelines — template builds, gamma-matrix column
registration, tensor extension and the costing memos are all shared state,
and per-request determinism is guaranteed by running each request's pipeline
atomically against it.  Requests for different schemas (or different costing
specs) hold different locks and genuinely run in parallel; requests for the
same schema queue on the lock but still share every template, matrix and
tensor the earlier requests built, which is where the service wins over a
process-per-request design.  Results are deterministic per request: the
recommendation, objective and per-statement costs do not depend on how
concurrent requests interleave (call-count diagnostics may — a warm cache
legitimately reports fewer template builds).

Interactive sessions go through :meth:`TuningService.open_session`: the
returned :class:`TuningSession` wraps the delta-BIP
:class:`~repro.core.interactive.InteractiveTuningSession` machinery, takes
the context lock around every call, and normalises every outcome into a
:class:`TuningResult`.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Iterable, Sequence

from repro.api.registry import canonical_name, make_advisor
from repro.api.result import TuningResult
from repro.api.specs import TuningRequest
from repro.api.tuner import (
    SchemaContext,
    Tuner,
    _resolve_candidates,
    build_session_result,
    tune_in_context,
)
from repro.core.interactive import InteractiveTuningSession

__all__ = ["TuningService", "TuningSession"]


class TuningService:
    """A process-wide facade serving concurrent declarative tuning requests.

    Args:
        tuner: The underlying :class:`Tuner` (owns the per-schema contexts);
            a fresh one is created when omitted, and sharing one between a
            service and direct ``tuner.tune`` callers is safe as long as the
            direct callers do not run concurrently with the service.
        max_workers: Thread count for :meth:`tune_many` / :meth:`submit`
            (``None`` lets :class:`ThreadPoolExecutor` pick its default).
    """

    def __init__(self, tuner: Tuner | None = None,
                 max_workers: int | None = None):
        self._tuner = tuner or Tuner()
        self._max_workers = max_workers
        self._executor: ThreadPoolExecutor | None = None

    # ---------------------------------------------------------------- accessors
    @property
    def tuner(self) -> Tuner:
        return self._tuner

    def context_for(self, schema, costing=None) -> SchemaContext:
        """The shared per-schema context (exposed for inspection/tests)."""
        return self._tuner.context_for(schema, costing)

    # ------------------------------------------------------------------ tuning
    def tune(self, request: TuningRequest) -> TuningResult:
        """Serve one request, atomically against its schema context."""
        context = self._tuner.context_for(request.schema, request.costing)
        with context.lock:
            return tune_in_context(request, context)

    def submit(self, request: TuningRequest) -> "Future[TuningResult]":
        """Queue a request on the service's thread pool."""
        return self._ensure_executor().submit(self.tune, request)

    def tune_many(self, requests: Iterable[TuningRequest]
                  ) -> list[TuningResult]:
        """Serve many requests concurrently; results in request order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    # ---------------------------------------------------------------- sessions
    def open_session(self, request: TuningRequest) -> "TuningSession":
        """Start an interactive (incremental re-tuning) session.

        Only the CoPhy strategy supports delta-BIP re-tuning, so the request
        must name it (or leave the advisor unset).
        """
        spec = request.resolved_advisor()
        if canonical_name(spec.name) != "cophy":
            raise ValueError(
                f"Interactive sessions require the 'cophy' advisor; the "
                f"request asks for {spec.name!r}")
        context = self._tuner.context_for(request.schema, request.costing)
        with context.lock:
            advisor = make_advisor(spec.name, request.schema,
                                   shared_optimizer=context.optimizer,
                                   shared_inum=context.inum,
                                   **request.resolved_options())
            workload = context.canonical_workload(request.workload)
            candidates = _resolve_candidates(request, context, workload)
            inner = InteractiveTuningSession(
                advisor, workload, constraints=request.constraints,
                candidates=candidates, dba_indexes=())
        return TuningSession(self, context, request, inner)

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "TuningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="tuning-service")
        return self._executor


class TuningSession:
    """A service-held interactive session returning :class:`TuningResult`.

    Thin concurrency-and-normalisation shell over
    :class:`InteractiveTuningSession`: every call holds the schema context's
    lock (sessions share the context cache with regular ``tune()`` traffic)
    and converts the recommendation uniformly.  The underlying session stays
    reachable as :attr:`inner` for BIP-level inspection.
    """

    def __init__(self, service: TuningService, context: SchemaContext,
                 request: TuningRequest, inner: InteractiveTuningSession):
        self._service = service
        self._context = context
        self._request = request
        self._inner = inner
        self._history: list[TuningResult] = []

    # ---------------------------------------------------------------- accessors
    @property
    def inner(self) -> InteractiveTuningSession:
        return self._inner

    @property
    def history(self) -> tuple[TuningResult, ...]:
        return tuple(self._history)

    @property
    def last_result(self) -> TuningResult | None:
        return self._history[-1] if self._history else None

    # ------------------------------------------------------------------ tuning
    def recommend(self) -> TuningResult:
        """Initial recommendation (full INUM + build + solve)."""
        return self._run("recommend")

    def add_candidates(self, new_indexes) -> TuningResult:
        """Re-tune after adding candidates (delta BIP + warm start)."""
        return self._run("add_candidates", new_indexes)

    def remove_candidates(self, removed_indexes) -> TuningResult:
        """Re-tune after retracting candidates (pinned delta BIP)."""
        return self._run("remove_candidates", removed_indexes)

    def update_constraints(self, constraints) -> TuningResult:
        """Re-tune under a different constraint set (warm-started)."""
        return self._run("update_constraints", constraints)

    # ---------------------------------------------------------------- internals
    def _run(self, method: str, *args: Any) -> TuningResult:
        with self._context.lock:
            recommendation = getattr(self._inner, method)(*args)
        provenance = {
            "api_version": 1,
            "request_id": self._request.request_id,
            "advisor": {"name": "cophy", "class": "InteractiveTuningSession"},
            "session": {"step": len(self._history) + 1, "operation": method},
            "schema": {"name": self._request.schema.name,
                       "tables": len(self._request.schema)},
            "workload": {"name": self._inner.workload.name},
        }
        result = build_session_result(recommendation, provenance)
        self._history.append(result)
        return result
